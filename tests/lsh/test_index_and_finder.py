"""Unit tests for the LSH index and the ``lsh`` group finder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grouping import make_group_finder
from repro.exceptions import ConfigurationError
from repro.lsh import LshGroupFinder, LshIndex, minhash_signatures


def data_with_duplicates(seed: int = 0):
    rng = np.random.default_rng(seed)
    data = rng.random((60, 80)) < 0.1
    data[10] = data[40]
    data[11] = data[40]
    data[25] = data[55]
    return data


class TestIndex:
    def test_bands_must_divide_signature(self):
        signatures = minhash_signatures(
            data_with_duplicates(), n_hashes=64
        )
        with pytest.raises(ConfigurationError, match="divide"):
            LshIndex(signatures, n_bands=7)

    def test_identical_rows_always_candidates(self):
        data = data_with_duplicates()
        index = LshIndex(minhash_signatures(data))
        pairs = set(index.candidate_pairs())
        assert (10, 11) in pairs
        assert (10, 40) in pairs
        assert (25, 55) in pairs

    def test_pairs_unique_and_ordered(self):
        index = LshIndex(minhash_signatures(data_with_duplicates()))
        pairs = list(index.candidate_pairs())
        assert len(pairs) == len(set(pairs))
        assert all(i < j for i, j in pairs)

    def test_candidates_of_row(self):
        data = data_with_duplicates()
        index = LshIndex(minhash_signatures(data))
        assert 11 in index.candidates_of(10)
        assert 40 in index.candidates_of(10)
        assert 10 not in index.candidates_of(10)

    def test_candidates_of_bounds(self):
        index = LshIndex(minhash_signatures(data_with_duplicates()))
        with pytest.raises(ConfigurationError):
            index.candidates_of(999)

    def test_rejects_1d_signatures(self):
        with pytest.raises(ConfigurationError):
            LshIndex(np.zeros(8, dtype=np.uint64))


class TestFinder:
    def test_registered(self):
        assert isinstance(make_group_finder("lsh"), LshGroupFinder)

    def test_exact_duplicates_complete(self):
        """k=0 recall is 1: identical rows always collide."""
        data = data_with_duplicates()
        exact = make_group_finder("cooccurrence").find_groups(data, 0)
        assert make_group_finder("lsh").find_groups(data, 0) == exact

    def test_exact_on_generated_workload(self):
        from repro.datagen import MatrixSpec, generate_matrix

        generated = generate_matrix(
            MatrixSpec(n_roles=300, n_cols=250, row_density=0.04, seed=9)
        )
        assert (
            make_group_finder("lsh").find_groups(generated.matrix, 0)
            == generated.groups
        )

    def test_similarity_sound(self):
        """Every k>=1 group member is genuinely within k of another."""
        rng = np.random.default_rng(11)
        data = rng.random((80, 100)) < 0.08
        data[5] = data[30]
        data[5, 0] = ~data[5, 0]
        groups = make_group_finder("lsh").find_groups(data, 2)
        for group in groups:
            for member in group:
                distances = [
                    int(np.count_nonzero(data[member] != data[other]))
                    for other in group
                    if other != member
                ]
                assert min(distances) <= 2

    def test_similarity_finds_high_overlap_pairs(self):
        """A one-bit perturbation of a 20-element set sits at Jaccard
        ~0.95 — far above the LSH knee, so it must be found."""
        rng = np.random.default_rng(12)
        data = rng.random((50, 300)) < 0.07
        base = rng.choice(300, size=20, replace=False)
        data[17] = False
        data[17, base] = True
        data[33] = data[17]
        data[33, int(base[0])] = False  # remove one element: distance 1
        groups = make_group_finder("lsh").find_groups(data, 1)
        assert any({17, 33} <= set(g) for g in groups)

    def test_zero_overlap_small_sets_at_k(self):
        data = np.zeros((3, 10), dtype=bool)
        data[0, 0] = True
        data[1, 5] = True
        # {0} vs {5}: distance 2 with zero overlap — anchor pass case
        assert make_group_finder("lsh").find_groups(data, 2) == [[0, 1, 2]]

    def test_empty_matrix(self):
        assert make_group_finder("lsh").find_groups(
            np.zeros((0, 5), dtype=bool), 0
        ) == []

    def test_empty_rows_group_at_k0(self):
        data = np.zeros((3, 6), dtype=bool)
        data[1, 2] = True
        assert make_group_finder("lsh").find_groups(data, 0) == [[0, 2]]

    def test_deterministic(self):
        data = data_with_duplicates(3)
        finder = make_group_finder("lsh")
        assert finder.find_groups(data, 1) == finder.find_groups(data, 1)

    def test_parameters_forwarded(self):
        finder = make_group_finder("lsh", n_hashes=32, n_bands=8, seed=5)
        assert finder._n_hashes == 32
        assert finder._n_bands == 8
