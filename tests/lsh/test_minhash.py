"""Unit tests for MinHash signatures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh.minhash import (
    EMPTY_ROW_SENTINEL,
    estimate_jaccard,
    minhash_signatures,
)


def random_sets(n_rows: int, n_cols: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random((n_rows, n_cols)) < density


class TestSignatures:
    def test_shape_and_dtype(self):
        signatures = minhash_signatures(
            random_sets(10, 50, 0.2, 0), n_hashes=32
        )
        assert signatures.shape == (10, 32)
        assert signatures.dtype == np.uint64

    def test_identical_rows_identical_signatures(self):
        data = random_sets(5, 40, 0.3, 1)
        data[3] = data[0]
        signatures = minhash_signatures(data)
        assert np.array_equal(signatures[0], signatures[3])

    def test_deterministic_per_seed(self):
        data = random_sets(6, 30, 0.2, 2)
        assert np.array_equal(
            minhash_signatures(data, seed=9), minhash_signatures(data, seed=9)
        )

    def test_seeds_differ(self):
        data = random_sets(6, 30, 0.2, 3)
        assert not np.array_equal(
            minhash_signatures(data, seed=1), minhash_signatures(data, seed=2)
        )

    def test_empty_rows_get_sentinel(self):
        data = np.zeros((3, 10), dtype=bool)
        data[1, 4] = True
        signatures = minhash_signatures(data)
        assert (signatures[0] == EMPTY_ROW_SENTINEL).all()
        assert (signatures[2] == EMPTY_ROW_SENTINEL).all()
        assert not (signatures[1] == EMPTY_ROW_SENTINEL).all()

    def test_n_hashes_validated(self):
        with pytest.raises(ConfigurationError):
            minhash_signatures(np.zeros((1, 2), dtype=bool), n_hashes=0)

    def test_accepts_sparse_input(self):
        import scipy.sparse as sp

        dense = random_sets(4, 20, 0.3, 4)
        assert np.array_equal(
            minhash_signatures(dense),
            minhash_signatures(sp.csr_matrix(dense)),
        )


class TestJaccardEstimate:
    def test_identical_sets_estimate_one(self):
        data = random_sets(2, 60, 0.3, 5)
        data[1] = data[0]
        signatures = minhash_signatures(data, n_hashes=64)
        assert estimate_jaccard(signatures[0], signatures[1]) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        data = np.zeros((2, 100), dtype=bool)
        data[0, :30] = True
        data[1, 60:90] = True
        signatures = minhash_signatures(data, n_hashes=128)
        assert estimate_jaccard(signatures[0], signatures[1]) < 0.1

    def test_estimate_tracks_true_jaccard(self):
        """Statistical: |estimate - truth| small with many hashes."""
        rng = np.random.default_rng(6)
        a = np.zeros(200, dtype=bool)
        b = np.zeros(200, dtype=bool)
        a[:80] = True
        b[40:120] = True  # |∩|=40, |∪|=120 → J = 1/3
        data = np.stack([a, b])
        signatures = minhash_signatures(data, n_hashes=512, seed=7)
        estimate = estimate_jaccard(signatures[0], signatures[1])
        assert abs(estimate - 1 / 3) < 0.08

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_jaccard(
                np.zeros(4, dtype=np.uint64), np.zeros(8, dtype=np.uint64)
            )
