"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.state import RbacState


@pytest.fixture
def empty_state() -> RbacState:
    return RbacState()


@pytest.fixture
def paper_example() -> RbacState:
    """The worked example of Figure 1.

    * P01 is a standalone permission;
    * R02 has users but no permissions; R03 has permissions but no users;
    * R01 and R05 each have a single user;
    * R02 and R04 share the same users; R04 and R05 share the same
      permissions;
    * the RUAM co-occurrence matrix matches the one printed in §III-C
      (|R01|=1, |R02|=2, |R03|=0, |R04|=2, |R05|=1, g(R02,R04)=2).
    """
    return RbacState.build(
        users=["U01", "U02", "U03", "U04"],
        roles=["R01", "R02", "R03", "R04", "R05"],
        permissions=["P01", "P02", "P03", "P04", "P05", "P06"],
        user_assignments=[
            ("R01", "U01"),
            ("R02", "U02"),
            ("R02", "U03"),
            ("R04", "U02"),
            ("R04", "U03"),
            ("R05", "U04"),
        ],
        permission_assignments=[
            ("R01", "P02"),
            ("R01", "P03"),
            ("R03", "P03"),
            ("R03", "P04"),
            ("R04", "P05"),
            ("R04", "P06"),
            ("R05", "P05"),
            ("R05", "P06"),
        ],
    )


@pytest.fixture
def small_org_state() -> RbacState:
    """A small planted organisation shared by integration-style tests."""
    from repro.datagen import OrgProfile, generate_org

    return generate_org(OrgProfile.small(divisor=200, seed=11)).state
