"""Package-level sanity: exceptions, types, version, public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exceptions import (
    ConfigurationError,
    DataFormatError,
    DuplicateEntityError,
    RemediationError,
    ReproError,
    SafetyViolationError,
    UnknownEntityError,
    ValidationError,
)
from repro.types import as_bool_matrix


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ValidationError,
            UnknownEntityError,
            DuplicateEntityError,
            ConfigurationError,
            DataFormatError,
            RemediationError,
            SafetyViolationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_safety_violation_is_remediation_error(self):
        assert issubclass(SafetyViolationError, RemediationError)

    def test_unknown_entity_is_also_key_error(self):
        assert issubclass(UnknownEntityError, KeyError)
        error = UnknownEntityError("role", "r9")
        assert error.kind == "role"
        assert error.identifier == "r9"
        assert "r9" in str(error)

    def test_duplicate_entity_message(self):
        error = DuplicateEntityError("user", "u1")
        assert "duplicate user" in str(error)

    def test_single_except_clause_catches_everything(self):
        """The documented API-boundary pattern."""
        from repro.core.state import RbacState

        caught = []
        for trigger in (
            lambda: RbacState().get_user("nope"),
            lambda: as_bool_matrix_raise(),
        ):
            try:
                trigger()
            except ReproError as error:
                caught.append(type(error).__name__)
            except ValueError:
                caught.append("ValueError")
        assert caught[0] == "UnknownEntityError"


def as_bool_matrix_raise():
    as_bool_matrix([1, 2, 3])  # 1-D → ValueError (not a ReproError)


class TestTypes:
    def test_as_bool_matrix_from_ints(self):
        matrix = as_bool_matrix([[1, 0], [0, 2]])
        assert matrix.dtype == bool
        assert matrix.tolist() == [[True, False], [False, True]]

    def test_as_bool_matrix_passthrough(self):
        original = np.zeros((2, 2), dtype=bool)
        assert as_bool_matrix(original) is original

    def test_as_bool_matrix_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            as_bool_matrix([1, 0])


class TestVersion:
    def test_version_exposed(self):
        assert repro.__version__

    def test_version_matches_pyproject(self):
        import re
        from pathlib import Path

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        if not pyproject.exists():
            pytest.skip("source layout not present")
        match = re.search(
            r'^version = "([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match is not None
        assert repro.__version__ == match.group(1)


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import importlib

        for module in (
            "repro.core", "repro.cluster", "repro.ann", "repro.lsh",
            "repro.bitmatrix", "repro.datagen", "repro.io",
            "repro.remediation", "repro.benchharness", "repro.cli",
            "repro.hierarchy", "repro.usage", "repro.mining", "repro.util",
        ):
            importlib.import_module(module)
