"""Round-trip reconstruction: dicts back into live core objects.

``Report.from_payload`` (and the ``from_dict`` constructors underneath
it) exist for the job plane: a worker ships ``report.to_dict()`` through
the queue and the service reattaches its snapshot to get a live report.
The contract is byte-identical re-serialisation — ``to_dict`` of the
reconstruction must equal the original payload key for key.
"""

from __future__ import annotations

import json

import pytest

from repro.core import analyze
from repro.core.engine import AnalysisConfig
from repro.core.report import Report
from repro.core.taxonomy import Axis, Finding
from repro.exceptions import ConfigurationError


@pytest.fixture
def report(paper_example):
    return analyze(paper_example)


class TestAnalysisConfigFromDict:
    def test_round_trip(self):
        config = AnalysisConfig(
            similarity_threshold=2,
            axes=(Axis.USERS,),
            collapse_duplicates=False,
            n_workers=2,
            block_rows=64,
        )
        rebuilt = AnalysisConfig.from_dict(config.to_dict())
        assert rebuilt.to_dict() == config.to_dict()

    def test_defaults_round_trip(self):
        config = AnalysisConfig()
        assert AnalysisConfig.from_dict(config.to_dict()).to_dict() == (
            config.to_dict()
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            AnalysisConfig.from_dict({"similarity_treshold": 2})

    def test_bad_enum_value_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig.from_dict({"axes": ["sideways"]})
        with pytest.raises(ConfigurationError):
            AnalysisConfig.from_dict({"enabled_types": ["not_a_type"]})


class TestFindingFromDict:
    def test_every_finding_round_trips(self, report):
        for finding in report.findings:
            rebuilt = Finding.from_dict(finding.to_dict())
            assert rebuilt.to_dict() == finding.to_dict()
            assert rebuilt.type is finding.type
            assert rebuilt.severity is finding.severity
            if finding.group is not None:
                assert rebuilt.group.role_ids == finding.group.role_ids
                assert rebuilt.group.axis is finding.group.axis


class TestReportFromPayload:
    def test_byte_identical_reserialisation(self, report, paper_example):
        payload = report.to_dict()
        rebuilt = Report.from_payload(payload, paper_example)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )

    def test_derived_views_survive(self, report, paper_example):
        rebuilt = Report.from_payload(report.to_dict(), paper_example)
        assert rebuilt.counts() == report.counts()
        assert (
            rebuilt.consolidation_potential()
            == report.consolidation_potential()
        )
        assert len(rebuilt.sorted_findings()) == len(report.sorted_findings())

    def test_text_rendering_matches(self, report, paper_example):
        rebuilt = Report.from_payload(report.to_dict(), paper_example)
        assert rebuilt.to_text() == report.to_text()
