"""Unit tests for the standalone-node detector (type 1)."""

from __future__ import annotations

from repro.core.detectors import AnalysisContext, StandaloneNodeDetector
from repro.core.entities import EntityKind
from repro.core.state import RbacState
from repro.core.taxonomy import InefficiencyType
from repro.datagen import (
    add_standalone_permission,
    add_standalone_role,
    add_standalone_user,
)


def detect(state: RbacState):
    return StandaloneNodeDetector().detect(AnalysisContext(state))


def connected_state() -> RbacState:
    return RbacState.build(
        users=["u1"],
        roles=["r1"],
        permissions=["p1"],
        user_assignments=[("r1", "u1")],
        permission_assignments=[("r1", "p1")],
    )


class TestDetection:
    def test_clean_state_has_no_findings(self):
        assert detect(connected_state()) == []

    def test_standalone_user(self):
        state = connected_state()
        user_id = add_standalone_user(state)
        findings = detect(state)
        assert len(findings) == 1
        assert findings[0].entity_kind is EntityKind.USER
        assert findings[0].entity_ids == (user_id,)
        assert findings[0].type is InefficiencyType.STANDALONE_NODE

    def test_standalone_permission(self):
        state = connected_state()
        permission_id = add_standalone_permission(state)
        findings = detect(state)
        assert [f.entity_ids for f in findings] == [(permission_id,)]
        assert findings[0].entity_kind is EntityKind.PERMISSION

    def test_standalone_role_needs_both_sides_empty(self):
        state = connected_state()
        role_id = add_standalone_role(state)
        findings = detect(state)
        assert [f.entity_ids for f in findings] == [(role_id,)]
        assert findings[0].entity_kind is EntityKind.ROLE

    def test_one_sided_role_is_not_standalone(self):
        state = connected_state()
        state.add_role("r2")
        state.assign_user("r2", "u1")  # users but no permissions
        assert detect(state) == []

    def test_multiple_standalones_all_reported(self):
        state = connected_state()
        ids = {
            add_standalone_user(state),
            add_standalone_user(state),
            add_standalone_permission(state),
            add_standalone_role(state),
        }
        findings = detect(state)
        assert {f.entity_ids[0] for f in findings} == ids

    def test_user_unassigned_after_revocation_detected(self):
        state = connected_state()
        state.revoke_user("r1", "u1")
        findings = detect(state)
        kinds = {f.entity_kind for f in findings}
        assert EntityKind.USER in kinds

    def test_empty_state(self):
        assert detect(RbacState()) == []
