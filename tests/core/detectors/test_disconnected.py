"""Unit tests for the disconnected-role detector (type 2)."""

from __future__ import annotations

from repro.core.detectors import AnalysisContext, DisconnectedRoleDetector
from repro.core.state import RbacState
from repro.core.taxonomy import Axis


def detect(state: RbacState):
    return DisconnectedRoleDetector().detect(AnalysisContext(state))


class TestDetection:
    def test_role_without_users(self):
        state = RbacState.build(
            users=["u1"],
            roles=["r1"],
            permissions=["p1", "p2"],
            permission_assignments=[("r1", "p1"), ("r1", "p2")],
        )
        findings = detect(state)
        assert len(findings) == 1
        assert findings[0].axis is Axis.USERS
        assert findings[0].entity_ids == ("r1",)
        assert findings[0].details == {"n_permissions": 2}

    def test_role_without_permissions(self):
        state = RbacState.build(
            users=["u1", "u2"],
            roles=["r1"],
            permissions=["p1"],
            user_assignments=[("r1", "u1"), ("r1", "u2")],
        )
        findings = detect(state)
        assert len(findings) == 1
        assert findings[0].axis is Axis.PERMISSIONS
        assert findings[0].details == {"n_users": 2}

    def test_fully_connected_role_not_flagged(self):
        state = RbacState.build(
            users=["u1"],
            roles=["r1"],
            permissions=["p1"],
            user_assignments=[("r1", "u1")],
            permission_assignments=[("r1", "p1")],
        )
        assert detect(state) == []

    def test_standalone_role_excluded(self):
        """A role with neither side is type 1, not type 2."""
        state = RbacState.build(roles=["r1"])
        assert detect(state) == []

    def test_mixed_population(self):
        state = RbacState.build(
            users=["u1"],
            roles=["ok", "no-users", "no-perms", "empty"],
            permissions=["p1"],
            user_assignments=[("ok", "u1"), ("no-perms", "u1")],
            permission_assignments=[("ok", "p1"), ("no-users", "p1")],
        )
        findings = detect(state)
        by_axis = {f.axis: f.entity_ids[0] for f in findings}
        assert by_axis == {Axis.USERS: "no-users", Axis.PERMISSIONS: "no-perms"}

    def test_message_mentions_counts(self):
        state = RbacState.build(
            users=["u1"],
            roles=["r1"],
            permissions=["p1"],
            permission_assignments=[("r1", "p1")],
        )
        (finding,) = detect(state)
        assert "no users" in finding.message
        assert "1 permissions" in finding.message
