"""Unit tests for the single-assignment detector (type 3)."""

from __future__ import annotations

from repro.core.detectors import AnalysisContext, SingleAssignmentDetector
from repro.core.state import RbacState
from repro.core.taxonomy import Axis, Severity


def detect(state: RbacState):
    return SingleAssignmentDetector().detect(AnalysisContext(state))


class TestDetection:
    def test_single_user_role(self):
        state = RbacState.build(
            users=["ceo"],
            roles=["r1"],
            permissions=["p1", "p2"],
            user_assignments=[("r1", "ceo")],
            permission_assignments=[("r1", "p1"), ("r1", "p2")],
        )
        findings = detect(state)
        assert len(findings) == 1
        assert findings[0].axis is Axis.USERS
        assert findings[0].entity_ids == ("r1",)

    def test_single_permission_role(self):
        state = RbacState.build(
            users=["u1", "u2"],
            roles=["r1"],
            permissions=["p1"],
            user_assignments=[("r1", "u1"), ("r1", "u2")],
            permission_assignments=[("r1", "p1")],
        )
        findings = detect(state)
        assert len(findings) == 1
        assert findings[0].axis is Axis.PERMISSIONS

    def test_role_single_on_both_axes_reported_twice(self):
        state = RbacState.build(
            users=["u1"],
            roles=["r1"],
            permissions=["p1"],
            user_assignments=[("r1", "u1")],
            permission_assignments=[("r1", "p1")],
        )
        findings = detect(state)
        assert len(findings) == 2
        assert {f.axis for f in findings} == {Axis.USERS, Axis.PERMISSIONS}

    def test_zero_assignment_role_not_flagged(self):
        """Empty sides are types 1-2, not type 3."""
        state = RbacState.build(roles=["r1"])
        assert detect(state) == []

    def test_two_assignments_not_flagged(self):
        state = RbacState.build(
            users=["u1", "u2"],
            roles=["r1"],
            permissions=[],
            user_assignments=[("r1", "u1"), ("r1", "u2")],
        )
        assert detect(state) == []

    def test_severity_is_informational(self):
        """The paper: a single-user role may be legitimate (e.g. the CEO),
        so these findings rank lowest."""
        state = RbacState.build(
            users=["u1"], roles=["r1"], permissions=[],
            user_assignments=[("r1", "u1")],
        )
        (finding,) = detect(state)
        assert finding.severity is Severity.INFO
