"""Unit tests for the duplicate-roles detector (type 4)."""

from __future__ import annotations

import pytest

from repro.core.detectors import AnalysisContext, DuplicateRolesDetector
from repro.core.state import RbacState
from repro.core.taxonomy import Axis, Severity
from repro.datagen import add_role_twin


def detect(state: RbacState, **kwargs):
    return DuplicateRolesDetector(**kwargs).detect(AnalysisContext(state))


@pytest.fixture
def base_state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2", "u3"],
        roles=["r1", "r2"],
        permissions=["p1", "p2", "p3"],
        user_assignments=[("r1", "u1"), ("r1", "u2"), ("r2", "u3")],
        permission_assignments=[("r1", "p1"), ("r2", "p2"), ("r2", "p3")],
    )


class TestDetection:
    def test_clean_state(self, base_state):
        assert detect(base_state) == []

    def test_twin_found_on_both_axes(self, base_state):
        twin = add_role_twin(base_state, "r1")
        findings = detect(base_state)
        assert len(findings) == 2
        by_axis = {f.axis: f for f in findings}
        assert by_axis[Axis.USERS].entity_ids == ("r1", twin)
        assert by_axis[Axis.PERMISSIONS].entity_ids == ("r1", twin)

    def test_same_users_different_permissions(self, base_state):
        base_state.add_role("r3")
        base_state.assign_user("r3", "u1")
        base_state.assign_user("r3", "u2")
        base_state.assign_permission("r3", "p3")
        findings = detect(base_state)
        assert len(findings) == 1
        assert findings[0].axis is Axis.USERS
        assert findings[0].entity_ids == ("r1", "r3")

    def test_group_of_three(self, base_state):
        first = add_role_twin(base_state, "r1")
        second = add_role_twin(base_state, "r1")
        findings = detect(base_state, axes=(Axis.USERS,))
        assert len(findings) == 1
        assert findings[0].entity_ids == ("r1", first, second)
        assert findings[0].details["redundant_roles"] == 2

    def test_empty_roles_do_not_form_groups(self):
        """Two roles with no users are type-2 findings; treating them as
        'sharing the same (empty) user set' would be vacuous."""
        state = RbacState.build(
            users=["u1"],
            roles=["a", "b"],
            permissions=["p1", "p2"],
            permission_assignments=[("a", "p1"), ("b", "p2")],
        )
        findings = detect(state)
        assert findings == []

    def test_axis_restriction(self, base_state):
        add_role_twin(base_state, "r1")
        users_only = detect(base_state, axes=(Axis.USERS,))
        assert [f.axis for f in users_only] == [Axis.USERS]

    def test_severity_high(self, base_state):
        add_role_twin(base_state, "r1")
        for finding in detect(base_state):
            assert finding.severity is Severity.HIGH

    def test_details_shared_count(self, base_state):
        add_role_twin(base_state, "r2")
        findings = detect(base_state, axes=(Axis.PERMISSIONS,))
        assert findings[0].details["shared_count"] == 2  # p2, p3

    @pytest.mark.parametrize("finder", ["cooccurrence", "dbscan", "hash", "hnsw"])
    def test_finder_plumbing(self, base_state, finder):
        twin = add_role_twin(base_state, "r1")
        findings = detect(base_state, finder=finder, axes=(Axis.USERS,))
        assert [f.entity_ids for f in findings] == [("r1", twin)]

    def test_message_truncates_long_groups(self, base_state):
        for _ in range(7):
            add_role_twin(base_state, "r1")
        findings = detect(base_state, axes=(Axis.USERS,))
        assert "…" in findings[0].message
