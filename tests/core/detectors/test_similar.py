"""Unit tests for the similar-roles detector (type 5)."""

from __future__ import annotations

import pytest

from repro.core.detectors import AnalysisContext, SimilarRolesDetector
from repro.core.state import RbacState
from repro.core.taxonomy import Axis
from repro.datagen import add_role_twin, add_similar_role
from repro.exceptions import ConfigurationError


def detect(state: RbacState, **kwargs):
    return SimilarRolesDetector(**kwargs).detect(AnalysisContext(state))


@pytest.fixture
def base_state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2", "u3", "u4"],
        roles=["r1"],
        permissions=["p1", "p2", "p3", "p4"],
        user_assignments=[("r1", "u1"), ("r1", "u2")],
        permission_assignments=[("r1", "p1"), ("r1", "p2")],
    )


class TestValidation:
    def test_threshold_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarRolesDetector(max_differences=0)


class TestDetection:
    def test_clean_state(self, base_state):
        assert detect(base_state) == []

    def test_one_extra_user(self, base_state):
        similar = add_similar_role(base_state, "r1", extra_user_ids=("u3",))
        findings = detect(base_state)
        # users axis: distance 1.  permissions axis: exact duplicates —
        # those belong to type 4, not here.
        assert len(findings) == 1
        assert findings[0].axis is Axis.USERS
        assert findings[0].entity_ids == ("r1", similar)

    def test_one_extra_permission(self, base_state):
        similar = add_similar_role(
            base_state, "r1", extra_permission_ids=("p3",)
        )
        findings = detect(base_state)
        assert len(findings) == 1
        assert findings[0].axis is Axis.PERMISSIONS
        assert findings[0].entity_ids == ("r1", similar)

    def test_distance_two_needs_threshold_two(self, base_state):
        similar = add_similar_role(
            base_state, "r1", extra_user_ids=("u3", "u4")
        )
        assert detect(base_state, max_differences=1) == []
        findings = detect(base_state, max_differences=2)
        assert [f.entity_ids for f in findings] == [("r1", similar)]

    def test_threshold_recorded_in_group(self, base_state):
        add_similar_role(base_state, "r1", extra_user_ids=("u3",))
        (finding,) = detect(base_state, max_differences=3)
        assert finding.group is not None
        assert finding.group.max_differences == 3


class TestDuplicateCollapsing:
    def test_exact_duplicates_not_reported_as_similar(self, base_state):
        add_role_twin(base_state, "r1")
        assert detect(base_state) == []

    def test_duplicate_class_represented_once(self, base_state):
        """Two copies of r1 plus one near-copy: the near-pair is reported
        over representatives, with the class size recorded."""
        add_role_twin(base_state, "r1")
        similar = add_similar_role(base_state, "r1", extra_user_ids=("u3",))
        findings = detect(base_state, axes=(Axis.USERS,))
        assert len(findings) == 1
        assert findings[0].entity_ids == ("r1", similar)
        assert findings[0].details["represented_roles"] == 3

    def test_collapse_disabled_reports_all_members(self, base_state):
        twin = add_role_twin(base_state, "r1")
        similar = add_similar_role(base_state, "r1", extra_user_ids=("u3",))
        findings = detect(
            base_state, axes=(Axis.USERS,), collapse_duplicates=False
        )
        assert len(findings) == 1
        assert set(findings[0].entity_ids) == {"r1", twin, similar}


class TestEmptyRows:
    def test_empty_roles_excluded(self):
        state = RbacState.build(
            users=["u1"],
            roles=["empty-a", "empty-b", "tiny"],
            permissions=["p1", "p2", "p3"],
            user_assignments=[("tiny", "u1")],
            permission_assignments=[
                ("empty-a", "p1"),
                ("empty-b", "p2"),
                ("tiny", "p3"),
            ],
        )
        # Roles with zero users never join user-axis similarity groups,
        # even though hamming(empty, {u1}) = 1.
        findings = detect(state, axes=(Axis.USERS,))
        assert findings == []
