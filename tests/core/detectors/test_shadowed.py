"""Unit tests for the shadowed-role extension detector."""

from __future__ import annotations

import pytest

from repro.core import AnalysisConfig, InefficiencyType, analyze
from repro.core.detectors import AnalysisContext, ShadowedRoleDetector
from repro.core.state import RbacState


def detect(state: RbacState):
    return ShadowedRoleDetector().detect(AnalysisContext(state))


def two_role_state(
    big_users, big_perms, small_users, small_perms
) -> RbacState:
    users = sorted(set(big_users) | set(small_users))
    perms = sorted(set(big_perms) | set(small_perms))
    return RbacState.build(
        users=users,
        roles=["big", "small"],
        permissions=perms,
        user_assignments=[("big", u) for u in big_users]
        + [("small", u) for u in small_users],
        permission_assignments=[("big", p) for p in big_perms]
        + [("small", p) for p in small_perms],
    )


class TestDetection:
    def test_fully_dominated_role_found(self):
        state = two_role_state(
            ["a", "b"], ["p", "q"], ["a"], ["p"]
        )
        findings = detect(state)
        assert len(findings) == 1
        assert findings[0].entity_ids == ("small",)
        assert findings[0].details["shadowed_by"] == "big"
        assert findings[0].type is InefficiencyType.SHADOWED_ROLE

    def test_user_subset_alone_insufficient(self):
        state = two_role_state(["a", "b"], ["p"], ["a"], ["q"])
        assert detect(state) == []

    def test_permission_subset_alone_insufficient(self):
        state = two_role_state(["a"], ["p", "q"], ["b"], ["p"])
        assert detect(state) == []

    def test_exact_duplicates_excluded(self):
        """Mutual domination = type 4, handled by the merge planner."""
        state = two_role_state(["a"], ["p"], ["a"], ["p"])
        assert detect(state) == []

    def test_equal_users_subset_permissions_is_shadowed(self):
        state = two_role_state(["a", "b"], ["p", "q"], ["a", "b"], ["p"])
        findings = detect(state)
        assert [f.entity_ids for f in findings] == [("small",)]

    def test_roles_with_empty_sides_excluded(self):
        """One-sided roles are types 1-2; an empty side is trivially a
        subset of everything and must not produce shadow findings."""
        state = RbacState.build(
            users=["a"],
            roles=["big", "no-perms", "no-users"],
            permissions=["p"],
            user_assignments=[("big", "a"), ("no-perms", "a")],
            permission_assignments=[("big", "p"), ("no-users", "p")],
        )
        assert detect(state) == []

    def test_chain_reports_each_dominated_role_once(self):
        state = RbacState.build(
            users=["a", "b", "c"],
            roles=["r1", "r2", "r3"],
            permissions=["p1", "p2", "p3"],
            user_assignments=[
                ("r1", "a"),
                ("r2", "a"), ("r2", "b"),
                ("r3", "a"), ("r3", "b"), ("r3", "c"),
            ],
            permission_assignments=[
                ("r1", "p1"),
                ("r2", "p1"), ("r2", "p2"),
                ("r3", "p1"), ("r3", "p2"), ("r3", "p3"),
            ],
        )
        findings = detect(state)
        assert [f.entity_ids[0] for f in findings] == ["r1", "r2"]

    def test_deterministic(self):
        state = two_role_state(["a", "b"], ["p", "q"], ["a"], ["p"])
        first = [f.to_dict() for f in detect(state)]
        second = [f.to_dict() for f in detect(state)]
        assert first == second


class TestEngineIntegration:
    def test_disabled_by_default(self):
        state = two_role_state(["a", "b"], ["p", "q"], ["a"], ["p"])
        report = analyze(state)
        assert report.of_type(InefficiencyType.SHADOWED_ROLE) == []

    def test_with_extensions_enables(self):
        state = two_role_state(["a", "b"], ["p", "q"], ["a"], ["p"])
        report = analyze(state, AnalysisConfig.with_extensions())
        assert len(report.of_type(InefficiencyType.SHADOWED_ROLE)) == 1

    def test_with_extensions_keeps_other_kwargs(self):
        config = AnalysisConfig.with_extensions(similarity_threshold=2)
        assert config.similarity_threshold == 2
        assert InefficiencyType.SHADOWED_ROLE in config.enabled_types
        assert InefficiencyType.DUPLICATE_ROLES in config.enabled_types

    def test_paper_example_has_no_shadowed_roles(self, paper_example):
        report = analyze(paper_example, AnalysisConfig.with_extensions())
        assert report.of_type(InefficiencyType.SHADOWED_ROLE) == []

    def test_planted_org_has_no_accidental_shadowing(self):
        from repro.datagen import OrgProfile, generate_org

        org = generate_org(OrgProfile.small(divisor=200, seed=11))
        report = analyze(org.state, AnalysisConfig.with_extensions())
        assert report.of_type(InefficiencyType.SHADOWED_ROLE) == []
        # the paper's five counts are unaffected by enabling the extension
        assert report.counts() == org.expected_counts()
