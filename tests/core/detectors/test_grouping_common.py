"""Unit tests for the shared grouping helpers (``_grouping_common``)."""

from __future__ import annotations

import pytest

from repro.core.detectors._grouping_common import (
    find_role_groups,
    nonempty_submatrix,
)
from repro.core.grouping import CooccurrenceGroupFinder
from repro.core.matrices import AssignmentMatrix
from repro.core.state import RbacState


@pytest.fixture
def ruam_with_empty_rows() -> AssignmentMatrix:
    """R1/R2 share both users; R3 and R4 have no users at all."""
    state = RbacState.build(
        users=["U1", "U2"],
        roles=["R1", "R2", "R3", "R4"],
        permissions=["P1"],
        user_assignments=[
            ("R1", "U1"),
            ("R1", "U2"),
            ("R2", "U1"),
            ("R2", "U2"),
        ],
        permission_assignments=[("R3", "P1")],
    )
    return AssignmentMatrix.ruam(state)


class TestNonemptySubmatrix:
    def test_drops_empty_rows_and_maps_back(self, ruam_with_empty_rows):
        submatrix, original = nonempty_submatrix(ruam_with_empty_rows)
        assert submatrix.shape == (2, 2)
        assert original.tolist() == [0, 1]


class TestFindRoleGroups:
    def test_skip_empty_rows_restricts_to_connected_roles(
        self, ruam_with_empty_rows
    ):
        groups = find_role_groups(
            ruam_with_empty_rows, CooccurrenceGroupFinder(), 0
        )
        assert groups == [["R1", "R2"]]

    def test_skip_empty_rows_false_sees_the_full_matrix(
        self, ruam_with_empty_rows
    ):
        # Without the restriction the finder also sees R3/R4, whose
        # (identical, empty) rows form a group of their own.
        groups = find_role_groups(
            ruam_with_empty_rows,
            CooccurrenceGroupFinder(),
            0,
            skip_empty_rows=False,
        )
        assert groups == [["R1", "R2"], ["R3", "R4"]]

    def test_index_mapping_survives_group_order(self, ruam_with_empty_rows):
        # The np.take remap must yield plain ints groups_to_ids accepts,
        # and ids must come back in member order.
        groups = find_role_groups(
            ruam_with_empty_rows, CooccurrenceGroupFinder(), 1
        )
        assert all(
            isinstance(role_id, str) for group in groups for role_id in group
        )
        assert groups == [["R1", "R2"]]
