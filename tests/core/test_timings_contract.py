"""Contract tests for ``Report.timings`` / ``total_seconds``.

These pin down guarantees the rest of the repo (benchmarks, the CLI's
timing table, the metrics export) quietly relies on but nothing asserted
before:

* ``matrix_build`` is always present, even for an empty state;
* the per-detector key set is identical between serial and parallel
  runs of the same configuration;
* for serial runs, ``total_seconds`` bounds the sum of all component
  timings from above (parallel runs sum worker-side durations, which
  may legitimately exceed wall-clock, so the bound is serial-only).
"""

from __future__ import annotations

import pytest

from repro.core.engine import AnalysisConfig, analyze


def _timings(state, **kwargs):
    return analyze(state, AnalysisConfig(**kwargs))


class TestMatrixBuildKey:
    def test_present_for_paper_example(self, paper_example):
        assert "matrix_build" in _timings(paper_example).timings

    def test_present_for_empty_state(self, empty_state):
        report = _timings(empty_state)
        assert "matrix_build" in report.timings
        assert report.timings["matrix_build"] >= 0.0

    def test_present_with_no_detectors_enabled(self, paper_example):
        report = _timings(paper_example, enabled_types=())
        assert list(report.timings) == ["matrix_build"]

    def test_present_for_parallel_runs(self, paper_example):
        assert "matrix_build" in _timings(paper_example, n_workers=2).timings


class TestSerialParallelKeyParity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_same_keys_for_every_worker_count(self, paper_example, workers):
        serial = _timings(paper_example, n_workers=1)
        parallel = _timings(paper_example, n_workers=workers)
        assert set(parallel.timings) == set(serial.timings)

    def test_one_key_per_enabled_detector_plus_engine_phases(
        self, paper_example
    ):
        report = _timings(paper_example)
        assert set(report.timings) == {
            "matrix_build",
            "workspace_warm",
            "standalone_nodes",
            "disconnected_roles",
            "single_assignment_roles",
            "duplicate_roles",
            "similar_roles",
        }

    def test_no_warm_key_without_warmable_detectors(self, paper_example):
        from repro.core.taxonomy import InefficiencyType

        report = _timings(
            paper_example,
            enabled_types=(InefficiencyType.STANDALONE_NODE,),
        )
        assert set(report.timings) == {"matrix_build", "standalone_nodes"}


class TestTotalBoundsComponents:
    def test_serial_total_bounds_component_sum(self, paper_example):
        report = _timings(paper_example)
        assert report.total_seconds >= sum(report.timings.values()) - 1e-9

    def test_serial_total_bounds_on_empty_state(self, empty_state):
        report = _timings(empty_state)
        assert report.total_seconds >= sum(report.timings.values()) - 1e-9

    def test_all_timings_non_negative(self, paper_example):
        report = _timings(paper_example, n_workers=2)
        assert all(v >= 0.0 for v in report.timings.values())
        assert report.total_seconds >= 0.0
