"""Unit tests for report diffing."""

from __future__ import annotations

import pytest

from repro.core import analyze, diff_reports
from repro.core.reportdiff import finding_key
from repro.datagen import add_role_twin, add_standalone_user
from repro.remediation import apply_plan, build_plan


class TestFindingKey:
    def test_key_is_order_insensitive_in_entities(self, paper_example):
        report = analyze(paper_example)
        for finding in report.findings:
            key = finding_key(finding)
            assert key[2] == tuple(sorted(finding.entity_ids))


class TestDiff:
    def test_identical_reports_empty_diff(self, paper_example):
        a = analyze(paper_example)
        b = analyze(paper_example)
        delta = diff_reports(a, b)
        assert delta.is_empty
        assert delta.new_findings == []
        assert delta.resolved_findings == []
        assert delta.persisting_count == len(a.findings)

    def test_new_finding_detected(self, paper_example):
        before = analyze(paper_example)
        ghost = add_standalone_user(paper_example)
        after = analyze(paper_example)
        delta = diff_reports(before, after)
        assert [f.entity_ids for f in delta.new_findings] == [(ghost,)]
        assert delta.resolved_findings == []
        assert delta.count_deltas["standalone_users"] == 1

    def test_resolved_after_remediation(self, paper_example):
        before = analyze(paper_example)
        cleaned = apply_plan(paper_example, build_plan(before))
        after = analyze(cleaned)
        delta = diff_reports(before, after)
        assert len(delta.resolved_findings) > 0
        assert delta.count_deltas["roles_same_users"] == -2
        assert delta.count_deltas["roles_same_permissions"] == -2

    def test_group_membership_change_is_new_plus_resolved(
        self, paper_example
    ):
        before = analyze(paper_example)
        twin = add_role_twin(paper_example, "R04")
        after = analyze(paper_example)
        delta = diff_reports(before, after)
        # the permissions group (R04, R05) grew to (R04, R05, twin):
        # old identity resolved, new identity appears
        resolved_ids = {f.entity_ids for f in delta.resolved_findings}
        new_ids = {tuple(sorted(f.entity_ids)) for f in delta.new_findings}
        assert ("R04", "R05") in resolved_ids
        assert tuple(sorted(("R04", "R05", twin))) in new_ids

    def test_to_text_shape(self, paper_example):
        before = analyze(paper_example)
        add_standalone_user(paper_example, "ghost")
        after = analyze(paper_example)
        text = diff_reports(before, after).to_text()
        assert "new findings:       1" in text
        assert "+ user 'ghost'" in text
        assert "standalone_users" in text

    def test_to_dict_round_trips_json(self, paper_example):
        import json

        before = analyze(paper_example)
        add_standalone_user(paper_example)
        after = analyze(paper_example)
        payload = json.loads(
            json.dumps(diff_reports(before, after).to_dict())
        )
        assert payload["persisting"] == len(before.findings)
        assert len(payload["new"]) == 1

    def test_listing_caps(self, paper_example):
        before = analyze(paper_example)
        for _ in range(15):
            add_standalone_user(paper_example)
        after = analyze(paper_example)
        text = diff_reports(before, after).to_text(max_listed=5)
        assert "… and 10 more" in text
