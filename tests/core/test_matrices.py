"""Unit tests for AssignmentMatrix (RUAM / RPAM)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.matrices import AssignmentMatrix
from repro.core.state import RbacState
from repro.exceptions import ValidationError


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2", "u3"],
        roles=["r1", "r2"],
        permissions=["p1", "p2"],
        user_assignments=[("r1", "u1"), ("r1", "u3"), ("r2", "u2")],
        permission_assignments=[("r1", "p2"), ("r2", "p1"), ("r2", "p2")],
    )


class TestConstruction:
    def test_ruam_shape_and_content(self, state):
        ruam = AssignmentMatrix.ruam(state)
        assert ruam.shape == (2, 3)
        assert ruam.row_ids == ["r1", "r2"]
        assert ruam.col_ids == ["u1", "u2", "u3"]
        assert ruam.dense.tolist() == [
            [True, False, True],
            [False, True, False],
        ]

    def test_rpam_content(self, state):
        rpam = AssignmentMatrix.rpam(state)
        assert rpam.dense.tolist() == [
            [False, True],
            [True, True],
        ]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentMatrix(np.zeros((2, 2), dtype=bool), ["a"], ["x", "y"])

    def test_duplicate_row_ids_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentMatrix(
                np.zeros((2, 1), dtype=bool), ["a", "a"], ["x"]
            )

    def test_duplicate_col_ids_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentMatrix(
                np.zeros((1, 2), dtype=bool), ["a"], ["x", "x"]
            )

    def test_accepts_sparse_input(self):
        matrix = AssignmentMatrix(
            sp.csr_matrix(np.eye(2)), ["a", "b"], ["x", "y"]
        )
        assert matrix.dense.tolist() == [[True, False], [False, True]]


class TestRepresentations:
    def test_dense_csr_bits_agree(self, state):
        ruam = AssignmentMatrix.ruam(state)
        dense = ruam.dense
        assert np.array_equal(ruam.csr.toarray().astype(bool), dense)
        assert np.array_equal(ruam.bits.to_dense(), dense)

    def test_csr_dtype_int64(self, state):
        assert AssignmentMatrix.ruam(state).csr.dtype == np.int64

    def test_lazy_dense_from_sparse(self):
        matrix = AssignmentMatrix(
            sp.csr_matrix((2, 2), dtype=np.int64), ["a", "b"], ["x", "y"]
        )
        assert matrix.dense.sum() == 0


class TestSums:
    def test_row_sums(self, state):
        ruam = AssignmentMatrix.ruam(state)
        assert ruam.row_sums.tolist() == [2, 1]

    def test_col_sums(self, state):
        ruam = AssignmentMatrix.ruam(state)
        assert ruam.col_sums.tolist() == [1, 1, 1]

    def test_rows_with_sum(self, state):
        ruam = AssignmentMatrix.ruam(state)
        assert ruam.rows_with_sum(1) == ["r2"]
        assert ruam.rows_with_sum(0) == []

    def test_cols_with_sum_zero_identifies_standalone(self):
        s = RbacState.build(
            users=["u1", "u2"], roles=["r1"], permissions=[],
            user_assignments=[("r1", "u1")],
        )
        ruam = AssignmentMatrix.ruam(s)
        assert ruam.cols_with_sum(0) == ["u2"]


class TestLabelMapping:
    def test_row_id_and_index_round_trip(self, state):
        ruam = AssignmentMatrix.ruam(state)
        for index, role_id in enumerate(ruam.row_ids):
            assert ruam.row_id(index) == role_id
            assert ruam.row_index(role_id) == index

    def test_unknown_row_id_raises(self, state):
        with pytest.raises(ValidationError):
            AssignmentMatrix.ruam(state).row_index("nope")

    def test_groups_to_ids(self, state):
        ruam = AssignmentMatrix.ruam(state)
        assert ruam.groups_to_ids([[0, 1]]) == [["r1", "r2"]]
        assert ruam.groups_to_ids([]) == []


class TestMemoryShape:
    def test_matrices_store_r_by_u_and_r_by_p(self, state):
        """The paper's memory argument: r*(p+u) instead of (r+p+u)^2."""
        ruam = AssignmentMatrix.ruam(state)
        rpam = AssignmentMatrix.rpam(state)
        assert ruam.shape == (state.n_roles, state.n_users)
        assert rpam.shape == (state.n_roles, state.n_permissions)
