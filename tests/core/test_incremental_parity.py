"""Step-by-step parity between the incremental auditor and the batch engine.

``tests/core/test_incremental.py`` checks the end state of a mutation
sequence; these tests assert the stronger per-step invariant that the
service's ``GET /v1/counts`` endpoint relies on: after *every single*
mutation in a random interleaved stream,

    auditor.counts() == analyze(auditor.state).counts()

including the awkward cases — removing an entity and re-adding the same
id (with different edges), churn on a freshly-emptied state, and
interleavings of structural (add/remove) and edge (assign/revoke) ops.
"""

from __future__ import annotations

import random

import pytest

from repro.core import AnalysisConfig, analyze
from repro.core.incremental import IncrementalAuditor


def batch_counts(auditor: IncrementalAuditor) -> dict[str, int]:
    config = AnalysisConfig(
        similarity_threshold=auditor.similarity_threshold
    )
    return analyze(auditor.state, config).counts()


def assert_parity(auditor: IncrementalAuditor, context: str) -> None:
    incremental = auditor.counts()
    batch = batch_counts(auditor)
    assert incremental == batch, (
        f"counts drifted after {context}: "
        f"incremental={incremental} batch={batch}"
    )


# All ten mutation kinds the service's /v1/mutations endpoint accepts,
# weighted so streams keep a healthy mix of structure and edges alive.
WEIGHTED_OPS = (
    ["assign_user"] * 5
    + ["assign_permission"] * 5
    + ["revoke_user"] * 2
    + ["revoke_permission"] * 2
    + ["add_user", "add_role", "add_permission"]
    + ["remove_user", "remove_role", "remove_permission"]
)


def random_step(
    rng: random.Random, auditor: IncrementalAuditor, next_id: list[int]
) -> str | None:
    """Apply one random valid mutation; return its description or None."""
    state = auditor.state
    users = state.user_ids()
    roles = state.role_ids()
    permissions = state.permission_ids()
    op = rng.choice(WEIGHTED_OPS)
    if op == "assign_user" and roles and users:
        role, user = rng.choice(roles), rng.choice(users)
        if user in state.users_of_role(role):
            return None
        auditor.assign_user(role, user)
        return f"assign_user({role}, {user})"
    if op == "assign_permission" and roles and permissions:
        role, perm = rng.choice(roles), rng.choice(permissions)
        if perm in state.permissions_of_role(role):
            return None
        auditor.assign_permission(role, perm)
        return f"assign_permission({role}, {perm})"
    if op == "revoke_user" and roles:
        role = rng.choice(roles)
        members = sorted(state.users_of_role(role))
        if not members:
            return None
        user = rng.choice(members)
        auditor.revoke_user(role, user)
        return f"revoke_user({role}, {user})"
    if op == "revoke_permission" and roles:
        role = rng.choice(roles)
        grants = sorted(state.permissions_of_role(role))
        if not grants:
            return None
        perm = rng.choice(grants)
        auditor.revoke_permission(role, perm)
        return f"revoke_permission({role}, {perm})"
    if op == "add_user":
        uid = f"u{next_id[0]}"
        next_id[0] += 1
        auditor.add_user(uid)
        return f"add_user({uid})"
    if op == "add_role":
        rid = f"r{next_id[0]}"
        next_id[0] += 1
        auditor.add_role(rid)
        return f"add_role({rid})"
    if op == "add_permission":
        pid = f"p{next_id[0]}"
        next_id[0] += 1
        auditor.add_permission(pid)
        return f"add_permission({pid})"
    if op == "remove_user" and users:
        user = rng.choice(users)
        auditor.remove_user(user)
        return f"remove_user({user})"
    if op == "remove_role" and roles:
        role = rng.choice(roles)
        auditor.remove_role(role)
        return f"remove_role({role})"
    if op == "remove_permission" and permissions:
        perm = rng.choice(permissions)
        auditor.remove_permission(perm)
        return f"remove_permission({perm})"
    return None


def seed_auditor(
    rng: random.Random, threshold: int
) -> tuple[IncrementalAuditor, list[int]]:
    auditor = IncrementalAuditor(similarity_threshold=threshold)
    for i in range(4):
        auditor.add_user(f"u{i}")
        auditor.add_role(f"r{i}")
        auditor.add_permission(f"p{i}")
    for _ in range(8):
        auditor.assign_user(
            f"r{rng.randrange(4)}", f"u{rng.randrange(4)}"
        )
        auditor.assign_permission(
            f"r{rng.randrange(4)}", f"p{rng.randrange(4)}"
        )
    return auditor, [4]


class TestRandomInterleavedStreams:
    @pytest.mark.parametrize("seed", [7, 1234, 999_331])
    @pytest.mark.parametrize("threshold", [1, 2])
    def test_parity_at_every_step(self, seed, threshold):
        rng = random.Random(seed)
        auditor, next_id = seed_auditor(rng, threshold)
        assert_parity(auditor, "seeding")
        applied = 0
        attempts = 0
        while applied < 50 and attempts < 400:
            attempts += 1
            description = random_step(rng, auditor, next_id)
            if description is None:
                continue
            applied += 1
            assert_parity(auditor, f"step {applied}: {description}")
        assert applied == 50

    def test_drain_to_empty_and_rebuild(self):
        rng = random.Random(42)
        auditor, next_id = seed_auditor(rng, threshold=1)
        for user in list(auditor.state.user_ids()):
            auditor.remove_user(user)
            assert_parity(auditor, f"remove_user({user})")
        for role in list(auditor.state.role_ids()):
            auditor.remove_role(role)
            assert_parity(auditor, f"remove_role({role})")
        for perm in list(auditor.state.permission_ids()):
            auditor.remove_permission(perm)
            assert_parity(auditor, f"remove_permission({perm})")
        assert auditor.state.n_roles == 0
        for _ in range(20):
            if random_step(rng, auditor, next_id) is not None:
                assert_parity(auditor, "rebuild after drain")


class TestRemoveThenReAdd:
    """Re-using an id after removal must behave like a brand-new entity."""

    def test_same_role_id_different_edges(self):
        auditor = IncrementalAuditor(similarity_threshold=1)
        for i in range(3):
            auditor.add_user(f"u{i}")
            auditor.add_permission(f"p{i}")
        auditor.add_role("engineering")
        auditor.add_role("sales")
        for i in range(3):
            auditor.assign_user("engineering", f"u{i}")
            auditor.assign_permission("engineering", f"p{i}")
        auditor.assign_user("sales", "u0")
        assert_parity(auditor, "initial wiring")

        auditor.remove_role("engineering")
        assert_parity(auditor, "remove_role(engineering)")

        # Same id, different shape: one member, one grant.
        auditor.add_role("engineering")
        assert_parity(auditor, "re-add engineering (empty)")
        auditor.assign_user("engineering", "u2")
        assert_parity(auditor, "re-added engineering gains u2")
        auditor.assign_permission("engineering", "p0")
        assert_parity(auditor, "re-added engineering gains p0")
        assert auditor.state.users_of_role("engineering") == {"u2"}
        assert auditor.state.permissions_of_role("engineering") == {"p0"}

    def test_same_role_id_identical_edges(self):
        auditor = IncrementalAuditor(similarity_threshold=2)
        for i in range(4):
            auditor.add_user(f"u{i}")
            auditor.add_permission(f"p{i}")
        auditor.add_role("ops")
        auditor.add_role("ops-copy")
        for role in ("ops", "ops-copy"):
            for i in range(4):
                auditor.assign_user(role, f"u{i}")
                auditor.assign_permission(role, f"p{i}")
        assert_parity(auditor, "duplicate pair wired")
        baseline = auditor.counts()

        auditor.remove_role("ops")
        assert_parity(auditor, "remove_role(ops)")
        auditor.add_role("ops")
        for i in range(4):
            auditor.assign_user("ops", f"u{i}")
            assert_parity(auditor, f"re-add ops: assign_user(u{i})")
            auditor.assign_permission("ops", f"p{i}")
            assert_parity(auditor, f"re-add ops: assign_permission(p{i})")
        assert auditor.counts() == baseline

    def test_remove_re_add_interleaved_with_other_mutations(self):
        rng = random.Random(2026)
        auditor, next_id = seed_auditor(rng, threshold=1)
        target = auditor.state.role_ids()[0]
        for round_number in range(5):
            auditor.remove_role(target)
            assert_parity(auditor, f"round {round_number}: remove {target}")
            for _ in range(3):
                if random_step(rng, auditor, next_id) is not None:
                    assert_parity(auditor, f"round {round_number}: noise")
            auditor.add_role(target)
            assert_parity(auditor, f"round {round_number}: re-add {target}")
            users = auditor.state.user_ids()
            if users:
                auditor.assign_user(target, rng.choice(users))
                assert_parity(auditor, f"round {round_number}: rewire")
