"""Unit tests for the inefficiency taxonomy types."""

from __future__ import annotations

import pytest

from repro.core.entities import EntityKind
from repro.core.taxonomy import (
    DEFAULT_SEVERITY,
    Axis,
    Finding,
    InefficiencyType,
    RoleGroup,
    Severity,
    sort_findings,
)


class TestEnums:
    def test_paper_taxonomy_plus_one_extension(self):
        # the paper's five types plus the shadowed-role extension
        assert len(InefficiencyType) == 6
        assert InefficiencyType.SHADOWED_ROLE.value == "shadowed_role"

    def test_axis_entity_kinds(self):
        assert Axis.USERS.entity_kind is EntityKind.USER
        assert Axis.PERMISSIONS.entity_kind is EntityKind.PERMISSION

    def test_severity_ranks_ordered(self):
        assert (
            Severity.INFO.rank
            < Severity.LOW.rank
            < Severity.MEDIUM.rank
            < Severity.HIGH.rank
        )

    def test_every_type_has_default_severity(self):
        for kind in InefficiencyType:
            assert kind in DEFAULT_SEVERITY


class TestRoleGroup:
    def test_minimum_two_members(self):
        with pytest.raises(ValueError):
            RoleGroup(role_ids=("r1",), axis=Axis.USERS)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            RoleGroup(role_ids=("r1", "r2"), axis=Axis.USERS, max_differences=-1)

    def test_redundant_count(self):
        group = RoleGroup(role_ids=("a", "b", "c"), axis=Axis.PERMISSIONS)
        assert group.size == 3
        assert group.redundant_count == 2


class TestFinding:
    def _finding(self, **overrides):
        defaults = dict(
            type=InefficiencyType.STANDALONE_NODE,
            entity_kind=EntityKind.USER,
            entity_ids=("u1",),
            severity=Severity.LOW,
            message="user 'u1' unused",
        )
        defaults.update(overrides)
        return Finding(**defaults)

    def test_requires_entities(self):
        with pytest.raises(ValueError):
            self._finding(entity_ids=())

    def test_to_dict_minimal(self):
        payload = self._finding().to_dict()
        assert payload["type"] == "standalone_node"
        assert payload["entity_ids"] == ["u1"]
        assert payload["severity"] == "low"
        assert "axis" not in payload
        assert "group" not in payload

    def test_to_dict_with_group(self):
        group = RoleGroup(
            role_ids=("r1", "r2"), axis=Axis.USERS, max_differences=1
        )
        payload = self._finding(
            type=InefficiencyType.SIMILAR_ROLES,
            entity_kind=EntityKind.ROLE,
            entity_ids=("r1", "r2"),
            axis=Axis.USERS,
            group=group,
        ).to_dict()
        assert payload["axis"] == "users"
        assert payload["group"]["max_differences"] == 1
        assert payload["group"]["role_ids"] == ["r1", "r2"]

    def test_details_copied(self):
        details = {"k": 1}
        finding = self._finding(details=details)
        details["k"] = 2
        assert finding.details["k"] == 1


class TestSorting:
    def test_severity_descending(self):
        low = Finding(
            type=InefficiencyType.STANDALONE_NODE,
            entity_kind=EntityKind.USER,
            entity_ids=("u1",),
            severity=Severity.LOW,
            message="low",
        )
        high = Finding(
            type=InefficiencyType.DUPLICATE_ROLES,
            entity_kind=EntityKind.ROLE,
            entity_ids=("r1", "r2"),
            severity=Severity.HIGH,
            message="high",
        )
        assert sort_findings([low, high]) == [high, low]

    def test_stable_deterministic_tiebreak(self):
        a = Finding(
            type=InefficiencyType.STANDALONE_NODE,
            entity_kind=EntityKind.USER,
            entity_ids=("a",),
            severity=Severity.LOW,
            message="a",
        )
        b = Finding(
            type=InefficiencyType.STANDALONE_NODE,
            entity_kind=EntityKind.USER,
            entity_ids=("b",),
            severity=Severity.LOW,
            message="b",
        )
        assert sort_findings([b, a]) == [a, b]
