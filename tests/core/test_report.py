"""Unit tests for the Report container and its renderers."""

from __future__ import annotations

import json

import pytest

from repro.core import InefficiencyType, analyze
from repro.core.taxonomy import Axis
from repro.datagen import add_role_twin


@pytest.fixture
def report(paper_example):
    return analyze(paper_example)


class TestSelection:
    def test_of_type(self, report):
        findings = report.of_type(InefficiencyType.DUPLICATE_ROLES)
        assert len(findings) == 2

    def test_on_axis(self, report):
        assert len(
            report.on_axis(InefficiencyType.DUPLICATE_ROLES, Axis.USERS)
        ) == 1

    def test_sorted_findings_by_severity(self, report):
        ranks = [f.severity.rank for f in report.sorted_findings()]
        assert ranks == sorted(ranks, reverse=True)


class TestCounts:
    def test_group_counts_are_roles_not_groups(self, paper_example):
        """A 3-member duplicate group counts as 3 roles (paper: '8,000
        roles sharing the same users')."""
        add_role_twin(paper_example, "R04")
        counts = analyze(paper_example).counts()
        assert counts["roles_same_permissions"] == 3

    def test_consolidation_potential(self, report):
        potential = report.consolidation_potential()
        # Two pair-groups (users axis and permissions axis), one removable
        # role each.
        assert potential["removable_via_same_users"] == 1
        assert potential["removable_via_same_permissions"] == 1
        assert potential["removable_total_upper_bound"] == 2
        assert potential["total_roles"] == 5
        assert potential["fraction_of_roles"] == pytest.approx(0.4)

    def test_consolidation_empty_state(self):
        from repro.core.state import RbacState

        potential = analyze(RbacState()).consolidation_potential()
        assert potential["fraction_of_roles"] == 0.0


class TestRendering:
    def test_to_dict_round_trips_through_json(self, report):
        payload = json.loads(report.to_json())
        assert payload["dataset"]["roles"] == 5
        assert payload["counts"]["roles_same_users"] == 2
        assert payload["n_findings"] == len(report.findings)
        assert len(payload["findings"]) == len(report.findings)

    def test_to_text_mentions_key_numbers(self, report):
        text = report.to_text()
        assert "5 roles" in text
        assert "roles_same_users" in text
        assert "counts by inefficiency" in text

    def test_to_text_caps_findings(self, report):
        text = report.to_text(max_findings=2)
        assert "showing 2 of" in text

    def test_to_markdown_has_table(self, report):
        markdown = report.to_markdown()
        assert "| Inefficiency | Count |" in markdown
        assert "| roles same users | 2 |" in markdown

    def test_repr(self, report):
        assert "findings=" in repr(report)


class TestCsvExport:
    def test_header_and_rows(self, report):
        lines = report.to_csv().strip().splitlines()
        assert lines[0] == "severity,type,axis,entity_kind,entity_ids,message"
        assert len(lines) == 1 + len(report.findings)

    def test_rows_ordered_by_severity(self, report):
        import csv
        import io

        from repro.core.taxonomy import Severity

        rows = list(csv.DictReader(io.StringIO(report.to_csv())))
        ranks = [Severity(row["severity"]).rank for row in rows]
        assert ranks == sorted(ranks, reverse=True)

    def test_group_entities_joined(self, report):
        assert "R02;R04" in report.to_csv()


class TestExtensionCounts:
    def test_zero_without_extension_detectors(self, report):
        assert report.extension_counts() == {"shadowed_roles": 0}

    def test_counts_shadowed_findings(self):
        from repro.core import AnalysisConfig, analyze
        from repro.core.state import RbacState

        state = RbacState.build(
            users=["a", "b"],
            roles=["big", "small"],
            permissions=["p", "q"],
            user_assignments=[("big", "a"), ("big", "b"), ("small", "a")],
            permission_assignments=[
                ("big", "p"), ("big", "q"), ("small", "p"),
            ],
        )
        extended = analyze(state, AnalysisConfig.with_extensions())
        assert extended.extension_counts() == {"shadowed_roles": 1}
        # the paper's table keys stay untouched
        assert "shadowed_roles" not in extended.counts()


class TestConfigRendering:
    def test_to_dict_carries_effective_config(self, report):
        payload = json.loads(report.to_json())
        config = payload["config"]
        assert config["finder"] == "cooccurrence"
        assert config["similarity_threshold"] == 1
        assert config["axes"] == ["users", "permissions"]
        assert config["n_workers"] == 1
        assert len(config["enabled_types"]) == 5

    def test_to_text_has_configuration_line(self, report):
        text = report.to_text()
        assert "configuration: finder=cooccurrence" in text
        assert "axes=users,permissions" in text

    def test_to_markdown_has_configuration_table(self, report):
        markdown = report.to_markdown()
        assert "## Configuration" in markdown
        assert "| finder | cooccurrence |" in markdown
        assert "| axes | users, permissions |" in markdown

    def test_config_dict_none_without_config(self, paper_example):
        from repro.core.report import Report

        bare = Report(state=paper_example, findings=[])
        assert bare.config_dict() is None
        assert json.loads(bare.to_json())["config"] is None
        assert "## Configuration" not in bare.to_markdown()
        assert "configuration:" not in bare.to_text()


class TestMetricsRendering:
    def test_to_dict_carries_metrics(self, report):
        payload = json.loads(report.to_json())
        metrics = payload["metrics"]
        assert metrics["schema"] == 2
        assert metrics["spans"] > 0
        assert metrics["counters"]["findings"] == payload["n_findings"]
        assert metrics["workers"]["mode"] == "serial"

    def test_to_text_has_metrics_block(self, report):
        text = report.to_text()
        assert "serial mode):" in text
        assert "matrix.ruam_nnz" in text

    def test_to_markdown_has_metrics_table(self, report):
        markdown = report.to_markdown()
        assert "## Metrics" in markdown
        assert "| matrix.ruam_nnz | 6 |" in markdown

    def test_renderers_omit_metrics_when_absent(self, paper_example):
        from repro.core.report import Report

        bare = Report(state=paper_example, findings=[])
        assert "metrics (" not in bare.to_text()
        assert "## Metrics" not in bare.to_markdown()
