"""Unit tests for the shared per-axis analysis workspace.

Covers the artifact cache (hit/miss/bytes counters), the scan request
aggregation (one blocked co-occurrence pass serves every consumer), the
collapsed view's derived pairs, and the pickling behaviour that ships
warm artifacts to parallel workers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bitmatrix import equal_row_groups_sparse
from repro.core.detectors.base import AnalysisContext
from repro.core.grouping.cooccurrence import blocked_scan
from repro.core.taxonomy import Axis
from repro.core.workspace import AnalysisWorkspace, AxisWorkspace
from repro.obs import Recorder, use_recorder


@pytest.fixture
def users_workspace(paper_example) -> AxisWorkspace:
    context = AnalysisContext(paper_example)
    return context.workspace.axis(Axis.USERS)


def _pairs_as_set(rows, cols):
    return {tuple(sorted(p)) for p in zip(rows.tolist(), cols.tolist())}


class TestArtifactCache:
    def test_artifacts_are_memoised(self, users_workspace):
        assert users_workspace.dense is users_workspace.dense
        assert users_workspace.bits is users_workspace.bits
        assert users_workspace.norms is users_workspace.norms
        assert users_workspace.row_keys is users_workspace.row_keys

    def test_hit_miss_counters(self, users_workspace):
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("test"):
            users_workspace.dense  # miss: original, submatrix, dense
            users_workspace.dense  # hit
            users_workspace.dense  # hit
        totals = recorder.counter_totals()
        assert totals["workspace.artifact_misses"] == 3
        assert totals["workspace.artifact_hits"] == 2
        assert totals["workspace.artifact_bytes"] > 0

    def test_submatrix_drops_empty_rows(self, users_workspace):
        # R03 has no users in the paper example.
        assert users_workspace.n_rows == 4
        assert users_workspace.original.tolist() == [0, 1, 3, 4]
        assert users_workspace.norms.tolist() == [1, 2, 2, 1]

    def test_dense_and_bits_match_submatrix(self, users_workspace):
        dense = users_workspace.dense
        expected = np.asarray(users_workspace.submatrix.todense()).astype(
            bool
        )
        assert np.array_equal(dense, expected)
        assert users_workspace.bits.shape == dense.shape

    def test_duplicate_groups_match_reference_kernel(self, users_workspace):
        expected = equal_row_groups_sparse(users_workspace.submatrix)
        assert users_workspace.duplicate_groups == expected

    def test_duplicate_groups_returns_fresh_lists(self, users_workspace):
        first = users_workspace.duplicate_groups
        first[0].append(999)
        assert 999 not in users_workspace.duplicate_groups[0]

    def test_row_classes_first_seen_order(self, users_workspace):
        # Submatrix rows: R01, R02, R04, R05 — R02/R04 share users.
        assert users_workspace.representatives.tolist() == [0, 1, 3]
        assert users_workspace.class_sizes.tolist() == [1, 2, 1]
        assert users_workspace.class_index.tolist() == [0, 1, 1, 2]

    def test_signatures_memoised_per_key(self, users_workspace):
        a = users_workspace.signatures(8, seed=0)
        assert users_workspace.signatures(8, seed=0) is a
        assert users_workspace.signatures(8, seed=1) is not a
        assert users_workspace.signatures(16, seed=0).shape == (4, 16)


class TestScanAggregation:
    def test_requests_accumulate_to_one_pass(self, users_workspace):
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("test"):
            users_workspace.request_scan(k=0)
            users_workspace.request_scan(k=2, subsets=True)
            users_workspace.request_scan(k=1)
            scan = users_workspace.scan()
        assert scan.k == 2
        assert scan.sub_rows is not None
        totals = recorder.counter_totals()
        assert totals["workspace.cooccurrence_passes"] == 1

    def test_pairs_filter_down_from_wider_scan(self, users_workspace):
        users_workspace.request_scan(k=2)
        wide = _pairs_as_set(*users_workspace.matched_pairs(0))
        fresh = blocked_scan(
            users_workspace.submatrix, users_workspace.norms, k=0
        )
        assert wide == _pairs_as_set(*fresh.pairs_at(0))

    def test_late_wider_request_reruns_and_keeps_union(self, users_workspace):
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("test"):
            users_workspace.request_scan(k=0, subsets=True)
            users_workspace.scan()
            assert not users_workspace.scan_pending
            users_workspace.request_scan(k=2)
            assert users_workspace.scan_pending
            rerun = users_workspace.scan()
        # The rebuild keeps subset collection from the first pass.
        assert rerun.k == 2
        assert rerun.sub_rows is not None
        totals = recorder.counter_totals()
        assert totals["workspace.cooccurrence_passes"] == 2

    def test_scan_hit_after_flush(self, users_workspace):
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("test"):
            users_workspace.request_scan(k=1)
            users_workspace.scan()
            users_workspace.scan()
            users_workspace.matched_pairs(0)
        assert recorder.counter_totals()["workspace.cooccurrence_passes"] == 1

    def test_configure_pins_scan_shape(self, users_workspace):
        users_workspace.configure(block_rows=2, n_workers=1)
        users_workspace.request_scan(k=0, block_rows=999)
        assert users_workspace._block_rows == 2
        scan = users_workspace.scan()
        assert scan.n_blocks == 2  # 4 rows / block_rows=2

    def test_unpinned_hints_apply(self, paper_example):
        workspace = AnalysisContext(paper_example).workspace.axis("users")
        workspace.request_scan(k=0, block_rows=1)
        assert workspace.scan().n_blocks == 4

    def test_subset_pairs_match_naive_product(self, users_workspace):
        matrix = users_workspace.matrix
        product = (matrix.csr @ matrix.csr.T).toarray()
        norms = matrix.row_sums
        expected = {
            (r, s)
            for r in range(matrix.n_rows)
            for s in range(matrix.n_rows)
            if r != s and norms[r] > 0 and product[r, s] == norms[r]
        }
        rows, cols = users_workspace.subset_pairs
        assert set(zip(rows.tolist(), cols.tolist())) == expected

    def test_subset_pairs_sorted_lexicographically(self, users_workspace):
        rows, cols = users_workspace.subset_pairs
        pairs = list(zip(rows.tolist(), cols.tolist()))
        assert pairs == sorted(pairs)


class TestCollapsedWorkspace:
    def test_view_is_memoised(self, users_workspace):
        assert users_workspace.collapsed() is users_workspace.collapsed()

    def test_rows_are_representatives(self, users_workspace):
        view = users_workspace.collapsed()
        assert view.n_rows == 3
        assert view.original.tolist() == [0, 1, 4]  # R01, R02, R05
        assert view.norms.tolist() == [1, 2, 1]
        assert np.array_equal(
            view.dense, users_workspace.dense[[0, 1, 3]]
        )
        assert view.duplicate_groups == []

    def test_derived_pairs_match_direct_scan(self, paper_example):
        view_ws = AnalysisContext(paper_example).workspace.axis("permissions")
        view = view_ws.collapsed()
        derived = _pairs_as_set(*view.matched_pairs(2))
        direct = blocked_scan(view.csr, view.norms, k=2)
        assert derived == _pairs_as_set(*direct.pairs_at(2))

    def test_derived_pairs_need_no_extra_pass(self, users_workspace):
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("test"):
            users_workspace.matched_pairs(1)
            users_workspace.collapsed().matched_pairs(1)
        assert recorder.counter_totals()["workspace.cooccurrence_passes"] == 1

    def test_signatures_are_parent_slices(self, users_workspace):
        parent = users_workspace.signatures(8, seed=3)
        view = users_workspace.collapsed()
        assert np.array_equal(view.signatures(8, seed=3), parent[[0, 1, 3]])


class TestAnalysisWorkspace:
    def test_axis_accepts_enum_and_string(self, paper_example):
        bundle = AnalysisContext(paper_example).workspace
        assert bundle.axis(Axis.USERS) is bundle.axis("users")
        assert bundle.axis(Axis.PERMISSIONS) is not bundle.axis("users")

    def test_configure_applies_to_existing_and_future_axes(
        self, paper_example
    ):
        bundle = AnalysisContext(paper_example).workspace
        users = bundle.axis("users")
        bundle.configure(block_rows=2, n_workers=1)
        assert users._block_rows == 2
        assert bundle.axis("permissions")._block_rows == 2

    def test_flush_runs_pending_scans_under_axis_spans(self, paper_example):
        bundle = AnalysisContext(paper_example).workspace
        bundle.axis("users").request_scan(k=0)
        bundle.axis("permissions").request_scan(k=1)
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("warm") as span:
            assert bundle.scan_pending
            bundle.flush()
            assert not bundle.scan_pending
            bundle.flush()  # idempotent: nothing pending, no new spans
        assert [c.name for c in span.children] == [
            "axis:users",
            "axis:permissions",
        ]
        assert recorder.counter_totals()["workspace.cooccurrence_passes"] == 2

    def test_context_workspace_is_cached(self, paper_example):
        context = AnalysisContext(paper_example)
        assert context.workspace is context.workspace


class TestWorkspacePickling:
    # Workers inherit the warm context by fork on POSIX; spawn-based
    # pools would pickle it instead, so the workspace (matrix, artifact
    # dict, scan result) must survive a pickle round-trip with its
    # artifacts hot either way.

    def test_warm_workspace_ships_artifacts(self, paper_example):
        from repro.core.matrices import AssignmentMatrix

        workspace = AxisWorkspace(AssignmentMatrix.ruam(paper_example))
        workspace.request_scan(k=2, subsets=True)
        warm_scan = workspace.scan()
        workspace.dense

        shipped = pickle.loads(pickle.dumps(workspace))
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("test"):
            scan = shipped.scan()
            shipped.dense
        # Every access above lands on shipped artifacts: no misses,
        # no second co-occurrence pass.
        totals = recorder.counter_totals()
        assert "workspace.artifact_misses" not in totals
        assert "workspace.cooccurrence_passes" not in totals
        assert _pairs_as_set(*scan.pairs_at(2)) == _pairs_as_set(
            *warm_scan.pairs_at(2)
        )

    def test_cold_workspace_pickles_too(self, paper_example):
        from repro.core.matrices import AssignmentMatrix

        cold = AxisWorkspace(AssignmentMatrix.rpam(paper_example))
        clone = pickle.loads(pickle.dumps(cold))
        assert clone.matched_pairs(0)[0].size >= 1
