"""Unit tests for :meth:`RbacState.fingerprint`.

The fingerprint is the analysis service's report-cache key, so the
contract is exactly two-sided: every content mutation must change it,
and insertion order must never change it.
"""

from __future__ import annotations

import pytest

from repro.core.entities import Role, User
from repro.core.state import RbacState


def _hex256(value: str) -> None:
    assert isinstance(value, str)
    assert len(value) == 64
    int(value, 16)  # raises if not hex


class TestShape:
    def test_empty_state_has_stable_hex_digest(self):
        a, b = RbacState(), RbacState()
        _hex256(a.fingerprint())
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_is_deterministic_across_calls(self, paper_example):
        assert paper_example.fingerprint() == paper_example.fingerprint()

    def test_copy_preserves_fingerprint(self, paper_example):
        assert paper_example.copy().fingerprint() == paper_example.fingerprint()


class TestOrderInsensitivity:
    def test_rebuild_in_reverse_order_same_fingerprint(self, paper_example):
        rebuilt = RbacState.build(
            users=reversed(paper_example.user_ids()),
            roles=reversed(paper_example.role_ids()),
            permissions=reversed(paper_example.permission_ids()),
            user_assignments=reversed(
                [
                    (role_id, user_id)
                    for role_id in paper_example.role_ids()
                    for user_id in sorted(paper_example.users_of_role(role_id))
                ]
            ),
            permission_assignments=reversed(
                [
                    (role_id, permission_id)
                    for role_id in paper_example.role_ids()
                    for permission_id in sorted(
                        paper_example.permissions_of_role(role_id)
                    )
                ]
            ),
        )
        assert rebuilt.fingerprint() == paper_example.fingerprint()

    def test_interleaved_construction_same_fingerprint(self):
        a = RbacState.build(
            users=["u1", "u2"],
            roles=["r1"],
            permissions=["p1"],
            user_assignments=[("r1", "u1"), ("r1", "u2")],
            permission_assignments=[("r1", "p1")],
        )
        b = RbacState()
        b.add_user("u2")
        b.add_role("r1")
        b.add_permission("p1")
        b.assign_permission("r1", "p1")
        b.add_user("u1")
        b.assign_user("r1", "u2")
        b.assign_user("r1", "u1")
        assert a.fingerprint() == b.fingerprint()

    def test_remove_then_re_add_restores_fingerprint(self, paper_example):
        before = paper_example.fingerprint()
        members = sorted(paper_example.users_of_role("R02"))
        grants = sorted(paper_example.permissions_of_role("R02"))
        paper_example.remove_role("R02")
        assert paper_example.fingerprint() != before
        paper_example.add_role("R02")
        for user_id in members:
            paper_example.assign_user("R02", user_id)
        for permission_id in grants:
            paper_example.assign_permission("R02", permission_id)
        assert paper_example.fingerprint() == before


class TestMutationSensitivity:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.add_user("new-user"),
            lambda s: s.add_role("new-role"),
            lambda s: s.add_permission("new-permission"),
            lambda s: s.remove_user("U01"),
            lambda s: s.remove_role("R03"),
            lambda s: s.remove_permission("P01"),
            lambda s: s.assign_user("R03", "U01"),
            lambda s: s.revoke_user("R02", "U02"),
            lambda s: s.assign_permission("R02", "P01"),
            lambda s: s.revoke_permission("R04", "P05"),
        ],
        ids=[
            "add_user",
            "add_role",
            "add_permission",
            "remove_user",
            "remove_role",
            "remove_permission",
            "assign_user",
            "revoke_user",
            "assign_permission",
            "revoke_permission",
        ],
    )
    def test_every_mutation_kind_changes_fingerprint(
        self, paper_example, mutate
    ):
        before = paper_example.fingerprint()
        mutate(paper_example)
        assert paper_example.fingerprint() != before

    def test_idempotent_assign_keeps_fingerprint(self, paper_example):
        before = paper_example.fingerprint()
        paper_example.assign_user("R02", "U02")  # already assigned
        assert paper_example.fingerprint() == before

    def test_entity_metadata_is_part_of_the_content(self):
        plain = RbacState.build(users=["u1"])
        named = RbacState()
        named.add_user(User("u1", name="Alice"))
        attributed = RbacState()
        attributed.add_user(User("u1", attributes={"dept": "fraud"}))
        prints = {
            plain.fingerprint(),
            named.fingerprint(),
            attributed.fingerprint(),
        }
        assert len(prints) == 3

    def test_same_id_different_kind_edges_distinguished(self):
        # A user edge and a permission edge to an identically-named
        # target must not collide.
        a = RbacState()
        a.add_role(Role("r"))
        a.add_user("x")
        a.add_permission("x")
        a.assign_user("r", "x")
        b = RbacState()
        b.add_role(Role("r"))
        b.add_user("x")
        b.add_permission("x")
        b.assign_permission("r", "x")
        assert a.fingerprint() != b.fingerprint()
