"""Unit tests for the RBAC state container."""

from __future__ import annotations

import pytest

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import DuplicateEntityError, UnknownEntityError


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2"],
        roles=["r1", "r2"],
        permissions=["p1", "p2", "p3"],
        user_assignments=[("r1", "u1"), ("r1", "u2"), ("r2", "u1")],
        permission_assignments=[("r1", "p1"), ("r2", "p2"), ("r2", "p3")],
    )


class TestEntityManagement:
    def test_counts(self, state):
        assert state.n_users == 2
        assert state.n_roles == 2
        assert state.n_permissions == 3
        assert state.n_user_assignments == 3
        assert state.n_permission_assignments == 3

    def test_string_promotion(self):
        s = RbacState()
        user = s.add_user("u9")
        assert isinstance(user, User)
        assert s.has_user("u9")

    def test_entity_objects_preserved(self):
        s = RbacState()
        s.add_role(Role("r9", name="Auditor", attributes={"team": "sec"}))
        role = s.get_role("r9")
        assert role.name == "Auditor"
        assert role.attributes["team"] == "sec"

    def test_duplicate_rejected(self, state):
        with pytest.raises(DuplicateEntityError):
            state.add_user("u1")
        with pytest.raises(DuplicateEntityError):
            state.add_role("r1")
        with pytest.raises(DuplicateEntityError):
            state.add_permission("p1")

    def test_unknown_lookup_raises(self, state):
        with pytest.raises(UnknownEntityError):
            state.get_user("nope")
        with pytest.raises(UnknownEntityError):
            state.users_of_role("nope")

    def test_id_ordering_is_insertion_order(self, state):
        assert state.user_ids() == ["u1", "u2"]
        assert state.role_ids() == ["r1", "r2"]
        assert state.permission_ids() == ["p1", "p2", "p3"]


class TestAssignments:
    def test_assign_and_query(self, state):
        assert state.users_of_role("r1") == {"u1", "u2"}
        assert state.roles_of_user("u1") == {"r1", "r2"}
        assert state.permissions_of_role("r2") == {"p2", "p3"}
        assert state.roles_of_permission("p1") == {"r1"}

    def test_assign_is_idempotent(self, state):
        state.assign_user("r1", "u1")
        assert state.n_user_assignments == 3

    def test_assign_unknown_role_raises(self, state):
        with pytest.raises(UnknownEntityError):
            state.assign_user("nope", "u1")

    def test_assign_unknown_user_raises(self, state):
        with pytest.raises(UnknownEntityError):
            state.assign_user("r1", "nope")

    def test_revoke(self, state):
        state.revoke_user("r1", "u2")
        assert state.users_of_role("r1") == {"u1"}
        assert "r1" not in state.roles_of_user("u2")

    def test_revoke_missing_edge_is_noop(self, state):
        state.revoke_permission("r1", "p2")
        assert state.n_permission_assignments == 3

    def test_queries_return_frozen_copies(self, state):
        users = state.users_of_role("r1")
        assert isinstance(users, frozenset)


class TestRemoval:
    def test_remove_user_cleans_edges(self, state):
        state.remove_user("u1")
        assert not state.has_user("u1")
        assert state.users_of_role("r1") == {"u2"}
        assert state.users_of_role("r2") == frozenset()

    def test_remove_role_cleans_both_sides(self, state):
        state.remove_role("r2")
        assert not state.has_role("r2")
        assert state.roles_of_user("u1") == {"r1"}
        assert state.roles_of_permission("p2") == frozenset()

    def test_remove_permission_cleans_edges(self, state):
        state.remove_permission("p1")
        assert state.permissions_of_role("r1") == frozenset()

    def test_remove_unknown_raises(self, state):
        with pytest.raises(UnknownEntityError):
            state.remove_role("nope")


class TestEffectivePermissions:
    def test_union_over_roles(self, state):
        assert state.effective_permissions("u1") == {"p1", "p2", "p3"}
        assert state.effective_permissions("u2") == {"p1"}

    def test_user_with_no_roles(self):
        s = RbacState()
        s.add_user("lonely")
        assert s.effective_permissions("lonely") == frozenset()

    def test_effective_map_covers_all_users(self, state):
        mapping = state.effective_permission_map()
        assert set(mapping) == {"u1", "u2"}


class TestCopyAndEquality:
    def test_copy_is_independent(self, state):
        clone = state.copy()
        clone.revoke_user("r1", "u1")
        assert state.users_of_role("r1") == {"u1", "u2"}
        assert clone.users_of_role("r1") == {"u2"}

    def test_equality_by_content(self, state):
        assert state == state.copy()

    def test_inequality_after_change(self, state):
        clone = state.copy()
        clone.assign_permission("r1", "p2")
        assert state != clone

    def test_repr_mentions_sizes(self, state):
        text = repr(state)
        assert "users=2" in text and "roles=2" in text


class TestNetworkxExport:
    def test_tripartite_structure(self, state):
        graph = state.to_networkx()
        assert graph.number_of_nodes() == 2 + 2 + 3
        assert graph.number_of_edges() == 3 + 3
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"user", "role", "permission"}

    def test_edges_only_touch_roles(self, state):
        graph = state.to_networkx()
        for a, b in graph.edges():
            assert a.startswith("role:") or b.startswith("role:")

    def test_id_namespaces_disjoint(self):
        s = RbacState.build(
            users=["x"], roles=["x"], permissions=["x"],
            user_assignments=[("x", "x")],
        )
        graph = s.to_networkx()
        assert graph.number_of_nodes() == 3


class TestEffectiveUsers:
    def test_union_over_roles(self, state):
        assert state.effective_users("p1") == {"u1", "u2"}
        assert state.effective_users("p2") == {"u1"}

    def test_unlinked_permission_has_no_users(self):
        s = RbacState.build(permissions=["orphan"])
        assert s.effective_users("orphan") == frozenset()

    def test_unknown_permission_raises(self, state):
        with pytest.raises(UnknownEntityError):
            state.effective_users("nope")

    def test_converse_of_effective_permissions(self, state):
        for permission_id in state.permission_ids():
            holders = state.effective_users(permission_id)
            for user_id in state.user_ids():
                expected = permission_id in state.effective_permissions(
                    user_id
                )
                assert (user_id in holders) == expected
