"""Unit tests for entity value types."""

from __future__ import annotations

import pytest

from repro.core.entities import EntityKind, Permission, Role, User


class TestConstruction:
    def test_minimal_user(self):
        user = User("u1")
        assert user.id == "u1"
        assert user.name == ""
        assert dict(user.attributes) == {}
        assert user.kind is EntityKind.USER

    def test_role_and_permission_kinds(self):
        assert Role("r1").kind is EntityKind.ROLE
        assert Permission("p1").kind is EntityKind.PERMISSION

    def test_empty_id_rejected(self):
        for cls in (User, Role, Permission):
            with pytest.raises(ValueError):
                cls("")

    def test_non_string_id_rejected(self):
        with pytest.raises(TypeError):
            User(42)  # type: ignore[arg-type]

    def test_attributes_copied_and_frozen(self):
        source = {"department": "fraud"}
        user = User("u1", attributes=source)
        source["department"] = "changed"
        assert user.attributes["department"] == "fraud"
        with pytest.raises(TypeError):
            user.attributes["department"] = "nope"  # type: ignore[index]

    def test_entities_are_immutable(self):
        role = Role("r1")
        with pytest.raises(AttributeError):
            role.id = "r2"  # type: ignore[misc]


class TestEquality:
    def test_equal_by_value(self):
        assert User("u1", name="Alice") == User("u1", name="Alice")

    def test_distinct_ids_differ(self):
        assert User("u1") != User("u2")

    def test_kinds_never_compare_equal(self):
        assert User("x") != Role("x")
        assert Role("x") != Permission("x")
