"""Parity suite for the shared workspace refactor.

The workspace is a pure memoisation layer: serial runs, parallel runs,
and detection on a completely cold workspace (no engine warm phase) must
produce identical findings, counts, and report serialisations.  The
counter tests pin the efficiency claim behind the refactor — the blocked
co-occurrence product runs **at most once per axis per analyze()**.
"""

from __future__ import annotations

import pytest

from repro.core.detectors.base import AnalysisContext
from repro.core.engine import AnalysisConfig, AnalysisEngine, analyze
from repro.obs import Recorder


def _config(**kwargs) -> AnalysisConfig:
    """All five paper types plus the shadowed extension."""
    return AnalysisConfig.with_extensions(**kwargs)


def _stable(report) -> dict:
    """The deterministic slice of a report serialisation.

    Timings, total duration, and the worker breakdown legitimately vary
    run to run; everything else must be byte-identical.
    """
    payload = report.to_dict()
    payload.pop("timings_seconds")
    payload.pop("total_seconds")
    payload.pop("metrics")
    payload["config"].pop("n_workers")
    return payload


def _cold_findings(engine: AnalysisEngine, state) -> list[dict]:
    """Detect on a fresh context without the engine's warm phase.

    This is the path a detector sees when called directly (or when a
    worker somehow received a cold context): every workspace artifact is
    built on demand.  Findings must match the warmed engine exactly.
    """
    context = AnalysisContext(state)
    found: list = []
    for detector in engine.detectors:
        found.extend(detector.detect(context))
    return [f.to_dict() for f in found]


class TestFindingsParity:
    @pytest.mark.parametrize("finder", ["cooccurrence", "dbscan", "lsh"])
    def test_serial_parallel_cold_identical(self, small_org_state, finder):
        serial = analyze(small_org_state, _config(finder=finder))
        parallel = analyze(
            small_org_state, _config(finder=finder, n_workers=2)
        )
        assert _stable(parallel) == _stable(serial)

        engine = AnalysisEngine(_config(finder=finder))
        assert _cold_findings(engine, small_org_state) == [
            f.to_dict() for f in serial.findings
        ]

    # (The hash finder cannot drive the full engine: it rejects the
    # similar detector's threshold >= 1 by design.)
    @pytest.mark.parametrize("finder", ["cooccurrence", "hnsw"])
    def test_paper_example_all_finders(self, paper_example, finder):
        serial = analyze(paper_example, _config(finder=finder))
        parallel = analyze(paper_example, _config(finder=finder, n_workers=2))
        assert _stable(parallel) == _stable(serial)
        engine = AnalysisEngine(_config(finder=finder))
        assert _cold_findings(engine, paper_example) == [
            f.to_dict() for f in serial.findings
        ]

    def test_blocked_scan_shape_does_not_change_output(self, small_org_state):
        baseline = analyze(small_org_state, _config())
        blocked = analyze(small_org_state, _config(block_rows=32))
        stable = _stable(baseline)
        stable["config"]["block_rows"] = 32
        assert _stable(blocked) == stable

    def test_higher_threshold_parity(self, small_org_state):
        serial = analyze(small_org_state, _config(similarity_threshold=2))
        parallel = analyze(
            small_org_state, _config(similarity_threshold=2, n_workers=3)
        )
        assert _stable(parallel) == _stable(serial)


class TestSharedPassCounters:
    def _totals(self, state, **kwargs):
        recorder = Recorder()
        analyze(state, _config(**kwargs), recorder=recorder)
        return recorder.counter_totals()

    def test_exactly_one_pass_per_axis(self, small_org_state):
        # Duplicates (k=0), similar (k=threshold), and shadowed (subset
        # pairs) all consume the scan; it still runs once per axis.
        totals = self._totals(small_org_state)
        assert totals["workspace.cooccurrence_passes"] == 2

    def test_one_pass_per_axis_at_higher_threshold(self, paper_example):
        totals = self._totals(paper_example, similarity_threshold=3)
        assert totals["workspace.cooccurrence_passes"] == 2

    def test_serial_and_parallel_pass_counts_match(self, paper_example):
        serial = self._totals(paper_example)
        parallel = self._totals(paper_example, n_workers=2)
        assert serial["workspace.cooccurrence_passes"] == 2
        assert parallel == serial

    def test_detect_time_scan_reads_are_hits(self, paper_example):
        # After the warm flush, duplicates/similar/shadowed all read the
        # scan without a rebuild: hits strictly exceed the pass count.
        totals = self._totals(paper_example)
        assert totals["workspace.artifact_hits"] > 2

    def test_non_cooccurrence_finder_still_shares_shadowed_scan(
        self, paper_example
    ):
        # With DBSCAN grouping only the shadowed detector needs the
        # product — one subset-collecting pass per axis, not more.
        totals = self._totals(paper_example, finder="dbscan")
        assert totals["workspace.cooccurrence_passes"] == 2
