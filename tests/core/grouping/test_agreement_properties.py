"""Property-based cross-method agreement.

The paper's central correctness claim: the custom co-occurrence algorithm
"consistently identifies all clusters" — i.e. it is *exact*, matching the
DBSCAN baseline on every input.  These properties hammer that claim on
random boolean matrices, including degenerate shapes (empty rows, all-one
rows, duplicate-heavy data).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.grouping import (
    CooccurrenceGroupFinder,
    DbscanGroupFinder,
    HashGroupFinder,
    LshGroupFinder,
)


def bool_matrices(max_rows: int = 16, max_cols: int = 12):
    return hnp.arrays(
        dtype=bool,
        shape=st.tuples(
            st.integers(min_value=1, max_value=max_rows),
            st.integers(min_value=1, max_value=max_cols),
        ),
    )


def duplicate_heavy_matrices():
    """Matrices built by sampling rows from a small vocabulary, which
    guarantees plenty of duplicates and near-duplicates."""
    return st.builds(
        lambda picks, vocab: np.array([vocab[i] for i in picks], dtype=bool),
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=20),
        st.just(
            [
                [0, 0, 0, 0, 0],
                [1, 0, 0, 0, 0],
                [1, 1, 0, 0, 0],
                [1, 1, 1, 1, 1],
            ]
        ),
    )


class TestCooccurrenceMatchesDbscan:
    @given(bool_matrices(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_random_matrices(self, dense, k):
        assert (
            CooccurrenceGroupFinder().find_groups(dense, k)
            == DbscanGroupFinder().find_groups(dense, k)
        )

    @given(duplicate_heavy_matrices(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_duplicate_heavy_matrices(self, dense, k):
        assert (
            CooccurrenceGroupFinder().find_groups(dense, k)
            == DbscanGroupFinder().find_groups(dense, k)
        )


class TestCooccurrenceMatchesHashAtZero:
    @given(bool_matrices())
    @settings(max_examples=100, deadline=None)
    def test_exact_duplicates(self, dense):
        assert (
            CooccurrenceGroupFinder().find_groups(dense, 0)
            == HashGroupFinder().find_groups(dense, 0)
        )


class TestLshExactAtZeroSoundAboveZero:
    @given(bool_matrices())
    @settings(max_examples=60, deadline=None)
    def test_lsh_complete_at_zero(self, dense):
        """Identical rows always collide, so k=0 LSH equals the exact
        methods on every input."""
        assert (
            LshGroupFinder().find_groups(dense, 0)
            == CooccurrenceGroupFinder().find_groups(dense, 0)
        )

    @given(bool_matrices(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_lsh_sound_above_zero(self, dense, k):
        """Every LSH group is a subset of the corresponding exact
        component (sound; possibly incomplete)."""
        exact = CooccurrenceGroupFinder().find_groups(dense, k)
        for group in LshGroupFinder().find_groups(dense, k):
            assert any(set(group) <= set(component) for component in exact)


class TestOutputInvariants:
    @given(bool_matrices(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_groups_well_formed(self, dense, k):
        groups = CooccurrenceGroupFinder().find_groups(dense, k)
        seen: set[int] = set()
        previous_first = -1
        for group in groups:
            assert len(group) >= 2
            assert group == sorted(group)
            assert group[0] > previous_first
            previous_first = group[0]
            assert not (seen & set(group))
            seen.update(group)
            assert all(0 <= member < dense.shape[0] for member in group)

    @given(bool_matrices())
    @settings(max_examples=60, deadline=None)
    def test_exact_groups_have_equal_rows(self, dense):
        for group in CooccurrenceGroupFinder().find_groups(dense, 0):
            for member in group[1:]:
                assert np.array_equal(dense[group[0]], dense[member])

    @given(bool_matrices(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_similarity_groups_are_connected(self, dense, k):
        """Every member has at least one other member within distance k
        (it joined the component through *some* edge)."""
        for group in CooccurrenceGroupFinder().find_groups(dense, k):
            for member in group:
                distances = [
                    int(np.count_nonzero(dense[member] != dense[other]))
                    for other in group
                    if other != member
                ]
                assert min(distances) <= k

    @given(bool_matrices(), st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotonicity(self, dense, k):
        small = CooccurrenceGroupFinder().find_groups(dense, k)
        large = CooccurrenceGroupFinder().find_groups(dense, k + 1)
        for group in small:
            assert any(set(group) <= set(bigger) for bigger in large)
