"""Kernel parity: sparse, bits and auto must be indistinguishable.

The dispatch contract of :mod:`repro.core.grouping.kernels`: both
concrete kernels emit the same co-occurrence entry set, so matched
pairs, subset pairs, groups, analysis reports — everything downstream —
are identical whichever kernel (or per-block mix) ran.  These tests pin
that property on random matrices across the density spectrum, on the
edge cases (empty rows, ``k=0``, subset-only scans), in serial and
parallel, and assert the ``auto`` cost model actually picks the bits
kernel on dense data via the per-kernel block counters.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.engine import AnalysisConfig, analyze
from repro.core.grouping import make_group_finder
from repro.core.grouping.cooccurrence import blocked_scan
from repro.core.grouping.kernels import plan_kernels, sparse_row_flops
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.exceptions import ConfigurationError
from repro.obs import Recorder, use_recorder

DENSITIES = [0.02, 0.15, 0.5, 0.9]


def _random_csr(seed: int, shape=(60, 90), density=0.3, empty_rows=()):
    rng = np.random.default_rng(seed)
    dense = rng.random(shape) < density
    for row in empty_rows:
        dense[row, :] = False
    return sp.csr_matrix(dense.astype(np.int64))


def _norms(csr):
    return np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)


def _pairs(scan):
    """Order-insensitive canonical form of a scan's outputs."""
    matched = sorted(
        zip(scan.rows.tolist(), scan.cols.tolist(), scan.hamming.tolist())
    )
    subsets = sorted(zip(scan.sub_rows.tolist(), scan.sub_cols.tolist()))
    return matched, subsets


class TestScanParity:
    @pytest.mark.parametrize("density", DENSITIES)
    @pytest.mark.parametrize("k", [0, 2])
    def test_kernels_agree_across_densities(self, density, k):
        csr = _random_csr(seed=int(density * 100) + k, density=density)
        norms = _norms(csr)
        scans = {
            kernel: blocked_scan(
                csr, norms, k=k, collect_subsets=True,
                block_rows=17, kernel=kernel,
            )
            for kernel in ("sparse", "bits", "auto")
        }
        reference = _pairs(scans["sparse"])
        assert _pairs(scans["bits"]) == reference
        assert _pairs(scans["auto"]) == reference

    def test_empty_rows(self):
        csr = _random_csr(seed=7, density=0.4, empty_rows=(0, 13, 59))
        norms = _norms(csr)
        sparse = blocked_scan(
            csr, norms, k=1, collect_subsets=True, block_rows=8,
            kernel="sparse",
        )
        bits = blocked_scan(
            csr, norms, k=1, collect_subsets=True, block_rows=8,
            kernel="bits",
        )
        assert _pairs(bits) == _pairs(sparse)

    def test_subset_only_scan(self):
        # k=None: no matched-pair collection, only the directed subset
        # pairs of the shadowed-role criterion.
        csr = _random_csr(seed=8, density=0.6)
        norms = _norms(csr)
        sparse = blocked_scan(
            csr, norms, k=None, collect_subsets=True, kernel="sparse"
        )
        bits = blocked_scan(
            csr, norms, k=None, collect_subsets=True, kernel="bits"
        )
        assert len(sparse.rows) == len(bits.rows) == 0
        assert _pairs(bits) == _pairs(sparse)

    def test_parallel_matches_serial_per_kernel(self):
        csr = _random_csr(seed=9, density=0.5)
        norms = _norms(csr)
        for kernel in ("sparse", "bits", "auto"):
            serial = blocked_scan(
                csr, norms, k=2, collect_subsets=True, block_rows=11,
                n_workers=1, kernel=kernel,
            )
            parallel = blocked_scan(
                csr, norms, k=2, collect_subsets=True, block_rows=11,
                n_workers=2, kernel=kernel,
            )
            assert _pairs(parallel) == _pairs(serial), kernel

    def test_empty_matrix(self):
        csr = sp.csr_matrix((0, 10), dtype=np.int64)
        scan = blocked_scan(csr, np.empty(0, np.int64), k=0, kernel="bits")
        assert len(scan.rows) == 0

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            blocked_scan(
                _random_csr(seed=1), np.zeros(60, np.int64), kernel="simd"
            )


class TestCostModel:
    def test_sparse_row_flops_counts_multiply_adds(self):
        csr = _random_csr(seed=20, shape=(10, 16), density=0.4)
        csr_t = csr.T.tocsr()
        dense = csr.toarray()
        col_nnz = (dense != 0).sum(axis=0)
        expected = [
            int(col_nnz[np.flatnonzero(dense[i])].sum())
            for i in range(dense.shape[0])
        ]
        assert sparse_row_flops(csr, csr_t).tolist() == expected

    def test_sparse_row_flops_empty_rows(self):
        csr = _random_csr(seed=21, shape=(8, 12), density=0.5, empty_rows=(3,))
        flops = sparse_row_flops(csr, csr.T.tocsr())
        assert flops[3] == 0

    def test_explicit_kernels_constant_plan(self):
        csr = _random_csr(seed=22)
        bounds = [(0, 30), (30, 60)]
        assert plan_kernels(csr, csr.T.tocsr(), bounds, "sparse") == [
            "sparse", "sparse",
        ]
        assert plan_kernels(csr, csr.T.tocsr(), bounds, "bits") == [
            "bits", "bits",
        ]

    def test_auto_prefers_sparse_when_nearly_empty(self):
        csr = _random_csr(seed=23, density=0.01)
        bounds = [(0, 60)]
        assert plan_kernels(csr, csr.T.tocsr(), bounds, "auto") == ["sparse"]

    def test_auto_picks_bits_on_dense_matrix(self):
        # Acceptance criterion: on a >= 50%-density matrix the cost model
        # must route every block to the bits kernel, observable through
        # the per-kernel block counters.
        csr = _random_csr(seed=24, density=0.5)
        norms = _norms(csr)
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("scan"):
            blocked_scan(csr, norms, k=1, block_rows=10, kernel="auto")
        totals = recorder.counter_totals()
        assert totals.get("cooccurrence.kernel_blocks.bits", 0) == 6
        assert "cooccurrence.kernel_blocks.sparse" not in totals

    def test_kernel_block_counters_cover_plan(self):
        csr = _random_csr(seed=25, density=0.1)
        norms = _norms(csr)
        recorder = Recorder()
        with use_recorder(recorder), recorder.span("scan"):
            blocked_scan(csr, norms, k=1, block_rows=13, kernel="sparse")
        totals = recorder.counter_totals()
        assert totals.get("cooccurrence.kernel_blocks.sparse", 0) == 5


class TestFinderParity:
    @pytest.mark.parametrize("density", [0.1, 0.5])
    def test_groups_identical_across_kernels(self, density):
        csr = _random_csr(seed=30, density=density)
        groups = [
            make_group_finder(
                "cooccurrence", block_rows=9, kernel=kernel
            ).find_groups(csr, 1)
            for kernel in ("sparse", "bits", "auto")
        ]
        assert groups[1] == groups[0]
        assert groups[2] == groups[0]

    def test_finder_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            make_group_finder("cooccurrence", kernel="gpu")


def _normalized_report(report):
    """Report serialisation minus execution-only fields.

    ``config.kernel`` selects *how* the analysis ran, never its result;
    timings and metrics are run-specific by nature.  Everything else —
    findings, counts, config — must be byte-identical across kernels.
    """
    payload = report.to_dict()
    payload["config"].pop("kernel", None)
    payload.pop("timings_seconds", None)
    payload.pop("total_seconds", None)
    payload.pop("metrics", None)
    return payload


class TestReportParity:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_reports_identical_across_kernels(self, n_workers):
        state = generate_departmental_org(DepartmentProfile(seed=3))
        reports = [
            analyze(
                state,
                AnalysisConfig(
                    kernel=kernel,
                    block_rows=5,
                    finder_options={"n_workers": n_workers},
                ),
            )
            for kernel in ("sparse", "bits", "auto")
        ]
        reference = _normalized_report(reports[0])
        assert _normalized_report(reports[1]) == reference
        assert _normalized_report(reports[2]) == reference

    def test_config_kernel_round_trips(self):
        config = AnalysisConfig(kernel="bits")
        assert config.to_dict()["kernel"] == "bits"

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(kernel="nope")
