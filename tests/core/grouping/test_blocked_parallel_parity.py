"""Cross-configuration parity on randomized ``datagen`` matrices.

The acceptance bar for the blocked/parallel pipeline: every finder
configuration — monolithic co-occurrence, blocked co-occurrence at
several ``block_rows`` (including 1 and > n_rows), DBSCAN, and hashing —
returns byte-identical group lists on generated workloads, and the
parallel analysis engine reproduces the serial report.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AnalysisConfig, analyze
from repro.core.grouping import make_group_finder
from repro.datagen import (
    DepartmentProfile,
    MatrixSpec,
    generate_departmental_org,
    generate_matrix,
)

#: (n_roles, n_cols, seed) for the randomized workloads.
WORKLOADS = [(40, 30, 0), (60, 45, 1), (80, 25, 2)]

#: block_rows values exercised: degenerate (1), small, uneven tail,
#: exactly n_rows, and larger than any workload's n_rows.
BLOCK_ROWS = [1, 7, 40, 500]


def _generated(n_roles: int, n_cols: int, seed: int, k: int):
    return generate_matrix(
        MatrixSpec(
            n_roles=n_roles,
            n_cols=n_cols,
            row_density=0.15,
            differences=k,
            seed=seed,
        )
    )


@pytest.mark.parametrize("n_roles,n_cols,seed", WORKLOADS)
@pytest.mark.parametrize("k", [0, 1, 2])
class TestFinderParity:
    def test_blocked_matches_monolithic_and_dbscan(
        self, n_roles, n_cols, seed, k
    ):
        generated = _generated(n_roles, n_cols, seed, k)
        monolithic = make_group_finder("cooccurrence").find_groups(
            generated.matrix, k
        )
        dbscan = make_group_finder("dbscan").find_groups(generated.matrix, k)
        assert monolithic == dbscan
        for block_rows in BLOCK_ROWS:
            blocked = make_group_finder(
                "cooccurrence", block_rows=block_rows
            ).find_groups(generated.matrix, k)
            assert blocked == monolithic, f"block_rows={block_rows}"

    def test_parallel_blocks_match(self, n_roles, n_cols, seed, k):
        generated = _generated(n_roles, n_cols, seed, k)
        monolithic = make_group_finder("cooccurrence").find_groups(
            generated.matrix, k
        )
        parallel = make_group_finder(
            "cooccurrence", block_rows=9, n_workers=4
        ).find_groups(generated.matrix, k)
        assert parallel == monolithic

    def test_ground_truth_recovered(self, n_roles, n_cols, seed, k):
        # datagen guarantees exact ground truth only at k = 0 (at k >= 1
        # accidental near-pairs between filler rows can merge planted
        # groups at these small column counts); for k >= 1 the
        # cross-method parity tests above are the oracle.
        if k != 0:
            pytest.skip("ground truth exact only for the k=0 workload")
        generated = _generated(n_roles, n_cols, seed, k)
        found = make_group_finder(
            "cooccurrence", block_rows=11
        ).find_groups(generated.matrix, k)
        assert found == generated.groups


@pytest.mark.parametrize("n_roles,n_cols,seed", WORKLOADS)
def test_hash_parity_at_k0(n_roles, n_cols, seed):
    """Hashing only supports exact duplicates; at k=0 all four finder
    configurations must agree."""
    generated = _generated(n_roles, n_cols, seed, 0)
    results = [
        make_group_finder(name, **options).find_groups(generated.matrix, 0)
        for name, options in [
            ("cooccurrence", {}),
            ("cooccurrence", {"block_rows": 1}),
            ("cooccurrence", {"block_rows": n_roles + 13}),
            ("dbscan", {}),
            ("hash", {}),
        ]
    ]
    assert all(result == results[0] for result in results)


class TestParallelEngineParity:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_parallel_counts_equal_serial(self, seed):
        state = generate_departmental_org(DepartmentProfile(seed=seed))
        serial = analyze(state, AnalysisConfig())
        parallel = analyze(state, AnalysisConfig(n_workers=4))
        assert parallel.counts() == serial.counts()
        assert [f.entity_ids for f in parallel.findings] == [
            f.entity_ids for f in serial.findings
        ]

    def test_parallel_blocked_end_to_end(self):
        state = generate_departmental_org(DepartmentProfile(seed=1))
        serial = analyze(state, AnalysisConfig())
        combined = analyze(
            state, AnalysisConfig(n_workers=4, block_rows=5)
        )
        assert combined.counts() == serial.counts()

    def test_timings_cover_every_detector(self):
        state = generate_departmental_org(DepartmentProfile(seed=2))
        serial = analyze(state, AnalysisConfig())
        parallel = analyze(state, AnalysisConfig(n_workers=2))
        assert set(parallel.timings) == set(serial.timings)
