"""Unit tests shared across the group finders."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.grouping import (
    GROUP_FINDERS,
    CooccurrenceGroupFinder,
    DbscanGroupFinder,
    HashGroupFinder,
    HnswGroupFinder,
    make_group_finder,
)
from repro.exceptions import ConfigurationError

EXACT_FINDERS = ["cooccurrence", "dbscan", "hash", "lsh"]  # lsh is complete at k=0
ALL_FINDERS = EXACT_FINDERS + ["hnsw"]
# LSH is deliberately excluded here: completeness at k >= 1 depends on
# the Jaccard similarity of the pair (its documented trade-off); its own
# soundness/recall tests live in tests/lsh/.
SIMILARITY_FINDERS = ["cooccurrence", "dbscan", "hnsw"]


class TestRegistry:
    def test_all_finders_registered(self):
        assert set(GROUP_FINDERS) == {
            "cooccurrence", "dbscan", "hnsw", "hash", "lsh",
        }

    def test_factory_builds_instances(self):
        assert isinstance(
            make_group_finder("cooccurrence"), CooccurrenceGroupFinder
        )
        assert isinstance(make_group_finder("dbscan"), DbscanGroupFinder)
        assert isinstance(make_group_finder("hnsw"), HnswGroupFinder)
        assert isinstance(make_group_finder("hash"), HashGroupFinder)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown group finder"):
            make_group_finder("kmeans")

    def test_kwargs_forwarded(self):
        finder = make_group_finder("hnsw", m=4, ef_search=16)
        assert finder._m == 4
        assert finder._ef_search == 16


@pytest.mark.parametrize("name", ALL_FINDERS)
class TestCommonBehaviour:
    def test_empty_matrix(self, name):
        finder = make_group_finder(name)
        assert finder.find_groups(np.zeros((0, 4), dtype=bool), 0) == []

    def test_negative_threshold_rejected(self, name):
        finder = make_group_finder(name)
        with pytest.raises(ConfigurationError):
            finder.find_groups(np.zeros((2, 2), dtype=bool), -1)

    def test_no_duplicates_no_groups(self, name):
        finder = make_group_finder(name)
        assert finder.find_groups(np.eye(5, dtype=bool), 0) == []

    def test_simple_duplicate_pair(self, name):
        data = np.array([[1, 0, 1], [0, 1, 0], [1, 0, 1]], dtype=bool)
        finder = make_group_finder(name)
        assert finder.find_groups(data, 0) == [[0, 2]]

    def test_accepts_sparse_input(self, name):
        data = sp.csr_matrix(
            np.array([[1, 0], [1, 0], [0, 1]], dtype=np.int64)
        )
        finder = make_group_finder(name)
        assert finder.find_groups(data, 0) == [[0, 1]]

    def test_accepts_assignment_matrix(self, name):
        from repro.core.matrices import AssignmentMatrix

        matrix = AssignmentMatrix(
            np.array([[1, 1], [1, 1], [1, 0]], dtype=bool),
            ["r1", "r2", "r3"],
            ["u1", "u2"],
        )
        finder = make_group_finder(name)
        assert finder.find_groups(matrix, 0) == [[0, 1]]


@pytest.mark.parametrize("name", EXACT_FINDERS)
class TestExactSemantics:
    def test_groups_are_equivalence_classes(self, name):
        data = np.array(
            [
                [1, 0, 0],
                [0, 1, 0],
                [1, 0, 0],
                [0, 1, 0],
                [1, 0, 0],
                [0, 0, 1],
            ],
            dtype=bool,
        )
        finder = make_group_finder(name)
        assert finder.find_groups(data, 0) == [[0, 2, 4], [1, 3]]

    def test_all_empty_rows_form_a_group(self, name):
        data = np.zeros((3, 4), dtype=bool)
        finder = make_group_finder(name)
        assert finder.find_groups(data, 0) == [[0, 1, 2]]


@pytest.mark.parametrize("name", SIMILARITY_FINDERS)
class TestSimilaritySemantics:
    def test_distance_one_pair(self, name):
        data = np.array(
            [
                [1, 1, 0, 0],
                [1, 1, 1, 0],
                [0, 0, 0, 1],
            ],
            dtype=bool,
        )
        finder = make_group_finder(name)
        assert finder.find_groups(data, 1) == [[0, 1]]

    def test_distance_two_not_grouped_at_one(self, name):
        data = np.array(
            [
                [1, 1, 0, 0, 0, 0],
                [1, 1, 1, 1, 0, 0],
            ],
            dtype=bool,
        )
        finder = make_group_finder(name)
        assert finder.find_groups(data, 1) == []

    def test_distance_two_grouped_at_two(self, name):
        data = np.array(
            [
                [1, 1, 0, 0, 0, 0],
                [1, 1, 1, 1, 0, 0],
            ],
            dtype=bool,
        )
        finder = make_group_finder(name)
        assert finder.find_groups(data, 2) == [[0, 1]]

    def test_chaining_components(self, name):
        # a~b and b~c at distance 1; a-c at distance 2: one component.
        data = np.array(
            [
                [1, 0, 0, 0],
                [1, 1, 0, 0],
                [1, 1, 1, 0],
            ],
            dtype=bool,
        )
        finder = make_group_finder(name)
        assert finder.find_groups(data, 1) == [[0, 1, 2]]


class TestCooccurrenceEdgeCases:
    """Pairs invisible to the sparse product (zero overlap)."""

    def test_two_empty_rows_at_k0(self):
        data = np.array([[0, 0], [0, 0], [1, 0]], dtype=bool)
        assert CooccurrenceGroupFinder().find_groups(data, 0) == [[0, 1]]

    def test_empty_and_singleton_at_k1(self):
        # distance({}, {a}) = 1 despite zero co-occurrence.
        data = np.array([[0, 0, 0], [1, 0, 0], [0, 0, 1]], dtype=bool)
        groups = CooccurrenceGroupFinder().find_groups(data, 1)
        assert groups == [[0, 1, 2]]  # chained through the empty row

    def test_disjoint_singletons_at_k2(self):
        # distance({a}, {b}) = 2 with zero overlap.
        data = np.array([[1, 0, 0, 0], [0, 1, 0, 0]], dtype=bool)
        assert CooccurrenceGroupFinder().find_groups(data, 2) == [[0, 1]]
        assert CooccurrenceGroupFinder().find_groups(data, 1) == []

    def test_matches_dbscan_on_tiny_norm_rows(self):
        rng = np.random.default_rng(20)
        data = rng.random((20, 6)) < 0.15  # many tiny/empty rows
        for k in (0, 1, 2, 3):
            assert (
                CooccurrenceGroupFinder().find_groups(data, k)
                == DbscanGroupFinder().find_groups(data, k)
            )


class TestBlockedCooccurrence:
    """The row-blocked kernel must reproduce the monolithic product."""

    def _random_matrix(self, seed: int = 7, shape=(23, 15), density=0.2):
        rng = np.random.default_rng(seed)
        data = rng.random(shape) < density
        data[4] = data[19]  # guarantee at least one duplicate pair
        return data

    @pytest.mark.parametrize("block_rows", [1, 2, 3, 8, 23, 1000])
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_blocked_equals_monolithic(self, block_rows, k):
        data = self._random_matrix()
        monolithic = CooccurrenceGroupFinder().find_groups(data, k)
        blocked = CooccurrenceGroupFinder(block_rows=block_rows).find_groups(
            data, k
        )
        assert blocked == monolithic

    @pytest.mark.parametrize("block_rows", [1, 5, 1000])
    def test_parallel_blocked_equals_monolithic(self, block_rows):
        data = self._random_matrix(seed=11)
        for k in (0, 1, 2):
            monolithic = CooccurrenceGroupFinder().find_groups(data, k)
            parallel = CooccurrenceGroupFinder(
                block_rows=block_rows, n_workers=2
            ).find_groups(data, k)
            assert parallel == monolithic

    def test_invalid_block_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="block_rows"):
            CooccurrenceGroupFinder(block_rows=0)

    def test_invalid_n_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            CooccurrenceGroupFinder(n_workers=0)

    def test_factory_forwards_options(self):
        finder = make_group_finder("cooccurrence", block_rows=4, n_workers=2)
        assert finder._block_rows == 4
        assert finder._n_workers == 2


class TestCsrDtypeEnforcement:
    """``_csr_of`` must hand the kernel int64 data on every input path.

    A narrow dtype is the regression trap: with bool/int8 data the
    co-occurrence product ``csr @ csr.T`` saturates (bool) or wraps
    (int8) once two roles share more than 127 users, corrupting both the
    duplicate indicator and the Hamming identity.
    """

    class _CsrWrapper:
        """Duck-typed AssignmentMatrix-like carrier of a raw CSR."""

        def __init__(self, csr):
            self.csr = csr
            self.row_ids = [f"r{i}" for i in range(csr.shape[0])]

    def test_bool_csr_attribute_is_widened(self):
        from repro.core.grouping.base import GroupFinder

        dense = np.ones((3, 200), dtype=bool)
        wrapper = self._CsrWrapper(sp.csr_matrix(dense))
        csr = GroupFinder._csr_of(wrapper)
        assert csr.dtype == np.int64

    @pytest.mark.parametrize("dtype", [bool, np.int8])
    def test_overlap_past_127_detected(self, dtype):
        # Two identical rows sharing 200 > 127 columns, one distinct row.
        dense = np.zeros((3, 220), dtype=bool)
        dense[0, :200] = True
        dense[1, :200] = True
        dense[2, 10:215] = True
        wrapper = self._CsrWrapper(sp.csr_matrix(dense.astype(dtype)))
        assert CooccurrenceGroupFinder().find_groups(wrapper, 0) == [[0, 1]]

    def test_narrow_sparse_input_widened_too(self):
        dense = np.ones((2, 300), dtype=bool)
        groups = CooccurrenceGroupFinder().find_groups(
            sp.csr_matrix(dense.astype(np.int8)), 0
        )
        assert groups == [[0, 1]]


class TestHashFinderRestrictions:
    def test_similarity_unsupported(self):
        with pytest.raises(ConfigurationError, match="max_differences=0"):
            HashGroupFinder().find_groups(np.zeros((2, 2), dtype=bool), 1)


class TestDbscanBackends:
    def test_bitpacked_backend_equals_default(self):
        rng = np.random.default_rng(21)
        data = rng.random((40, 25)) < 0.2
        data[7] = data[31]
        default = DbscanGroupFinder().find_groups(data, 0)
        packed = DbscanGroupFinder(backend="bitpacked-hamming").find_groups(
            data, 0
        )
        assert default == packed

    def test_unknown_backend_rejected(self):
        # ConfigurationError, like every other invalid-parameter error in
        # the stack (engine, DBSCAN, the finder registry).
        with pytest.raises(ConfigurationError, match="unsupported backend"):
            DbscanGroupFinder(backend="gpu")

    def test_unknown_backend_error_is_catchable_as_repro_error(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            DbscanGroupFinder(backend="gpu")
