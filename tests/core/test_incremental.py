"""Unit + property tests for the incremental auditor.

The contract under test: after ANY mutation sequence,
``auditor.counts() == analyze(auditor.state).counts()`` — the
incremental indexes never drift from the batch engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisConfig, Axis, analyze
from repro.core.incremental import IncrementalAuditor
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError


def batch_counts(auditor: IncrementalAuditor) -> dict[str, int]:
    config = AnalysisConfig(
        similarity_threshold=auditor.similarity_threshold
    )
    return analyze(auditor.state, config).counts()


class TestConstruction:
    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            IncrementalAuditor(similarity_threshold=0)

    def test_empty_auditor(self):
        auditor = IncrementalAuditor()
        assert auditor.counts() == batch_counts(auditor)

    def test_ingests_existing_state(self, paper_example):
        auditor = IncrementalAuditor(paper_example)
        assert auditor.counts() == batch_counts(auditor)

    def test_source_state_copied(self, paper_example):
        auditor = IncrementalAuditor(paper_example)
        auditor.remove_role("R01")
        assert paper_example.has_role("R01")


class TestMutations:
    @pytest.fixture
    def auditor(self, paper_example) -> IncrementalAuditor:
        return IncrementalAuditor(paper_example)

    def test_new_role_is_standalone(self, auditor):
        auditor.add_role("fresh")
        assert auditor.counts()["standalone_roles"] == 1
        assert auditor.counts() == batch_counts(auditor)

    def test_assignment_updates_duplicates(self, auditor):
        # make R01's user set equal to R05's ({U04} vs {U01}): move U01->U04
        auditor.revoke_user("R01", "U01")
        auditor.assign_user("R01", "U04")
        groups = auditor.duplicate_groups(Axis.USERS)
        assert ["R01", "R05"] in groups
        assert auditor.counts() == batch_counts(auditor)

    def test_revocation_breaks_duplicate_group(self, auditor):
        auditor.revoke_user("R02", "U02")
        assert auditor.duplicate_groups(Axis.USERS) == []
        assert auditor.counts() == batch_counts(auditor)

    def test_similarity_appears_and_disappears(self, auditor):
        # R02 {U02,U03} vs R04 {U02,U03}: duplicates.  Extend R04 by one
        # user: now similar-at-1 instead.
        auditor.assign_user("R04", "U01")
        assert auditor.duplicate_groups(Axis.USERS) == []
        assert ["R02", "R04"] in auditor.similar_groups(Axis.USERS)
        auditor.revoke_user("R04", "U01")
        assert auditor.similar_groups(Axis.USERS) == []
        assert auditor.counts() == batch_counts(auditor)

    def test_remove_user_updates_all_roles(self, auditor):
        auditor.remove_user("U02")
        # R02/R04 had {U02,U03}: both now {U03} — still duplicates, and
        # both became single-user roles.
        counts = auditor.counts()
        assert counts["roles_same_users"] == 2
        assert counts["single_user_roles"] == 4  # R01, R02, R04, R05
        assert counts == batch_counts(auditor)

    def test_remove_permission_updates_roles(self, auditor):
        auditor.remove_permission("P05")
        assert auditor.counts() == batch_counts(auditor)

    def test_remove_role_clears_indexes(self, auditor):
        auditor.remove_role("R04")
        counts = auditor.counts()
        assert counts["roles_same_users"] == 0
        assert counts["roles_same_permissions"] == 0
        assert counts == batch_counts(auditor)

    def test_zero_overlap_similarity_through_small_sets(self):
        auditor = IncrementalAuditor(similarity_threshold=2)
        auditor.add_user("a")
        auditor.add_user("b")
        for role in ("r1", "r2"):
            auditor.add_role(role)
        auditor.add_permission("p")
        auditor.assign_permission("r1", "p")
        auditor.assign_permission("r2", "p")
        auditor.assign_user("r1", "a")
        auditor.assign_user("r2", "b")
        # {a} vs {b}: distance 2 with zero overlap
        assert ["r1", "r2"] in auditor.similar_groups(Axis.USERS)
        assert auditor.counts() == batch_counts(auditor)


class TestPropertyAgreement:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["assign_u", "revoke_u", "assign_p", "revoke_p",
                     "add_role", "remove_role", "remove_user"]
                ),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_never_drift_from_batch(self, operations, threshold):
        base = RbacState.build(
            users=[f"u{i}" for i in range(6)],
            roles=[f"r{i}" for i in range(6)],
            permissions=[f"p{i}" for i in range(6)],
        )
        auditor = IncrementalAuditor(base, similarity_threshold=threshold)
        next_role = 6
        for op, a, b in operations:
            state = auditor.state
            roles = state.role_ids()
            users = state.user_ids()
            permissions = state.permission_ids()
            try:
                if op == "assign_u" and roles and users:
                    auditor.assign_user(
                        roles[a % len(roles)], users[b % len(users)]
                    )
                elif op == "revoke_u" and roles and users:
                    auditor.revoke_user(
                        roles[a % len(roles)], users[b % len(users)]
                    )
                elif op == "assign_p" and roles and permissions:
                    auditor.assign_permission(
                        roles[a % len(roles)],
                        permissions[b % len(permissions)],
                    )
                elif op == "revoke_p" and roles and permissions:
                    auditor.revoke_permission(
                        roles[a % len(roles)],
                        permissions[b % len(permissions)],
                    )
                elif op == "add_role":
                    auditor.add_role(f"r{next_role}")
                    next_role += 1
                elif op == "remove_role" and roles:
                    auditor.remove_role(roles[a % len(roles)])
                elif op == "remove_user" and users:
                    auditor.remove_user(users[a % len(users)])
            except KeyError:
                pass
        assert auditor.counts() == batch_counts(auditor)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_matches_batch_on_generated_orgs(self, seed):
        from repro.datagen import OrgProfile, generate_org

        org = generate_org(OrgProfile.small(divisor=500, seed=seed))
        auditor = IncrementalAuditor(org.state)
        assert auditor.counts() == batch_counts(auditor)
