"""E1 — the worked example of Figure 1, end to end.

The fixture in ``conftest.py`` reconstructs the paper's example network;
every claim the paper makes about it must be detected exactly:

* P01 is a standalone permission;
* R02 has no permissions, R03 has no users;
* R01 and R05 are single-user roles;
* R02 and R04 share the same users, R04 and R05 the same permissions;
* the RUAM co-occurrence matrix equals the one printed in §III-C.
"""

from __future__ import annotations

import pytest

from repro.bitmatrix import cooccurrence
from repro.core import (
    AnalysisConfig,
    AssignmentMatrix,
    Axis,
    InefficiencyType,
    analyze,
)
from repro.core.entities import EntityKind


@pytest.fixture
def report(paper_example):
    return analyze(paper_example)


class TestCooccurrenceMatrix:
    def test_matches_paper_table(self, paper_example):
        ruam = AssignmentMatrix.ruam(paper_example)
        matrix = cooccurrence(ruam.csr).toarray()
        expected = [
            [1, 0, 0, 0, 0],
            [0, 2, 0, 2, 0],
            [0, 0, 0, 0, 0],
            [0, 2, 0, 2, 0],
            [0, 0, 0, 0, 1],
        ]
        assert matrix.tolist() == expected


class TestStandaloneNodes:
    def test_p01_is_the_only_standalone_node(self, report):
        findings = report.of_type(InefficiencyType.STANDALONE_NODE)
        assert len(findings) == 1
        assert findings[0].entity_kind is EntityKind.PERMISSION
        assert findings[0].entity_ids == ("P01",)


class TestDisconnectedRoles:
    def test_r03_has_no_users(self, report):
        findings = report.on_axis(
            InefficiencyType.DISCONNECTED_ROLE, Axis.USERS
        )
        assert [f.entity_ids for f in findings] == [("R03",)]

    def test_r02_has_no_permissions(self, report):
        findings = report.on_axis(
            InefficiencyType.DISCONNECTED_ROLE, Axis.PERMISSIONS
        )
        assert [f.entity_ids for f in findings] == [("R02",)]


class TestSingleAssignmentRoles:
    def test_r01_r05_single_user(self, report):
        findings = report.on_axis(
            InefficiencyType.SINGLE_ASSIGNMENT_ROLE, Axis.USERS
        )
        assert sorted(f.entity_ids[0] for f in findings) == ["R01", "R05"]

    def test_no_single_permission_roles(self, report):
        assert (
            report.on_axis(
                InefficiencyType.SINGLE_ASSIGNMENT_ROLE, Axis.PERMISSIONS
            )
            == []
        )


class TestDuplicateRoles:
    def test_r02_r04_share_users(self, report):
        findings = report.on_axis(InefficiencyType.DUPLICATE_ROLES, Axis.USERS)
        assert [f.entity_ids for f in findings] == [("R02", "R04")]

    def test_r04_r05_share_permissions(self, report):
        findings = report.on_axis(
            InefficiencyType.DUPLICATE_ROLES, Axis.PERMISSIONS
        )
        assert [f.entity_ids for f in findings] == [("R04", "R05")]


class TestSimilarRoles:
    def test_no_similar_groups_at_threshold_one(self, report):
        assert report.of_type(InefficiencyType.SIMILAR_ROLES) == []


class TestAllThreeMethodsAgree:
    @pytest.mark.parametrize("finder", ["cooccurrence", "dbscan", "hnsw"])
    def test_duplicate_findings_identical(self, paper_example, finder):
        report = analyze(paper_example, AnalysisConfig(finder=finder))
        users = report.on_axis(InefficiencyType.DUPLICATE_ROLES, Axis.USERS)
        permissions = report.on_axis(
            InefficiencyType.DUPLICATE_ROLES, Axis.PERMISSIONS
        )
        assert [f.entity_ids for f in users] == [("R02", "R04")]
        assert [f.entity_ids for f in permissions] == [("R04", "R05")]


class TestCounts:
    def test_count_summary(self, report):
        counts = report.counts()
        assert counts == {
            "standalone_users": 0,
            "standalone_permissions": 1,
            "standalone_roles": 0,
            "roles_without_users": 1,
            "roles_without_permissions": 1,
            "single_user_roles": 2,
            "single_permission_roles": 0,
            "roles_same_users": 2,
            "roles_same_permissions": 2,
            "roles_similar_users": 0,
            "roles_similar_permissions": 0,
        }
