"""Unit tests for dataset statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import dataset_statistics
from repro.core.state import RbacState
from repro.core.stats import DistributionSummary, _gini


class TestGini:
    def test_uniform_distribution_is_zero(self):
        assert _gini(np.array([5, 5, 5, 5])) == pytest.approx(0.0)

    def test_concentrated_distribution_near_one(self):
        values = np.array([0] * 99 + [1000])
        assert _gini(values) > 0.95

    def test_empty_and_zero(self):
        assert _gini(np.array([], dtype=np.int64)) == 0.0
        assert _gini(np.zeros(5, dtype=np.int64)) == 0.0

    def test_known_value(self):
        # For [1, 3]: gini = (2*(1*1+2*3)/(2*4)) - 3/2 = 14/8 - 12/8 = 0.25
        assert _gini(np.array([1, 3])) == pytest.approx(0.25)


class TestDistributionSummary:
    def test_of_empty(self):
        summary = DistributionSummary.of(np.array([], dtype=np.int64))
        assert summary.count == 0
        assert summary.total == 0

    def test_of_known_values(self):
        summary = DistributionSummary.of(np.array([0, 1, 2, 3, 4]))
        assert summary.count == 5
        assert summary.total == 10
        assert summary.minimum == 0
        assert summary.maximum == 4
        assert summary.median == 2.0
        assert summary.mean == 2.0
        assert summary.zeros == 1

    def test_to_dict_is_json_safe(self):
        import json

        payload = DistributionSummary.of(np.array([1, 2])).to_dict()
        json.dumps(payload)


class TestDatasetStatistics:
    def test_paper_example(self, paper_example):
        stats = dataset_statistics(paper_example)
        assert stats.n_users == 4
        assert stats.n_roles == 5
        assert stats.n_permissions == 6
        # RUAM has 6 edges over 5*4 cells
        assert stats.ruam_density == pytest.approx(6 / 20)
        # RPAM has 8 edges over 5*6 cells
        assert stats.rpam_density == pytest.approx(8 / 30)
        assert stats.users_per_role.total == 6
        assert stats.permissions_per_role.total == 8

    def test_memory_ratio_matches_paper_formula(self, paper_example):
        """r*(p+u) vs (r+p+u)^2 — the §III-B memory argument."""
        stats = dataset_statistics(paper_example)
        r, u, p = 5, 4, 6
        assert stats.memory_ratio_vs_full_adjacency == pytest.approx(
            (r * (p + u)) / (r + p + u) ** 2
        )

    def test_empty_state(self):
        stats = dataset_statistics(RbacState())
        assert stats.n_roles == 0
        assert stats.ruam_density == 0.0

    def test_to_text_renders(self, paper_example):
        text = dataset_statistics(paper_example).to_text()
        assert "users=4 roles=5 permissions=6" in text
        assert "users / role" in text
        assert "gini" in text

    def test_to_dict_json_safe(self, paper_example):
        import json

        json.dumps(dataset_statistics(paper_example).to_dict())
