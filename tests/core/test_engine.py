"""Unit tests for AnalysisConfig / AnalysisEngine."""

from __future__ import annotations

import pytest

from repro.core import AnalysisConfig, AnalysisEngine, InefficiencyType, analyze
from repro.core.engine import ALL_TYPES
from repro.exceptions import ConfigurationError


class TestConfig:
    def test_defaults(self):
        config = AnalysisConfig()
        assert config.enabled_types == ALL_TYPES
        assert config.finder == "cooccurrence"
        assert config.similarity_threshold == 1

    def test_similarity_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(similarity_threshold=0)

    def test_bogus_types_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(enabled_types=("duplicates",))  # type: ignore[arg-type]

    def test_parallel_defaults(self):
        config = AnalysisConfig()
        assert config.n_workers == 1
        assert config.block_rows is None

    def test_invalid_n_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            AnalysisConfig(n_workers=0)

    def test_invalid_block_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="block_rows"):
            AnalysisConfig(block_rows=-1)

    def test_block_rows_forwarded_to_cooccurrence_finder(self):
        engine = AnalysisEngine(AnalysisConfig(block_rows=7))
        by_name = {d.name: d for d in engine.detectors}
        assert by_name["duplicate_roles"]._finder._block_rows == 7
        assert by_name["similar_roles"]._finder._block_rows == 7

    def test_explicit_finder_options_win_over_block_rows(self):
        engine = AnalysisEngine(
            AnalysisConfig(block_rows=7, finder_options={"block_rows": 3})
        )
        by_name = {d.name: d for d in engine.detectors}
        assert by_name["duplicate_roles"]._finder._block_rows == 3

    def test_block_rows_ignored_for_other_finders(self):
        engine = AnalysisEngine(AnalysisConfig(finder="dbscan", block_rows=7))
        assert [d.name for d in engine.detectors]  # builds without error


class TestEngine:
    def test_all_detectors_built_by_default(self):
        engine = AnalysisEngine()
        names = [d.name for d in engine.detectors]
        assert names == [
            "standalone_nodes",
            "disconnected_roles",
            "single_assignment_roles",
            "duplicate_roles",
            "similar_roles",
        ]

    def test_type_subset_builds_fewer_detectors(self):
        engine = AnalysisEngine(
            AnalysisConfig(
                enabled_types=(InefficiencyType.DUPLICATE_ROLES,)
            )
        )
        assert [d.name for d in engine.detectors] == ["duplicate_roles"]

    def test_analyze_is_read_only(self, paper_example):
        snapshot = paper_example.copy()
        AnalysisEngine().analyze(paper_example)
        assert paper_example == snapshot

    def test_report_carries_timings(self, paper_example):
        report = AnalysisEngine().analyze(paper_example)
        assert set(report.timings) == {
            "matrix_build",
            "workspace_warm",
            "standalone_nodes",
            "disconnected_roles",
            "single_assignment_roles",
            "duplicate_roles",
            "similar_roles",
        }
        assert all(t >= 0 for t in report.timings.values())
        assert report.total_seconds >= sum(report.timings.values()) * 0.5

    def test_analyze_deterministic(self, paper_example):
        first = AnalysisEngine().analyze(paper_example)
        second = AnalysisEngine().analyze(paper_example)
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]

    def test_convenience_function_matches_engine(self, paper_example):
        assert (
            analyze(paper_example).counts()
            == AnalysisEngine().analyze(paper_example).counts()
        )

    def test_finder_options_forwarded(self, paper_example):
        config = AnalysisConfig(
            finder="hnsw", finder_options={"ef_search": 16, "m": 4}
        )
        report = analyze(paper_example, config)
        # the tiny example is easy even for a small-ef index
        assert report.counts()["roles_same_users"] == 2

    def test_similarity_threshold_flows_to_detector(self, paper_example):
        # At threshold 2, R01 {P02,P03} and R03 {P03,P04} become similar
        # on the permission axis (distance 2).
        report = analyze(paper_example, AnalysisConfig(similarity_threshold=2))
        similar = report.of_type(InefficiencyType.SIMILAR_ROLES)
        assert any(set(f.entity_ids) == {"R01", "R03"} for f in similar)

    def test_empty_state(self):
        from repro.core.state import RbacState

        report = analyze(RbacState())
        assert report.findings == []
        assert all(value == 0 for value in report.counts().values())
