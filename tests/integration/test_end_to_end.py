"""Integration tests: the full pipeline across subsystem boundaries.

generate → save → load → analyse → plan → apply → re-analyse, exercising
datagen, io, core, and remediation together, with all three group-finding
methods.
"""

from __future__ import annotations

import pytest

from repro.core import AnalysisConfig, analyze
from repro.datagen import (
    DepartmentProfile,
    OrgProfile,
    generate_departmental_org,
    generate_org,
)
from repro.io import load_json, save_json
from repro.remediation import apply_plan, build_plan, measure_reduction


class TestPlantedOrgPipeline:
    @pytest.fixture(scope="class")
    def org(self):
        return generate_org(OrgProfile.small(divisor=100, seed=3))

    def test_save_load_analyze(self, org, tmp_path_factory):
        path = tmp_path_factory.mktemp("data") / "org.json"
        save_json(org.state, path)
        restored = load_json(path)
        assert analyze(restored).counts() == org.expected_counts()

    @pytest.mark.parametrize("finder", ["cooccurrence", "dbscan"])
    def test_exact_methods_agree_on_planted_org(self, org, finder):
        report = analyze(org.state, AnalysisConfig(finder=finder))
        assert report.counts() == org.expected_counts()

    def test_hnsw_is_sound_but_incomplete_on_planted_org(self, org):
        """The approximate method never invents groups, but on the
        planted org its recall collapses: role vectors here are tiny
        disjoint sets, so almost all pairwise Manhattan distances tie at
        |A|+|B| and HNSW's greedy routing has no gradient to follow —
        the known failure regime of proximity-graph ANN (and the reason
        the paper's custom exact algorithm is the right default)."""
        report = analyze(org.state, AnalysisConfig(finder="hnsw"))
        counts = report.counts()
        expected = org.expected_counts()
        for key in ("roles_same_users", "roles_same_permissions"):
            assert counts[key] <= expected[key]  # sound: no false groups
        # linear-scan detectors are unaffected by the finder choice
        assert counts["standalone_users"] == expected["standalone_users"]
        assert (
            counts["single_user_roles"] == expected["single_user_roles"]
        )

    def test_hnsw_groups_are_true_groups(self, org):
        """Every group the approximate finder does report is correct:
        soundness holds even where recall does not."""
        import numpy as np

        from repro.core.grouping import make_group_finder
        from repro.core.matrices import AssignmentMatrix

        ruam = AssignmentMatrix.ruam(org.state)
        keep = np.flatnonzero(ruam.row_sums > 0)
        submatrix = ruam.dense[keep]
        for group in make_group_finder("hnsw").find_groups(submatrix, 0):
            first = submatrix[group[0]]
            for member in group[1:]:
                assert np.array_equal(first, submatrix[member])

    def test_consolidation_after_cleanup(self, org):
        report = analyze(org.state)
        plan = build_plan(report)
        cleaned = apply_plan(org.state, plan)
        metrics = measure_reduction(org.state, cleaned)
        # 120 no-user + 10 no-perm + 40 same-user-merge + 10 same-perm-merge
        assert metrics.roles_removed == 180
        counts = analyze(cleaned).counts()
        assert counts["roles_same_users"] == 0
        assert counts["roles_same_permissions"] == 0
        assert counts["roles_without_users"] == 0
        assert counts["roles_without_permissions"] == 0

    def test_repeated_cleanup_reaches_fixed_point(self, org):
        current = org.state
        for _ in range(8):
            plan = build_plan(analyze(current))
            if not plan.actions:
                break
            current = apply_plan(current, plan)
        final_plan = build_plan(analyze(current))
        assert final_plan.actions == []


class TestDepartmentalPipeline:
    def test_drifted_duplicates_found_and_merged(self):
        state = generate_departmental_org(DepartmentProfile(seed=4))
        report = analyze(state)
        assert report.counts()["roles_same_permissions"] > 0
        plan = build_plan(report)
        cleaned = apply_plan(state, plan)
        metrics = measure_reduction(state, cleaned)
        assert metrics.roles_removed > 0
        # all users keep their effective access (spot check a sample)
        for user_id in list(cleaned.user_ids())[:50]:
            assert cleaned.effective_permissions(
                user_id
            ) == state.effective_permissions(user_id)


class TestAnonymizedSharing:
    def test_anonymized_export_detects_identically(self, tmp_path):
        from repro.io import anonymize

        org = generate_org(OrgProfile.small(divisor=200, seed=11))
        anonymised = anonymize(org.state, key="org-secret")
        path = tmp_path / "shared.json"
        save_json(anonymised, path)
        shared = load_json(path)
        assert analyze(shared).counts() == org.expected_counts()
