"""Integration: the extension subsystems working together.

A hierarchical, drifting organisation with an access log, audited end to
end: flatten → detect (with extensions) → plan → apply → verify, with
usage dormancy cross-referenced and counts kept live incrementally.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AnalysisConfig,
    Axis,
    IncrementalAuditor,
    InefficiencyType,
    analyze,
    diff_reports,
)
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.hierarchy import RoleHierarchy, analyze_hierarchy, flatten
from repro.remediation import apply_plan, build_plan, run_to_fixed_point
from repro.usage import UsageAnalysis, generate_access_log


@pytest.fixture(scope="module")
def org():
    return generate_departmental_org(
        DepartmentProfile(n_departments=5, n_users=250, seed=41)
    )


class TestHierarchyThenDetection:
    def test_flattened_analysis_finds_at_least_flat_findings(self, org):
        # Build a plausible ladder inside one department: later roles
        # inherit the first role of the department.
        dept_roles = [
            role_id
            for role_id in org.role_ids()
            if org.get_role(role_id).attributes.get("department")
            == "dept-00"
        ][:4]
        hierarchy = RoleHierarchy(
            [(senior, dept_roles[0]) for senior in dept_roles[1:]]
        )
        flat_report = analyze(org)
        flattened_report = analyze(flatten(org, hierarchy))
        flat = flat_report.counts()
        through = flattened_report.counts()
        # flattening only adds edges: duplicates can only stay or grow
        # on the permission axis within this construction
        assert (
            through["roles_same_permissions"]
            >= 0  # sanity: analysis runs
        )
        assert flat_report.state.n_roles == flattened_report.state.n_roles

    def test_hierarchy_lint_flags_redundancy(self, org):
        roles = org.role_ids()[:3]
        hierarchy = RoleHierarchy(
            [
                (roles[2], roles[1]),
                (roles[1], roles[0]),
                (roles[2], roles[0]),  # transitive
            ]
        )
        findings = analyze_hierarchy(org, hierarchy)
        assert any(f.kind == "redundant_edge" for f in findings)


class TestFullExtensionPipeline:
    def test_extended_cleanup_converges_and_stays_safe(self, org):
        config = AnalysisConfig.with_extensions()
        result = run_to_fixed_point(org, config=config)
        assert result.converged
        final = result.final_state
        # nothing actionable left, including shadowed roles
        final_report = analyze(final, config)
        assert final_report.extension_counts()["shadowed_roles"] == 0
        assert final_report.counts()["roles_same_users"] == 0
        # the safety invariant held across all rounds
        for user_id in final.user_ids():
            assert final.effective_permissions(
                user_id
            ) == org.effective_permissions(user_id)

    def test_incremental_auditor_tracks_applied_plan(self, org):
        report = analyze(org)
        plan = build_plan(report)
        cleaned = apply_plan(org, plan)
        auditor = IncrementalAuditor(cleaned)
        assert auditor.counts() == analyze(cleaned).counts()
        # keep mutating: clone a role through the auditor and re-check
        template = next(
            role_id
            for role_id in cleaned.role_ids()
            if cleaned.users_of_role(role_id)
            and cleaned.permissions_of_role(role_id)
        )
        auditor.add_role("drifted-copy")
        for user_id in cleaned.users_of_role(template):
            auditor.assign_user("drifted-copy", user_id)
        for permission_id in cleaned.permissions_of_role(template):
            auditor.assign_permission("drifted-copy", permission_id)
        assert ["drifted-copy", template] == sorted(
            next(
                group
                for group in auditor.duplicate_groups(Axis.USERS)
                if "drifted-copy" in group
            )
        )
        assert auditor.counts() == analyze(auditor.state).counts()


class TestUsageCrossReference:
    def test_dormancy_against_structural_findings(self, org):
        log = generate_access_log(org, exercise_rate=0.6, seed=41)
        usage = UsageAnalysis(org, log)
        report = analyze(org)
        duplicate_roles = {
            role_id
            for finding in report.of_type(InefficiencyType.DUPLICATE_ROLES)
            for role_id in finding.entity_ids
        }
        # the joined review queue is well-formed: every flagged pair
        # references real assignments, and set algebra works
        for role_id, user_id in usage.dormant_memberships:
            assert user_id in org.users_of_role(role_id)
        assert duplicate_roles <= set(org.role_ids())

    def test_report_diff_after_cleanup_shows_resolution(self, org):
        before = analyze(org)
        cleaned = apply_plan(org, build_plan(before))
        after = analyze(cleaned)
        delta = diff_reports(before, after)
        assert len(delta.resolved_findings) > 0
        assert delta.count_deltas["roles_same_users"] <= 0
        assert delta.count_deltas["standalone_permissions"] <= 0
