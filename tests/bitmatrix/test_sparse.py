"""Unit tests for the sparse co-occurrence helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bitmatrix import (
    cooccurrence,
    csr_row_keys,
    equal_row_groups_sparse,
    row_norms,
    to_csr,
)


class TestToCsr:
    def test_from_dense_bool(self):
        csr = to_csr(np.array([[True, False], [False, True]]))
        assert sp.issparse(csr)
        assert csr.dtype == np.int64
        assert csr.toarray().tolist() == [[1, 0], [0, 1]]

    def test_from_list(self):
        csr = to_csr([[1, 0, 1]])
        assert csr.toarray().tolist() == [[1, 0, 1]]

    def test_from_sparse_passthrough(self):
        original = sp.coo_matrix(np.eye(3))
        csr = to_csr(original)
        assert isinstance(csr, sp.csr_matrix)
        assert csr.dtype == np.int64

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            to_csr([1, 0, 1])


class TestCooccurrence:
    def test_paper_example_matrix(self):
        # RUAM of Figure 1: R01={U01}, R02={U02,U03}, R03={}, R04={U02,U03},
        # R05={U04} — the co-occurrence matrix printed in §III-C.
        ruam = [
            [1, 0, 0, 0],
            [0, 1, 1, 0],
            [0, 0, 0, 0],
            [0, 1, 1, 0],
            [0, 0, 0, 1],
        ]
        cooc = cooccurrence(ruam).toarray()
        expected = [
            [1, 0, 0, 0, 0],
            [0, 2, 0, 2, 0],
            [0, 0, 0, 0, 0],
            [0, 2, 0, 2, 0],
            [0, 0, 0, 0, 1],
        ]
        assert cooc.tolist() == expected

    def test_diagonal_is_row_norm(self):
        rng = np.random.default_rng(5)
        dense = rng.random((10, 30)) < 0.3
        cooc = cooccurrence(dense).toarray()
        assert np.array_equal(np.diag(cooc), dense.sum(axis=1))

    def test_symmetric(self):
        rng = np.random.default_rng(6)
        dense = rng.random((8, 20)) < 0.4
        cooc = cooccurrence(dense).toarray()
        assert np.array_equal(cooc, cooc.T)


class TestRowNorms:
    def test_matches_dense_sums(self):
        dense = np.array([[1, 1, 0], [0, 0, 0], [1, 1, 1]], dtype=bool)
        assert row_norms(dense).tolist() == [2, 0, 3]


class TestCsrRowKeys:
    def test_equal_rows_share_keys(self):
        keys = csr_row_keys([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_unsorted_indices_are_canonicalised(self):
        # Build a CSR with deliberately unsorted indices in one row.
        indptr = np.array([0, 2, 4])
        indices = np.array([2, 0, 0, 2])
        data = np.ones(4, dtype=np.int64)
        messy = sp.csr_matrix((data, indices, indptr), shape=(2, 3))
        keys = csr_row_keys(messy)
        assert keys[0] == keys[1]

    def test_empty_rows_share_a_key(self):
        keys = csr_row_keys(np.zeros((3, 4), dtype=bool))
        assert keys[0] == keys[1] == keys[2]


class TestEqualRowGroupsSparse:
    def test_matches_bitmatrix_grouping(self):
        from repro.bitmatrix import BitMatrix

        rng = np.random.default_rng(7)
        dense = rng.random((30, 12)) < 0.2
        dense[5] = dense[17]
        dense[3] = dense[29]
        assert (
            equal_row_groups_sparse(dense)
            == BitMatrix(dense).equal_row_groups()
        )

    def test_empty_matrix(self):
        assert equal_row_groups_sparse(np.zeros((0, 3), dtype=bool)) == []
