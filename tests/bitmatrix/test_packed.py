"""Unit tests for the bit-packed matrix substrate."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bitmatrix import BitMatrix, pack_csr_rows, popcount
from repro.bitmatrix.packed import _pack_rows, _popcount_table


class TestPopcount:
    def test_zero(self):
        words = np.zeros(3, dtype=np.uint64)
        assert popcount(words).tolist() == [0, 0, 0]

    def test_all_ones(self):
        words = np.full(2, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        assert popcount(words).tolist() == [64, 64]

    def test_known_values(self):
        words = np.array([1, 3, 0xFF, 1 << 63], dtype=np.uint64)
        assert popcount(words).tolist() == [1, 2, 8, 1]

    def test_matches_python_bincount(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount(words).tolist() == expected

    def test_preserves_shape(self):
        words = np.zeros((4, 7), dtype=np.uint64)
        assert popcount(words).shape == (4, 7)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            popcount(np.zeros(3, dtype=np.int64))

    def test_non_contiguous_input(self):
        # Regression: column slices of a packed word array are strided,
        # and the uint16 table view used to raise
        # "To change to a view with different size, the last axis must
        # be contiguous".
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**63, size=(5, 4), dtype=np.uint64)
        column = words[:, 1]
        assert not column.flags.c_contiguous or column.ndim == 1
        expected = [bin(int(w)).count("1") for w in column]
        assert popcount(column).tolist() == expected

    def test_non_contiguous_2d_slice(self):
        rng = np.random.default_rng(4)
        words = rng.integers(0, 2**63, size=(6, 8), dtype=np.uint64)
        view = words[::2, 1::3]  # strided in both axes
        expected = popcount(np.ascontiguousarray(view))
        assert popcount(view).tolist() == expected.tolist()

    def test_table_fallback_matches_dispatch(self):
        # The table path must stay correct (and strided-safe) even on
        # numpy builds where the hardware ufunc handles normal traffic.
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**63, size=(7, 5), dtype=np.uint64)
        assert (_popcount_table(words) == popcount(words)).all()
        view = words[:, ::2]
        assert (_popcount_table(view) == popcount(view)).all()


class TestPackCsrRows:
    def _random_csr(self, seed, shape, density):
        rng = np.random.default_rng(seed)
        dense = rng.random(shape) < density
        return sp.csr_matrix(dense.astype(np.int64)), dense

    @pytest.mark.parametrize("density", [0.0, 0.05, 0.5, 1.0])
    def test_matches_dense_packing(self, density):
        csr, dense = self._random_csr(11, (23, 130), density)
        assert (pack_csr_rows(csr) == _pack_rows(dense)).all()

    def test_blockwise_matches_single_block(self):
        csr, dense = self._random_csr(12, (50, 70), 0.3)
        assert (
            pack_csr_rows(csr, block_rows=7) == _pack_rows(dense)
        ).all()

    def test_empty_matrix(self):
        csr = sp.csr_matrix((0, 10), dtype=np.int64)
        assert pack_csr_rows(csr).shape == (0, 1)

    def test_explicit_zeros_ignored(self):
        data = np.array([1, 0, 1], dtype=np.int64)
        indices = np.array([0, 1, 2], dtype=np.int64)
        indptr = np.array([0, 3], dtype=np.int64)
        csr = sp.csr_matrix((data, indices, indptr), shape=(1, 3))
        packed = pack_csr_rows(csr)
        assert popcount(packed).sum() == 2

    def test_rejects_bad_block_rows(self):
        csr = sp.csr_matrix(np.eye(3, dtype=np.int64))
        with pytest.raises(ValueError):
            pack_csr_rows(csr, block_rows=0)


class TestFromWords:
    def test_round_trip(self):
        dense = np.random.default_rng(13).random((9, 100)) < 0.4
        direct = BitMatrix(dense)
        rebuilt = BitMatrix.from_words(direct.words, 100)
        assert rebuilt.shape == direct.shape
        assert (rebuilt.words == direct.words).all()
        assert (rebuilt.row_popcounts == direct.row_popcounts).all()
        assert (rebuilt.to_dense() == dense).all()

    def test_zero_copy_when_contiguous(self):
        words = np.zeros((3, 2), dtype=np.uint64)
        bits = BitMatrix.from_words(words, 128)
        assert bits.words is words

    def test_rejects_wrong_word_count(self):
        with pytest.raises(ValueError):
            BitMatrix.from_words(np.zeros((3, 2), dtype=np.uint64), 30)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            BitMatrix.from_words(np.zeros(4, dtype=np.uint64), 64)


class TestConstruction:
    def test_shape_preserved(self):
        bits = BitMatrix([[1, 0, 1], [0, 0, 0]])
        assert bits.shape == (2, 3)
        assert bits.n_rows == 2
        assert bits.n_cols == 3
        assert len(bits) == 2

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            BitMatrix([1, 0, 1])

    def test_words_padded_to_64_bits(self):
        bits = BitMatrix(np.ones((2, 70), dtype=bool))
        assert bits.words.shape == (2, 2)

    def test_words_are_readonly(self):
        bits = BitMatrix([[1, 0]])
        with pytest.raises(ValueError):
            bits.words[0, 0] = 1

    def test_empty_columns_edge_case(self):
        bits = BitMatrix(np.zeros((3, 1), dtype=bool))
        assert bits.row_popcounts.tolist() == [0, 0, 0]


class TestRoundTrip:
    def test_row_unpack(self):
        data = [[1, 0, 1, 1], [0, 1, 0, 0]]
        bits = BitMatrix(data)
        assert bits.row(0).tolist() == [True, False, True, True]
        assert bits.row(1).tolist() == [False, True, False, False]

    def test_row_out_of_range(self):
        bits = BitMatrix([[1]])
        with pytest.raises(IndexError):
            bits.row(1)

    def test_to_dense_round_trips(self):
        rng = np.random.default_rng(1)
        dense = rng.random((13, 131)) < 0.3
        assert np.array_equal(BitMatrix(dense).to_dense(), dense)

    def test_iteration_yields_rows(self):
        dense = np.eye(3, dtype=bool)
        rows = list(BitMatrix(dense))
        assert len(rows) == 3
        for i, row in enumerate(rows):
            assert np.array_equal(row, dense[i])


class TestHamming:
    def test_identical_rows_distance_zero(self):
        bits = BitMatrix([[1, 1, 0], [1, 1, 0]])
        assert bits.hamming(0, 1) == 0

    def test_known_distance(self):
        bits = BitMatrix([[1, 1, 0, 0], [1, 0, 1, 0]])
        assert bits.hamming(0, 1) == 2

    def test_distance_across_word_boundary(self):
        a = np.zeros(130, dtype=bool)
        b = np.zeros(130, dtype=bool)
        a[[0, 64, 129]] = True
        b[[1, 64, 128]] = True
        bits = BitMatrix(np.stack([a, b]))
        assert bits.hamming(0, 1) == 4

    def test_hamming_to_row(self):
        bits = BitMatrix([[1, 0], [0, 1], [1, 0]])
        assert bits.hamming_to_row(0).tolist() == [0, 2, 0]

    def test_hamming_block_matches_scalar(self):
        rng = np.random.default_rng(2)
        dense = rng.random((9, 77)) < 0.4
        bits = BitMatrix(dense)
        rows_a = np.array([0, 3, 5], dtype=np.intp)
        rows_b = np.array([1, 2], dtype=np.intp)
        block = bits.hamming_block(rows_a, rows_b)
        for i, a in enumerate(rows_a):
            for j, b in enumerate(rows_b):
                assert block[i, j] == bits.hamming(int(a), int(b))

    def test_pairwise_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(3)
        dense = rng.random((20, 40)) < 0.5
        matrix = BitMatrix(dense).pairwise_hamming(block_size=7)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_pairwise_matches_numpy(self):
        rng = np.random.default_rng(4)
        dense = rng.random((15, 33)) < 0.5
        expected = (dense[:, None, :] != dense[None, :, :]).sum(axis=2)
        got = BitMatrix(dense).pairwise_hamming(block_size=4)
        assert np.array_equal(got, expected)

    def test_rows_within_hamming_includes_self(self):
        bits = BitMatrix([[1, 0], [0, 1], [1, 0]])
        assert bits.rows_within_hamming(0, 0).tolist() == [0, 2]
        assert bits.rows_within_hamming(1, 2).tolist() == [0, 1, 2]


class TestGrouping:
    def test_row_keys_equal_iff_content_equal(self):
        bits = BitMatrix([[1, 0], [1, 0], [0, 1]])
        keys = bits.row_keys()
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_equal_row_groups(self):
        bits = BitMatrix(
            [
                [1, 0, 0],
                [0, 1, 0],
                [1, 0, 0],
                [0, 0, 1],
                [0, 1, 0],
                [1, 0, 0],
            ]
        )
        assert bits.equal_row_groups() == [[0, 2, 5], [1, 4]]

    def test_no_groups_when_all_unique(self):
        bits = BitMatrix(np.eye(4, dtype=bool))
        assert bits.equal_row_groups() == []

    def test_all_zero_rows_group_together(self):
        bits = BitMatrix(np.zeros((3, 5), dtype=bool))
        assert bits.equal_row_groups() == [[0, 1, 2]]

    def test_padding_bits_do_not_leak_into_keys(self):
        # 65 columns forces a second word with 63 padding bits; two rows
        # differing only in their final column must get distinct keys.
        a = np.zeros(65, dtype=bool)
        b = np.zeros(65, dtype=bool)
        b[64] = True
        bits = BitMatrix(np.stack([a, b]))
        assert bits.equal_row_groups() == []
        assert bits.hamming(0, 1) == 1
