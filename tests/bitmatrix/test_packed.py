"""Unit tests for the bit-packed matrix substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmatrix import BitMatrix, popcount


class TestPopcount:
    def test_zero(self):
        words = np.zeros(3, dtype=np.uint64)
        assert popcount(words).tolist() == [0, 0, 0]

    def test_all_ones(self):
        words = np.full(2, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        assert popcount(words).tolist() == [64, 64]

    def test_known_values(self):
        words = np.array([1, 3, 0xFF, 1 << 63], dtype=np.uint64)
        assert popcount(words).tolist() == [1, 2, 8, 1]

    def test_matches_python_bincount(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount(words).tolist() == expected

    def test_preserves_shape(self):
        words = np.zeros((4, 7), dtype=np.uint64)
        assert popcount(words).shape == (4, 7)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            popcount(np.zeros(3, dtype=np.int64))


class TestConstruction:
    def test_shape_preserved(self):
        bits = BitMatrix([[1, 0, 1], [0, 0, 0]])
        assert bits.shape == (2, 3)
        assert bits.n_rows == 2
        assert bits.n_cols == 3
        assert len(bits) == 2

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            BitMatrix([1, 0, 1])

    def test_words_padded_to_64_bits(self):
        bits = BitMatrix(np.ones((2, 70), dtype=bool))
        assert bits.words.shape == (2, 2)

    def test_words_are_readonly(self):
        bits = BitMatrix([[1, 0]])
        with pytest.raises(ValueError):
            bits.words[0, 0] = 1

    def test_empty_columns_edge_case(self):
        bits = BitMatrix(np.zeros((3, 1), dtype=bool))
        assert bits.row_popcounts.tolist() == [0, 0, 0]


class TestRoundTrip:
    def test_row_unpack(self):
        data = [[1, 0, 1, 1], [0, 1, 0, 0]]
        bits = BitMatrix(data)
        assert bits.row(0).tolist() == [True, False, True, True]
        assert bits.row(1).tolist() == [False, True, False, False]

    def test_row_out_of_range(self):
        bits = BitMatrix([[1]])
        with pytest.raises(IndexError):
            bits.row(1)

    def test_to_dense_round_trips(self):
        rng = np.random.default_rng(1)
        dense = rng.random((13, 131)) < 0.3
        assert np.array_equal(BitMatrix(dense).to_dense(), dense)

    def test_iteration_yields_rows(self):
        dense = np.eye(3, dtype=bool)
        rows = list(BitMatrix(dense))
        assert len(rows) == 3
        for i, row in enumerate(rows):
            assert np.array_equal(row, dense[i])


class TestHamming:
    def test_identical_rows_distance_zero(self):
        bits = BitMatrix([[1, 1, 0], [1, 1, 0]])
        assert bits.hamming(0, 1) == 0

    def test_known_distance(self):
        bits = BitMatrix([[1, 1, 0, 0], [1, 0, 1, 0]])
        assert bits.hamming(0, 1) == 2

    def test_distance_across_word_boundary(self):
        a = np.zeros(130, dtype=bool)
        b = np.zeros(130, dtype=bool)
        a[[0, 64, 129]] = True
        b[[1, 64, 128]] = True
        bits = BitMatrix(np.stack([a, b]))
        assert bits.hamming(0, 1) == 4

    def test_hamming_to_row(self):
        bits = BitMatrix([[1, 0], [0, 1], [1, 0]])
        assert bits.hamming_to_row(0).tolist() == [0, 2, 0]

    def test_hamming_block_matches_scalar(self):
        rng = np.random.default_rng(2)
        dense = rng.random((9, 77)) < 0.4
        bits = BitMatrix(dense)
        rows_a = np.array([0, 3, 5], dtype=np.intp)
        rows_b = np.array([1, 2], dtype=np.intp)
        block = bits.hamming_block(rows_a, rows_b)
        for i, a in enumerate(rows_a):
            for j, b in enumerate(rows_b):
                assert block[i, j] == bits.hamming(int(a), int(b))

    def test_pairwise_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(3)
        dense = rng.random((20, 40)) < 0.5
        matrix = BitMatrix(dense).pairwise_hamming(block_size=7)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_pairwise_matches_numpy(self):
        rng = np.random.default_rng(4)
        dense = rng.random((15, 33)) < 0.5
        expected = (dense[:, None, :] != dense[None, :, :]).sum(axis=2)
        got = BitMatrix(dense).pairwise_hamming(block_size=4)
        assert np.array_equal(got, expected)

    def test_rows_within_hamming_includes_self(self):
        bits = BitMatrix([[1, 0], [0, 1], [1, 0]])
        assert bits.rows_within_hamming(0, 0).tolist() == [0, 2]
        assert bits.rows_within_hamming(1, 2).tolist() == [0, 1, 2]


class TestGrouping:
    def test_row_keys_equal_iff_content_equal(self):
        bits = BitMatrix([[1, 0], [1, 0], [0, 1]])
        keys = bits.row_keys()
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_equal_row_groups(self):
        bits = BitMatrix(
            [
                [1, 0, 0],
                [0, 1, 0],
                [1, 0, 0],
                [0, 0, 1],
                [0, 1, 0],
                [1, 0, 0],
            ]
        )
        assert bits.equal_row_groups() == [[0, 2, 5], [1, 4]]

    def test_no_groups_when_all_unique(self):
        bits = BitMatrix(np.eye(4, dtype=bool))
        assert bits.equal_row_groups() == []

    def test_all_zero_rows_group_together(self):
        bits = BitMatrix(np.zeros((3, 5), dtype=bool))
        assert bits.equal_row_groups() == [[0, 1, 2]]

    def test_padding_bits_do_not_leak_into_keys(self):
        # 65 columns forces a second word with 63 padding bits; two rows
        # differing only in their final column must get distinct keys.
        a = np.zeros(65, dtype=bool)
        b = np.zeros(65, dtype=bool)
        b[64] = True
        bits = BitMatrix(np.stack([a, b]))
        assert bits.equal_row_groups() == []
        assert bits.hamming(0, 1) == 1
