"""Property-based tests for the bit-packed matrix substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitmatrix import BitMatrix


def bool_matrices(max_rows: int = 12, max_cols: int = 150):
    return hnp.arrays(
        dtype=bool,
        shape=st.tuples(
            st.integers(min_value=1, max_value=max_rows),
            st.integers(min_value=1, max_value=max_cols),
        ),
    )


class TestRoundTripProperties:
    @given(bool_matrices())
    @settings(max_examples=60)
    def test_pack_unpack_identity(self, dense):
        assert np.array_equal(BitMatrix(dense).to_dense(), dense)

    @given(bool_matrices())
    @settings(max_examples=60)
    def test_row_popcounts_match_sums(self, dense):
        bits = BitMatrix(dense)
        assert bits.row_popcounts.tolist() == dense.sum(axis=1).tolist()


class TestHammingProperties:
    @given(bool_matrices(max_rows=8, max_cols=100), st.data())
    @settings(max_examples=60)
    def test_hamming_matches_xor_count(self, dense, data):
        bits = BitMatrix(dense)
        n = dense.shape[0]
        i = data.draw(st.integers(min_value=0, max_value=n - 1))
        j = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert bits.hamming(i, j) == int(np.count_nonzero(dense[i] != dense[j]))

    @given(bool_matrices(max_rows=8, max_cols=80))
    @settings(max_examples=40)
    def test_hamming_is_a_metric(self, dense):
        bits = BitMatrix(dense)
        n = dense.shape[0]
        for i in range(n):
            assert bits.hamming(i, i) == 0
            for j in range(n):
                assert bits.hamming(i, j) == bits.hamming(j, i)
                for k in range(n):
                    assert (
                        bits.hamming(i, k)
                        <= bits.hamming(i, j) + bits.hamming(j, k)
                    )


class TestGroupingProperties:
    @given(bool_matrices(max_rows=15, max_cols=40))
    @settings(max_examples=60)
    def test_groups_contain_exactly_equal_rows(self, dense):
        bits = BitMatrix(dense)
        groups = bits.equal_row_groups()
        # Every group's rows are mutually equal…
        for group in groups:
            for member in group[1:]:
                assert np.array_equal(dense[group[0]], dense[member])
        # …and every equal pair is inside some group.
        grouped = {m for g in groups for m in g}
        n = dense.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                if np.array_equal(dense[i], dense[j]):
                    assert i in grouped and j in grouped

    @given(bool_matrices(max_rows=12, max_cols=30))
    @settings(max_examples=40)
    def test_groups_are_disjoint_and_sorted(self, dense):
        groups = BitMatrix(dense).equal_row_groups()
        seen: set[int] = set()
        previous_first = -1
        for group in groups:
            assert len(group) >= 2
            assert group == sorted(group)
            assert group[0] > previous_first
            previous_first = group[0]
            assert not (seen & set(group))
            seen.update(group)
