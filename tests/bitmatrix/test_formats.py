"""Unit tests for the sparse-format evaluation helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmatrix import evaluate_formats, recommend_format
from repro.bitmatrix.formats import DEFAULT_FORMATS
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(30)
    return (rng.random((120, 200)) < 0.05).astype(bool)


class TestEvaluateFormats:
    def test_default_formats_measured(self, matrix):
        stats = evaluate_formats(matrix, repeats=1)
        assert [s.format for s in stats] == list(DEFAULT_FORMATS)
        for entry in stats:
            assert entry.conversion_seconds >= 0
            assert entry.product_seconds >= 0
            assert entry.memory_bytes > 0

    def test_lil_is_slower_at_products(self, matrix):
        """The reason LIL/DOK are excluded by default: their products are
        drastically slower — exactly the 'choose the type based on
        experimental evaluation' point of the paper."""
        stats = {
            s.format: s
            for s in evaluate_formats(
                matrix, formats=("csr", "lil"), repeats=1
            )
        }
        assert stats["lil"].product_seconds > stats["csr"].product_seconds

    def test_unknown_format_rejected(self, matrix):
        with pytest.raises(ConfigurationError, match="unknown sparse format"):
            evaluate_formats(matrix, formats=("bsr2",))

    def test_repeats_validated(self, matrix):
        with pytest.raises(ConfigurationError):
            evaluate_formats(matrix, repeats=0)

    def test_to_dict(self, matrix):
        entry = evaluate_formats(matrix, formats=("csr",), repeats=1)[0]
        payload = entry.to_dict()
        assert payload["format"] == "csr"
        assert set(payload) == {
            "format", "conversion_seconds", "memory_bytes", "product_seconds",
        }


class TestRecommendFormat:
    def test_recommends_a_requested_format(self, matrix):
        choice = recommend_format(matrix, repeats=1)
        assert choice in DEFAULT_FORMATS

    def test_accepts_sparse_input(self, matrix):
        import scipy.sparse as sp

        choice = recommend_format(sp.csr_matrix(matrix), repeats=1)
        assert choice in DEFAULT_FORMATS
