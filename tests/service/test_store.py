"""Snapshot store tests: atomic writes, verified loads."""

from __future__ import annotations

import json

import pytest

from repro.core.state import RbacState
from repro.exceptions import DataFormatError
from repro.service.store import (
    SNAPSHOT_FORMAT,
    SnapshotMeta,
    SnapshotStore,
)


def sample_state() -> RbacState:
    return RbacState.build(
        users=["u0", "u1", "u2"],
        roles=["r0", "r1"],
        permissions=["p0", "p1", "p2"],
        user_assignments=[("r0", "u0"), ("r0", "u1"), ("r1", "u2")],
        permission_assignments=[("r0", "p0"), ("r1", "p1"), ("r1", "p2")],
    )


def sample_meta(state: RbacState) -> SnapshotMeta:
    return SnapshotMeta(
        mutation_seq=17,
        fingerprint=state.fingerprint(),
        saved_at=1_700_000_000.0,
        extra={"reason": "test"},
    )


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        state = sample_state()
        store = SnapshotStore(tmp_path / "snap.json")
        assert not store.exists()
        store.save(state, sample_meta(state))
        assert store.exists()
        loaded, meta = store.load()
        assert loaded == state
        assert loaded.fingerprint() == state.fingerprint()
        assert meta.mutation_seq == 17
        assert meta.extra == {"reason": "test"}

    def test_save_creates_parent_directories(self, tmp_path):
        state = sample_state()
        store = SnapshotStore(tmp_path / "deep" / "nested" / "snap.json")
        store.save(state, sample_meta(state))
        assert store.exists()

    def test_overwrite_replaces_previous(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        first = sample_state()
        store.save(first, sample_meta(first))
        second = sample_state()
        second.add_user("u-new")
        store.save(second, sample_meta(second))
        loaded, _ = store.load()
        assert loaded == second

    def test_no_temp_files_left_behind(self, tmp_path):
        state = sample_state()
        store = SnapshotStore(tmp_path / "snap.json")
        store.save(state, sample_meta(state))
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]


class TestAtomicity:
    def test_failed_save_keeps_previous_snapshot(self, tmp_path, monkeypatch):
        store = SnapshotStore(tmp_path / "snap.json")
        original = sample_state()
        store.save(original, sample_meta(original))

        def boom(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr("repro.service.store.json.dump", boom)
        with pytest.raises(RuntimeError):
            store.save(sample_state(), sample_meta(sample_state()))
        monkeypatch.undo()
        loaded, meta = store.load()
        assert loaded == original
        assert meta.mutation_seq == 17
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]


class TestLoadValidation:
    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DataFormatError, match="corrupt snapshot"):
            SnapshotStore(path).load()

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DataFormatError, match=SNAPSHOT_FORMAT):
            SnapshotStore(path).load()

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(
            json.dumps({"format": SNAPSHOT_FORMAT, "version": 99})
        )
        with pytest.raises(DataFormatError, match="version"):
            SnapshotStore(path).load()

    def test_fingerprint_mismatch_detected(self, tmp_path):
        state = sample_state()
        store = SnapshotStore(tmp_path / "snap.json")
        store.save(state, sample_meta(state))
        document = json.loads(store.path.read_text(encoding="utf-8"))
        # Tamper with the persisted edges behind the fingerprint's back.
        document["state"]["user_assignments"] = [["r0", "u0"]]
        store.path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(DataFormatError, match="fingerprint check"):
            store.load()

    def test_empty_fingerprint_skips_the_check(self, tmp_path):
        state = sample_state()
        store = SnapshotStore(tmp_path / "snap.json")
        store.save(state, SnapshotMeta(mutation_seq=1, fingerprint=""))
        loaded, meta = store.load()
        assert loaded == state
        assert meta.fingerprint == ""
