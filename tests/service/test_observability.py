"""Service telemetry-plane tests: trace correlation, /metricz v2,
Prometheus exposition, /tracez, and SLO-driven health degradation.

Drives ``AnalysisService.handle`` directly (the transport-independent
seam), same as tests/service/test_server.py.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.service import AnalysisService, ServiceConfig, SloTracker


def sample_state() -> RbacState:
    return RbacState.build(
        users=[f"u{i}" for i in range(5)],
        roles=[f"r{i}" for i in range(4)],
        permissions=[f"p{i}" for i in range(5)],
        user_assignments=[
            ("r0", "u0"), ("r0", "u1"), ("r1", "u0"), ("r1", "u1"),
            ("r2", "u2"),
        ],
        permission_assignments=[
            ("r0", "p0"), ("r0", "p1"), ("r1", "p0"), ("r1", "p1"),
            ("r2", "p2"),
        ],
    )


def make_service(**overrides) -> AnalysisService:
    options = dict(warm_start=False, refresh_mutations=None)
    options.update(overrides)
    return AnalysisService(sample_state(), ServiceConfig(**options))


class TestTraceCorrelation:
    def test_client_trace_id_is_echoed(self):
        service = make_service()
        _, _, headers = service.handle(
            "GET", "/healthz", trace_id_header="client-trace-7"
        )
        assert headers["X-Trace-Id"] == "client-trace-7"

    def test_trace_id_generated_when_absent(self):
        service = make_service()
        _, _, first = service.handle("GET", "/healthz")
        _, _, second = service.handle("GET", "/healthz")
        assert first["X-Trace-Id"] and second["X-Trace-Id"]
        assert first["X-Trace-Id"] != second["X-Trace-Id"]

    def test_blank_header_treated_as_absent(self):
        _, _, headers = make_service().handle(
            "GET", "/healthz", trace_id_header="   "
        )
        assert headers["X-Trace-Id"].strip()

    def test_trace_id_lands_in_tracez(self):
        service = make_service()
        service.handle("GET", "/v1/counts", trace_id_header="find-me")
        _, tracez, _ = service.handle("GET", "/tracez")
        assert "find-me" in [t["trace_id"] for t in tracez["traces"]]


class TestMetricz:
    def test_schema_v2_shape(self):
        service = make_service()
        service.handle("POST", "/v1/analyze", b"{}")
        status, payload, _ = service.handle("GET", "/metricz")
        assert status == 200
        assert payload["schema"] == 2
        endpoint = payload["endpoints"]["POST /v1/analyze"]
        assert endpoint["count"] == 1
        assert endpoint["p50_seconds"] is not None
        assert endpoint["p50_seconds"] <= endpoint["p99_seconds"]
        # Engine histograms accumulate into the service registry.
        assert payload["histograms"]["detector.seconds"]["count"] > 0
        assert "slo" not in payload  # tracking is opt-in

    def test_prometheus_exposition(self):
        service = make_service()
        service.handle("POST", "/v1/analyze", b"{}")
        service.handle("GET", "/healthz")
        status, text, _ = service.handle(
            "GET", "/metricz?format=prometheus"
        )
        assert status == 200
        assert isinstance(text, str)
        assert "# TYPE repro_service_request_seconds histogram" in text
        assert 'endpoint="GET /healthz"' in text
        assert 'le="+Inf"' in text
        assert "repro_service_requests_total" in text
        assert "repro_service_uptime_seconds" in text

    def test_unknown_format_is_400(self):
        status, payload, _ = make_service().handle(
            "GET", "/metricz?format=xml"
        )
        assert status == 400
        assert "unknown format" in payload["error"]

    def test_concurrent_requests_lose_no_observations(self):
        """Satellite hammer: N threads, every request lands in both the
        plain-dict aggregates and the latency histograms, and the
        percentile invariants hold."""
        service = make_service()
        threads, per_thread = 8, 25

        def hammer():
            for _ in range(per_thread):
                status, _, _ = service.handle("GET", "/v1/counts")
                assert status == 200

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        status, payload, _ = service.handle("GET", "/metricz")
        assert status == 200
        total = threads * per_thread
        endpoint = payload["endpoints"]["GET /v1/counts"]
        assert endpoint["count"] == total
        assert endpoint["errors"] == 0
        series = payload["histograms"]["service.request_seconds"]
        counts_hist = next(
            entry
            for entry in series
            if entry["labels"] == {"endpoint": "GET /v1/counts"}
        )
        assert counts_hist["count"] == total  # no lost updates
        assert sum(n for _, n in counts_hist["buckets"]) == total
        assert (
            counts_hist["min"]
            <= counts_hist["p50"]
            <= counts_hist["p90"]
            <= counts_hist["p99"]
            <= counts_hist["max"]
        )
        assert counts_hist["sum"] == pytest.approx(
            endpoint["total_seconds"], rel=1e-6
        )
        assert payload["counters"]["service.requests"] >= total


class TestTracez:
    def test_slowest_traces_shape(self):
        service = make_service()
        for _ in range(5):
            service.handle("GET", "/v1/counts")
        status, payload, _ = service.handle("GET", "/tracez?k=3")
        assert status == 200
        assert payload["seen"] >= 5
        assert len(payload["traces"]) == 3
        durations = [t["duration_s"] for t in payload["traces"]]
        assert durations == sorted(durations, reverse=True)
        top = payload["traces"][0]
        assert top["endpoint"].startswith("GET ")
        assert top["spans"] >= 1
        assert top["tree"][0]["path"] == "service.request"
        assert top["tree"][0]["depth"] == 0

    def test_ring_is_bounded(self):
        service = make_service(tracez_capacity=2)
        for _ in range(6):
            service.handle("GET", "/healthz")
        _, payload, _ = service.handle("GET", "/tracez?k=10")
        # The /tracez request itself is recorded after responding.
        assert payload["retained"] <= 2
        assert payload["seen"] >= 6

    def test_bad_k_is_400(self):
        service = make_service()
        assert service.handle("GET", "/tracez?k=zero")[0] == 400
        assert service.handle("GET", "/tracez?k=0")[0] == 400


class TestHTTPTelemetry:
    """Real loopback round trips for the transport-layer pieces: header
    pass-through/echo and the Prometheus text Content-Type branch."""

    def test_trace_header_and_prometheus_over_loopback(self):
        import urllib.request

        from repro.service import ServiceServer

        service = make_service()
        server = ServiceServer(service, port=0)
        server.start()
        try:
            base = server.url
            request = urllib.request.Request(
                f"{base}/healthz", headers={"X-Trace-Id": "http-trace-1"}
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
                assert response.headers["X-Trace-Id"] == "http-trace-1"

            with urllib.request.urlopen(
                f"{base}/metricz?format=prometheus", timeout=10
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
                text = response.read().decode("utf-8")
            assert "# TYPE repro_service_request_seconds histogram" in text
            assert "repro_service_requests_total" in text

            with urllib.request.urlopen(
                f"{base}/tracez?k=1", timeout=10
            ) as response:
                assert response.status == 200
                import json

                tracez = json.loads(response.read())
            assert tracez["traces"][0]["trace_id"]
        finally:
            server.stop(reason="test-shutdown")


class TestSlo:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(slo_target_seconds=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(tracez_capacity=0)

    def test_tracker_degrades_and_recovers(self):
        tracker = SloTracker(
            target_seconds=0.1, window=10, budget_fraction=0.2, min_samples=5
        )
        for _ in range(5):
            tracker.observe("GET /x", 0.5)  # 100% breach
        assert tracker.degraded_endpoints() == ["GET /x"]
        for _ in range(10):
            tracker.observe("GET /x", 0.01)  # window rolls clean
        assert tracker.degraded_endpoints() == []

    def test_verdict_needs_min_samples(self):
        tracker = SloTracker(target_seconds=0.1, min_samples=10)
        for _ in range(9):
            tracker.observe("GET /x", 9.9)
        assert tracker.degraded_endpoints() == []

    def test_healthz_degrades_on_breach(self):
        service = make_service(
            slo_target_seconds=1e-12,  # everything breaches
            slo_min_samples=3,
        )
        for _ in range(4):
            service.handle("GET", "/v1/counts")
        status, payload, _ = service.handle("GET", "/healthz")
        assert status == 503
        assert payload["status"] == "degraded"
        assert "GET /v1/counts" in payload["slo_breached_endpoints"]

    def test_healthz_ok_under_generous_target(self):
        service = make_service(slo_target_seconds=60.0, slo_min_samples=3)
        for _ in range(5):
            service.handle("GET", "/v1/counts")
        status, payload, _ = service.handle("GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_metricz_exposes_window_state(self):
        service = make_service(slo_target_seconds=60.0)
        service.handle("GET", "/v1/counts")
        _, payload, _ = service.handle("GET", "/metricz")
        slo = payload["slo"]
        assert slo["target_seconds"] == 60.0
        endpoint = slo["endpoints"]["GET /v1/counts"]
        assert endpoint["samples"] == 1
        assert endpoint["breaches"] == 0
        assert endpoint["degraded"] is False
