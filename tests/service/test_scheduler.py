"""Refresh-scheduler tests: triggers, publication, diffs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import AnalysisConfig, analyze
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.service.scheduler import RefreshScheduler


def tiny_state(extra_role: bool = False) -> RbacState:
    roles = ["r0", "r1"] + (["r2"] if extra_role else [])
    return RbacState.build(
        users=["u0", "u1"],
        roles=roles,
        permissions=["p0"],
        user_assignments=[("r0", "u0"), ("r1", "u1")],
        permission_assignments=[("r0", "p0")],
    )


class RecordingRunner:
    """A runner that analyses a swappable state and counts invocations."""

    def __init__(self) -> None:
        self.state = tiny_state()
        self.calls = 0
        self.seq = 0
        self.fail_next = False

    def __call__(self):
        self.calls += 1
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("runner exploded")
        self.seq += 1
        report = analyze(self.state, AnalysisConfig())
        return report, self.state.fingerprint(), self.seq


class TestConfiguration:
    def test_trigger_validation(self):
        with pytest.raises(ConfigurationError):
            RefreshScheduler(lambda: None, refresh_mutations=0)
        with pytest.raises(ConfigurationError):
            RefreshScheduler(lambda: None, refresh_seconds=0)

    def test_disabled_scheduler_never_starts(self):
        scheduler = RefreshScheduler(RecordingRunner())
        assert not scheduler.enabled
        scheduler.start()
        assert scheduler.stats()["enabled"] is False
        scheduler.stop()


class TestPublication:
    def test_run_once_publishes_without_a_diff(self):
        runner = RecordingRunner()
        scheduler = RefreshScheduler(runner, refresh_mutations=10)
        assert scheduler.latest() is None
        scheduler.run_once()
        latest = scheduler.latest()
        assert latest is not None
        assert latest["seq"] == 1
        assert latest["diff"] is None
        assert latest["fingerprint"] == runner.state.fingerprint()
        assert latest["counts"] == analyze(runner.state).counts()

    def test_second_run_publishes_a_diff(self):
        runner = RecordingRunner()
        scheduler = RefreshScheduler(runner, refresh_mutations=10)
        scheduler.run_once()
        runner.state = tiny_state(extra_role=True)
        scheduler.run_once()
        latest = scheduler.latest()
        assert latest["seq"] == 2
        assert latest["diff"] is not None

    def test_prime_installs_a_baseline(self):
        runner = RecordingRunner()
        scheduler = RefreshScheduler(runner, refresh_mutations=10)
        report, fingerprint, seq = runner()
        scheduler.prime(report, fingerprint, seq)
        latest = scheduler.latest()
        assert latest["seq"] == 1
        assert latest["diff"] is None
        # The primed report is the diff baseline of the next refresh.
        runner.state = tiny_state(extra_role=True)
        scheduler.run_once()
        assert scheduler.latest()["diff"] is not None

    def test_runner_errors_are_counted_not_fatal(self):
        runner = RecordingRunner()
        scheduler = RefreshScheduler(runner, refresh_mutations=10)
        runner.fail_next = True
        scheduler.run_once()
        assert scheduler.stats() == {
            "enabled": True,
            "runs": 0,
            "errors": 1,
            "pending_mutations": 0,
            "published_seq": 0,
        }
        scheduler.run_once()
        assert scheduler.stats()["runs"] == 1


def wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        threading.Event().wait(0.01)
    return False


class TestBackgroundTriggers:
    def test_mutation_count_trigger(self):
        runner = RecordingRunner()
        scheduler = RefreshScheduler(runner, refresh_mutations=3)
        scheduler.start()
        try:
            scheduler.notify_mutations(2)
            # Below the threshold and no timer: nothing should run.
            assert not wait_for(lambda: runner.calls > 0, timeout=0.2)
            scheduler.notify_mutations(1)
            assert wait_for(lambda: scheduler.stats()["runs"] == 1)
            assert scheduler.latest()["pending_mutations"] == 0
        finally:
            scheduler.stop()

    def test_timed_trigger_needs_pending_mutations(self):
        runner = RecordingRunner()
        scheduler = RefreshScheduler(runner, refresh_seconds=0.05)
        scheduler.start()
        try:
            # No pending mutations: the timer alone must not refresh.
            assert not wait_for(lambda: runner.calls > 0, timeout=0.25)
            scheduler.notify_mutations(1)
            assert wait_for(lambda: scheduler.stats()["runs"] == 1)
        finally:
            scheduler.stop()

    def test_stop_joins_the_thread(self):
        scheduler = RefreshScheduler(RecordingRunner(), refresh_mutations=1)
        scheduler.start()
        scheduler.stop()
        assert scheduler._thread is None
