"""Queue execution mode: job-plane endpoints and scheduler integration.

These tests drive ``AnalysisService.handle`` directly (no sockets) with
``execution="queue"``; workers are attached in-process via ``run_worker``
threads against the same queue file, exactly how ``repro work`` attaches
processes in production.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import AnalysisConfig, analyze
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.jobs import JobQueue, run_worker
from repro.service import AnalysisService, ServiceConfig


def sample_state() -> RbacState:
    return RbacState.build(
        users=[f"u{i}" for i in range(5)],
        roles=[f"r{i}" for i in range(4)],
        permissions=[f"p{i}" for i in range(5)],
        user_assignments=[
            ("r0", "u0"), ("r0", "u1"), ("r1", "u0"), ("r1", "u1"),
            ("r2", "u2"),
        ],
        permission_assignments=[
            ("r0", "p0"), ("r0", "p1"), ("r1", "p0"), ("r1", "p1"),
            ("r2", "p2"),
        ],
    )


def normalized(report_dict: dict) -> str:
    payload = dict(report_dict)
    for key in ("timings_seconds", "total_seconds", "metrics"):
        payload.pop(key, None)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture
def queue_service(tmp_path):
    service = AnalysisService(
        sample_state(),
        ServiceConfig(
            warm_start=False,
            refresh_mutations=None,
            execution="queue",
            jobs_path=tmp_path / "jobs.sqlite",
        ),
    )
    yield service
    service.close()


def drain_one_job(service: AnalysisService, timeout: float = 60.0) -> None:
    """Run one worker until it completes a single job (as a thread)."""
    done = threading.Event()

    def target() -> None:
        run_worker(
            str(service.jobs.queue.path),
            worker_id="test-worker",
            max_jobs=1,
            poll_seconds=0.01,
            idle_exit_seconds=timeout,
        )
        done.set()

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=timeout)
    assert done.is_set(), "worker did not finish a job in time"


class TestConfigValidation:
    def test_unknown_execution_rejected(self):
        with pytest.raises(ConfigurationError, match="execution"):
            ServiceConfig(execution="sidecar")

    def test_queue_mode_requires_jobs_path(self):
        with pytest.raises(ConfigurationError, match="jobs_path"):
            ServiceConfig(execution="queue")

    @pytest.mark.parametrize(
        "options",
        [
            {"job_lease_seconds": 0},
            {"job_max_attempts": 0},
            {"job_backoff_seconds": -1},
            {"job_reap_seconds": 0},
            {"job_refresh_timeout_seconds": 0},
        ],
    )
    def test_job_knobs_validated(self, tmp_path, options):
        with pytest.raises(ConfigurationError):
            ServiceConfig(
                execution="queue", jobs_path=tmp_path / "q.sqlite", **options
            )


class TestInlineModeGuards:
    def test_job_endpoints_require_queue_mode(self):
        service = AnalysisService(
            sample_state(),
            ServiceConfig(warm_start=False, refresh_mutations=None),
        )
        for route in ("/v1/jobs", "/v1/jobs/abc"):
            status, payload, _ = service.handle("GET", route)
            assert status == 400
            assert 'execution "queue"' in payload["error"]
        assert service.jobs is None
        service.close()


class TestQueuedAnalyze:
    def test_analyze_returns_202_and_poll_resolves_to_report(
        self, queue_service
    ):
        status, payload, _ = queue_service.handle("POST", "/v1/analyze")
        assert status == 202
        assert payload["state"] == "queued"
        assert payload["created"] is True
        job_id = payload["job_id"]
        assert payload["poll"] == f"/v1/jobs/{job_id}"

        status, pending, _ = queue_service.handle("GET", payload["poll"])
        assert status == 200
        assert pending["state"] == "queued"
        assert "result" not in pending

        drain_one_job(queue_service)

        status, finished, _ = queue_service.handle("GET", payload["poll"])
        assert status == 200
        assert finished["state"] == "done"
        assert finished["attempts"] == 1
        # The queued report is byte-identical to inline execution.
        inline = analyze(sample_state(), AnalysisConfig())
        assert normalized(finished["result"]["report"]) == normalized(
            inline.to_dict()
        )

    def test_repeat_analyze_deduplicates_to_the_same_job(self, queue_service):
        _, first, _ = queue_service.handle("POST", "/v1/analyze")
        status, second, _ = queue_service.handle("POST", "/v1/analyze")
        assert status == 202
        assert second["job_id"] == first["job_id"]
        assert second["created"] is False
        stats = queue_service.jobs.queue.stats()
        assert stats["states"]["queued"] == 1
        assert stats["counters"]["jobs.deduplicated"] == 1

    def test_different_config_is_a_different_job(self, queue_service):
        _, first, _ = queue_service.handle("POST", "/v1/analyze")
        body = json.dumps({"similarity_threshold": 2}).encode()
        _, second, _ = queue_service.handle("POST", "/v1/analyze", body)
        assert second["job_id"] != first["job_id"]
        assert second["created"] is True

    def test_trace_header_rides_into_the_job_record(self, queue_service):
        trace_id = "a" * 32
        _, payload, _ = queue_service.handle(
            "POST", "/v1/analyze", trace_id_header=trace_id
        )
        record = queue_service.jobs.queue.get(payload["job_id"])
        assert record.trace_id == trace_id

    def test_deadline_becomes_queue_visible_expiry(self, queue_service):
        _, payload, _ = queue_service.handle(
            "POST", "/v1/analyze", deadline_header="5"
        )
        record = queue_service.jobs.queue.get(payload["job_id"])
        assert record.expires_at is not None
        assert record.expires_at <= time.time() + 5.5


class TestJobEndpoints:
    def test_jobs_overview_reports_queue_stats(self, queue_service):
        queue_service.handle("POST", "/v1/analyze")
        status, payload, _ = queue_service.handle("GET", "/v1/jobs")
        assert status == 200
        assert payload["states"]["queued"] == 1
        assert payload["counters"]["jobs.enqueued"] == 1

    def test_unknown_job_404(self, queue_service):
        status, payload, _ = queue_service.handle("GET", "/v1/jobs/nope")
        assert status == 404
        assert "no such job" in payload["error"]

    def test_metricz_exposes_job_plane(self, queue_service):
        queue_service.handle("POST", "/v1/analyze")
        status, payload, _ = queue_service.handle("GET", "/metricz")
        assert status == 200
        assert payload["jobs"]["states"]["queued"] == 1
        status, text, _ = queue_service.handle(
            "GET", "/metricz?format=prometheus"
        )
        assert status == 200
        assert "repro_jobs_enqueued_total 1" in text
        assert "repro_jobs_state_queued 1" in text


class TestWarmRestartRecovery:
    def test_start_reaps_leases_of_a_dead_daemon(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        seed = JobQueue(path, lease_seconds=15.0)
        record, _ = seed.enqueue("sleep", {"seconds": 60})
        # A claim from the "previous life" whose lease is already over.
        seed.claim("dead-daemon:1", now=time.time() - 3600)
        seed.close()

        service = AnalysisService(
            sample_state(),
            ServiceConfig(
                warm_start=False,
                refresh_mutations=None,
                execution="queue",
                jobs_path=path,
            ),
        )
        try:
            service.start()
            revived = service.jobs.queue.get(record.job_id)
            assert revived.state == "queued"
            assert service.jobs.queue.counters()["jobs.lease_expired"] == 1
        finally:
            service.close()
