"""Wire-protocol tests: parsing, atomic validation, analyze overrides."""

from __future__ import annotations

import pytest

from repro.core.engine import AnalysisConfig
from repro.core.incremental import IncrementalAuditor
from repro.core.state import RbacState
from repro.service.protocol import (
    MUTATION_OPS,
    Mutation,
    ProtocolError,
    apply_batch,
    build_analysis_config,
    config_key,
    parse_mutation_batch,
    validate_batch,
)


def small_state() -> RbacState:
    return RbacState.build(
        users=["u0", "u1"],
        roles=["r0", "r1"],
        permissions=["p0", "p1"],
        user_assignments=[("r0", "u0")],
        permission_assignments=[("r0", "p0")],
    )


class TestParseMutationBatch:
    def test_valid_batch(self):
        batch = parse_mutation_batch(
            {
                "mutations": [
                    {"op": "add_user", "id": "alice"},
                    {"op": "assign_user", "role": "r0", "user": "alice"},
                ]
            }
        )
        assert batch == [
            Mutation("add_user", ("alice",)),
            Mutation("assign_user", ("r0", "alice")),
        ]

    def test_to_dict_round_trips(self):
        for op, fields in MUTATION_OPS.items():
            mutation = Mutation(op, tuple(f"v{i}" for i in range(len(fields))))
            assert parse_mutation_batch(
                {"mutations": [mutation.to_dict()]}
            ) == [mutation]

    @pytest.mark.parametrize(
        "document, fragment",
        [
            ([], "JSON object"),
            ({"mutations": "nope"}, '"mutations" array'),
            ({"mutations": [42]}, "mutation 0"),
            ({"mutations": [{"op": "explode"}]}, "unknown op"),
            ({"mutations": [{"op": "add_user"}]}, "requires a non-empty"),
            (
                {"mutations": [{"op": "add_user", "id": ""}]},
                "requires a non-empty",
            ),
            (
                {"mutations": [{"op": "assign_user", "role": "r0"}]},
                "'user'",
            ),
        ],
    )
    def test_shape_errors(self, document, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_mutation_batch(document)

    def test_error_carries_offending_index(self):
        with pytest.raises(ProtocolError, match="mutation 1"):
            parse_mutation_batch(
                {
                    "mutations": [
                        {"op": "add_user", "id": "ok"},
                        {"op": "bogus"},
                    ]
                }
            )


class TestValidateBatch:
    def test_accepts_referentially_valid_batch(self):
        validate_batch(
            small_state(),
            [
                Mutation("add_role", ("r2",)),
                Mutation("assign_user", ("r2", "u1")),
                Mutation("remove_role", ("r1",)),
            ],
        )

    def test_sees_additions_earlier_in_the_batch(self):
        validate_batch(
            small_state(),
            [
                Mutation("add_user", ("fresh",)),
                Mutation("assign_user", ("r0", "fresh")),
            ],
        )

    def test_sees_removals_earlier_in_the_batch(self):
        with pytest.raises(ProtocolError, match="mutation 1: unknown role"):
            validate_batch(
                small_state(),
                [
                    Mutation("remove_role", ("r0",)),
                    Mutation("assign_user", ("r0", "u0")),
                ],
            )

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            (Mutation("add_user", ("u0",)), "duplicate user"),
            (Mutation("remove_permission", ("ghost",)), "unknown permission"),
            (Mutation("assign_user", ("ghost", "u0")), "unknown role"),
            (Mutation("revoke_permission", ("r0", "ghost")), "unknown permission"),
        ],
    )
    def test_referential_errors(self, mutation, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            validate_batch(small_state(), [mutation])

    def test_validation_mutates_nothing(self):
        state = small_state()
        before = state.fingerprint()
        with pytest.raises(ProtocolError):
            validate_batch(
                state,
                [
                    Mutation("add_role", ("r2",)),
                    Mutation("assign_user", ("r2", "ghost")),
                ],
            )
        assert state.fingerprint() == before


class TestApplyBatch:
    def test_applies_through_the_auditor(self):
        auditor = IncrementalAuditor(small_state())
        batch = [
            Mutation("add_role", ("r2",)),
            Mutation("assign_user", ("r2", "u1")),
            Mutation("revoke_permission", ("r0", "p0")),
        ]
        validate_batch(auditor.state, batch)
        assert apply_batch(auditor, batch) == 3
        assert auditor.state.users_of_role("r2") == {"u1"}
        assert auditor.state.permissions_of_role("r0") == frozenset()


class TestBuildAnalysisConfig:
    def test_none_returns_base(self):
        base = AnalysisConfig(similarity_threshold=2)
        assert build_analysis_config(base, None) is base
        assert build_analysis_config(base, {}) is base

    def test_overrides_apply(self):
        base = AnalysisConfig()
        config = build_analysis_config(
            base, {"similarity_threshold": 3, "n_workers": 2}
        )
        assert config.similarity_threshold == 3
        assert config.n_workers == 2
        assert config.finder == base.finder

    def test_unknown_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown analyze option"):
            build_analysis_config(AnalysisConfig(), {"similarity": 2})

    def test_non_boolean_extensions_rejected(self):
        with pytest.raises(ProtocolError, match='"extensions" must be'):
            build_analysis_config(AnalysisConfig(), {"extensions": "yes"})

    def test_invalid_value_becomes_protocol_error(self):
        with pytest.raises(ProtocolError, match="invalid analyze options"):
            build_analysis_config(
                AnalysisConfig(), {"similarity_threshold": 0}
            )

    def test_kernel_override_applies(self):
        config = build_analysis_config(AnalysisConfig(), {"kernel": "bits"})
        assert config.kernel == "bits"

    def test_invalid_kernel_becomes_protocol_error(self):
        with pytest.raises(ProtocolError, match="invalid analyze options"):
            build_analysis_config(AnalysisConfig(), {"kernel": "gpu"})

    def test_extensions_toggle_enabled_types(self):
        from repro.core.engine import ALL_TYPES, EXTENSION_TYPES

        on = build_analysis_config(AnalysisConfig(), {"extensions": True})
        off = build_analysis_config(AnalysisConfig(), {"extensions": False})
        assert on.enabled_types == ALL_TYPES + EXTENSION_TYPES
        assert off.enabled_types == ALL_TYPES


class TestConfigKey:
    def test_execution_knobs_do_not_change_the_key(self):
        base = AnalysisConfig()
        tuned = AnalysisConfig(n_workers=4, block_rows=64, kernel="bits")
        assert config_key(base) == config_key(tuned)

    def test_result_affecting_knobs_change_the_key(self):
        assert config_key(AnalysisConfig()) != config_key(
            AnalysisConfig(similarity_threshold=2)
        )

    def test_key_is_deterministic(self):
        assert config_key(AnalysisConfig()) == config_key(AnalysisConfig())
