"""Report-cache tests: LRU bounds, single-flight coalescing, deadlines."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.service.cache import ReportCache
from repro.service.protocol import DeadlineExceeded


class TestBasics:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ReportCache(capacity=0)

    def test_miss_then_hit(self):
        cache = ReportCache()
        calls = []
        value, source = cache.get_or_compute("k", lambda: calls.append(1) or 7)
        assert (value, source) == (7, "miss")
        value, source = cache.get_or_compute("k", lambda: calls.append(1) or 8)
        assert (value, source) == (7, "hit")
        assert calls == [1]
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_lru_eviction_drops_the_oldest(self):
        cache = ReportCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda k=key: k.upper())
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # "a" was evicted, "b" and "c" survive.
        assert cache.get_or_compute("b", lambda: "fresh")[1] == "hit"
        assert cache.get_or_compute("c", lambda: "fresh")[1] == "hit"
        assert cache.get_or_compute("a", lambda: "recomputed") == (
            "recomputed",
            "miss",
        )

    def test_hit_refreshes_recency(self):
        cache = ReportCache(capacity=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # touch "a": "b" is now oldest
        cache.get_or_compute("c", lambda: 3)
        assert cache.get_or_compute("a", lambda: 0)[1] == "hit"
        assert cache.get_or_compute("b", lambda: 9)[1] == "miss"

    def test_invalidate_drops_everything(self):
        cache = ReportCache()
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        assert cache.invalidate() == 2
        assert cache.stats()["entries"] == 0
        assert cache.get_or_compute("a", lambda: 3) == (3, "miss")


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_computation(self):
        cache = ReportCache()
        release = threading.Event()
        compute_calls = []

        def compute():
            compute_calls.append(1)
            assert release.wait(5)
            return "result"

        results = []

        def request():
            results.append(cache.get_or_compute("k", compute, timeout=5))

        threads = [threading.Thread(target=request) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Wait until all four are parked on the same in-flight computation.
        for _ in range(500):
            if cache.stats()["coalesced"] == 3:
                break
            threading.Event().wait(0.01)
        assert cache.stats()["in_flight"] == 1
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert compute_calls == [1]
        assert sorted(source for _, source in results) == [
            "coalesced",
            "coalesced",
            "coalesced",
            "miss",
        ]
        assert all(value == "result" for value, _ in results)

    def test_error_propagates_to_waiters_and_is_not_cached(self):
        cache = ReportCache()

        def explode():
            raise ValueError("bad analysis")

        with pytest.raises(ValueError, match="bad analysis"):
            cache.get_or_compute("k", explode)
        assert cache.stats()["entries"] == 0
        # The key is retryable: next request recomputes.
        assert cache.get_or_compute("k", lambda: "ok") == ("ok", "miss")


class TestDeadlines:
    def test_deadline_abandons_the_wait_not_the_computation(self):
        cache = ReportCache()
        release = threading.Event()

        def slow():
            assert release.wait(5)
            return "late but cached"

        with pytest.raises(DeadlineExceeded):
            cache.get_or_compute("k", slow, timeout=0.05)
        assert cache.stats()["deadline_abandons"] == 1
        # The abandoned computation still completes into the cache.
        release.set()
        for _ in range(500):
            if cache.stats()["entries"] == 1:
                break
            threading.Event().wait(0.01)
        assert cache.get_or_compute("k", lambda: "unused") == (
            "late but cached",
            "hit",
        )
