"""AnalysisService + ServiceServer tests.

Most tests drive ``AnalysisService.handle`` directly (no sockets), which
is the transport-independent seam; one class exercises the real HTTP
binding end-to-end over a loopback socket.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import AnalysisConfig, analyze
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.service import AnalysisService, ServiceConfig, ServiceServer


def sample_state() -> RbacState:
    return RbacState.build(
        users=[f"u{i}" for i in range(5)],
        roles=[f"r{i}" for i in range(4)],
        permissions=[f"p{i}" for i in range(5)],
        user_assignments=[
            ("r0", "u0"), ("r0", "u1"), ("r1", "u0"), ("r1", "u1"),
            ("r2", "u2"),
        ],
        permission_assignments=[
            ("r0", "p0"), ("r0", "p1"), ("r1", "p0"), ("r1", "p1"),
            ("r2", "p2"),
        ],
    )


def make_service(**overrides) -> AnalysisService:
    options = dict(warm_start=False, refresh_mutations=None)
    options.update(overrides)
    return AnalysisService(sample_state(), ServiceConfig(**options))


def post_mutations(service: AnalysisService, mutations) -> tuple:
    body = json.dumps({"mutations": mutations}).encode()
    return service.handle("POST", "/v1/mutations", body)


def wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        threading.Event().wait(0.01)
    return False


class TestServiceConfig:
    @pytest.mark.parametrize(
        "options",
        [
            {"queue_limit": 0},
            {"deadline_seconds": 0},
            {"retry_after_seconds": -1},
        ],
    )
    def test_validation(self, options):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**options)


class TestRouting:
    def test_unknown_route_404(self):
        status, payload, _ = make_service().handle("GET", "/nope")
        assert status == 404
        assert "no such endpoint" in payload["error"]

    def test_unknown_v1_route_404(self):
        status, payload, _ = make_service().handle("GET", "/v1/nope")
        assert status == 404

    def test_method_not_allowed_sets_allow_header(self):
        service = make_service()
        status, _, headers = service.handle("POST", "/v1/counts")
        assert status == 405
        assert headers["Allow"] == "GET"
        status, _, headers = service.handle("GET", "/v1/analyze")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_query_strings_are_ignored_for_routing(self):
        status, _, _ = make_service().handle("GET", "/v1/counts?verbose=1")
        assert status == 200

    def test_bad_json_body_400(self):
        status, payload, _ = make_service().handle(
            "POST", "/v1/mutations", b"{broken"
        )
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_bad_deadline_header_400(self):
        status, payload, _ = make_service().handle(
            "GET", "/v1/counts", deadline_header="soon"
        )
        assert status == 400
        assert "X-Deadline" in payload["error"]

    def test_internal_errors_become_500(self, monkeypatch):
        service = make_service()
        monkeypatch.setattr(
            service._auditor,
            "counts",
            lambda: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        status, payload, _ = service.handle("GET", "/v1/counts")
        assert status == 500
        assert "RuntimeError" in payload["error"]


class TestMutationsAndCounts:
    def test_counts_match_batch_analysis_after_a_mutation_stream(self):
        service = make_service()
        batches = [
            [
                {"op": "add_user", "id": "new-user"},
                {"op": "assign_user", "role": "r3", "user": "new-user"},
            ],
            [
                {"op": "add_role", "id": "r-clone"},
                {"op": "assign_user", "role": "r-clone", "user": "u0"},
                {"op": "assign_user", "role": "r-clone", "user": "u1"},
                {"op": "assign_permission", "role": "r-clone", "permission": "p0"},
            ],
            [
                {"op": "remove_role", "id": "r2"},
                {"op": "revoke_user", "role": "r0", "user": "u1"},
            ],
            [
                {"op": "add_role", "id": "r2"},
                {"op": "assign_permission", "role": "r2", "permission": "p4"},
            ],
        ]
        applied_total = 0
        for batch in batches:
            status, payload, _ = post_mutations(service, batch)
            assert status == 200
            assert payload["applied"] == len(batch)
            applied_total += len(batch)
            status, counts_payload, _ = service.handle("GET", "/v1/counts")
            assert status == 200
            expected = analyze(
                service.state, service.config.analysis
            ).counts()
            assert counts_payload["counts"] == expected
        assert service.mutation_seq == applied_total

    def test_rejected_batch_is_atomic(self):
        service = make_service()
        before = service.state.fingerprint()
        seq_before = service.mutation_seq
        status, payload, _ = post_mutations(
            service,
            [
                {"op": "add_user", "id": "will-not-survive"},
                {"op": "assign_user", "role": "ghost-role", "user": "u0"},
            ],
        )
        assert status == 400
        assert "ghost-role" in payload["error"]
        assert service.state.fingerprint() == before
        assert service.mutation_seq == seq_before

    def test_mutation_changes_the_fingerprint_and_cache_key(self):
        service = make_service()
        status, first, _ = service.handle("POST", "/v1/analyze")
        assert status == 200 and first["cache"] == "miss"
        post_mutations(service, [{"op": "add_user", "id": "x"}])
        status, second, _ = service.handle("POST", "/v1/analyze")
        assert status == 200 and second["cache"] == "miss"
        assert first["fingerprint"] != second["fingerprint"]


class TestAnalyzeCaching:
    def test_repeat_analyze_hits_the_cache(self):
        service = make_service()
        status, first, _ = service.handle("POST", "/v1/analyze")
        assert status == 200
        assert first["cache"] == "miss"
        status, second, _ = service.handle("POST", "/v1/analyze")
        assert status == 200
        assert second["cache"] == "hit"
        assert second["report"] == first["report"]
        _, metrics, _ = service.handle("GET", "/metricz")
        assert metrics["counters"]["service.analyze_hit"] > 0
        assert metrics["cache"]["hits"] > 0

    def test_execution_knob_overrides_share_a_cache_entry(self):
        service = make_service()
        service.handle("POST", "/v1/analyze")
        status, payload, _ = service.handle(
            "POST", "/v1/analyze", json.dumps({"n_workers": 2}).encode()
        )
        assert status == 200
        assert payload["cache"] == "hit"

    def test_result_affecting_overrides_do_not(self):
        service = make_service()
        service.handle("POST", "/v1/analyze")
        status, payload, _ = service.handle(
            "POST",
            "/v1/analyze",
            json.dumps({"similarity_threshold": 2}).encode(),
        )
        assert status == 200
        assert payload["cache"] == "miss"

    def test_unknown_override_400(self):
        status, payload, _ = make_service().handle(
            "POST", "/v1/analyze", json.dumps({"typo": 1}).encode()
        )
        assert status == 400
        assert "unknown analyze option" in payload["error"]

    def test_warm_start_primes_cache_and_scheduler(self):
        service = make_service(warm_start=True)
        service.start()
        status, payload, _ = service.handle("POST", "/v1/analyze")
        assert status == 200
        assert payload["cache"] == "hit"
        status, latest, _ = service.handle("GET", "/v1/reports/latest")
        assert status == 200
        assert latest["seq"] == 1
        assert latest["diff"] is None
        service.close()

    def test_latest_report_404_before_any_publication(self):
        status, _, _ = make_service().handle("GET", "/v1/reports/latest")
        assert status == 404


class TestDeadlines:
    def test_slow_analysis_times_out_cleanly(self, monkeypatch):
        service = make_service()
        release = threading.Event()
        real_analyze = analyze

        def gated_analyze(state, config=None, recorder=None):
            assert release.wait(5)
            return real_analyze(state, config, recorder)

        monkeypatch.setattr("repro.service.server.analyze", gated_analyze)
        status, payload, _ = service.handle(
            "POST", "/v1/analyze", deadline_header="0.05"
        )
        assert status == 504
        assert "deadline" in payload["error"]
        # The abandoned computation still lands in the cache...
        release.set()
        assert wait_for(lambda: service.cache.stats()["entries"] == 1)
        # ...and serves the retry (gate still patched: a hit needs no compute).
        status, payload, _ = service.handle("POST", "/v1/analyze")
        assert status == 200
        assert payload["cache"] == "hit"
        _, metrics, _ = service.handle("GET", "/metricz")
        assert metrics["counters"]["service.http_504"] == 1
        assert metrics["cache"]["deadline_abandons"] == 1


class TestBackpressure:
    def test_saturated_queue_rejects_without_corrupting_in_flight(
        self, monkeypatch
    ):
        service = make_service(queue_limit=1)
        release = threading.Event()
        real_analyze = analyze

        def gated_analyze(state, config=None, recorder=None):
            assert release.wait(5)
            return real_analyze(state, config, recorder)

        monkeypatch.setattr("repro.service.server.analyze", gated_analyze)
        in_flight_result = []

        def occupant():
            in_flight_result.append(service.handle("POST", "/v1/analyze"))

        thread = threading.Thread(target=occupant)
        thread.start()
        try:
            # /metricz bypasses the queue, so it can watch saturation.
            assert wait_for(
                lambda: service.handle("GET", "/metricz")[1]["queue"][
                    "in_flight"
                ]
                == 1
            )
            status, payload, headers = service.handle("GET", "/v1/counts")
            assert status == 429
            assert "queue is full" in payload["error"]
            assert headers["Retry-After"] == str(
                service.config.retry_after_seconds
            )
        finally:
            release.set()
            thread.join(timeout=5)
        # The rejected request did not corrupt the in-flight one.
        status, payload, _ = in_flight_result[0]
        assert status == 200
        assert payload["cache"] == "miss"
        assert payload["report"]["counts"] == analyze(
            service.state, service.config.analysis
        ).counts()
        _, metrics, _ = service.handle("GET", "/metricz")
        assert metrics["counters"]["service.http_429"] == 1
        assert metrics["queue"]["rejected"] == 1
        assert metrics["queue"]["in_flight"] == 0

    def test_healthz_and_metricz_bypass_the_queue(self):
        service = make_service(queue_limit=1)
        assert service._queue.acquire(blocking=False)
        try:
            assert service.handle("GET", "/healthz")[0] == 200
            assert service.handle("GET", "/metricz")[0] == 200
            assert service.handle("GET", "/v1/counts")[0] == 429
        finally:
            service._queue.release()
        assert service.handle("GET", "/v1/counts")[0] == 200


class TestDrainAndSnapshot:
    def test_draining_rejects_new_work(self):
        service = make_service()
        service.begin_drain()
        status, payload, headers = service.handle("GET", "/v1/counts")
        assert status == 503
        assert headers["Connection"] == "close"
        status, payload, headers = service.handle("GET", "/healthz")
        assert status == 503
        assert payload["status"] == "draining"

    def test_drain_snapshot_enables_warm_restart(self, tmp_path):
        snapshot = tmp_path / "snap.json"
        service = make_service(snapshot_path=snapshot)
        post_mutations(
            service,
            [
                {"op": "add_user", "id": "persisted"},
                {"op": "assign_user", "role": "r0", "user": "persisted"},
            ],
        )
        fingerprint = service.state.fingerprint()
        seq = service.mutation_seq
        service.begin_drain()
        service.close(drain_reason="test-drain")
        assert snapshot.is_file()

        restarted = AnalysisService(
            config=ServiceConfig(
                warm_start=False,
                refresh_mutations=None,
                snapshot_path=snapshot,
            )
        )
        assert restarted.restored_from_snapshot
        assert restarted.mutation_seq == seq
        assert restarted.state.fingerprint() == fingerprint
        status, payload, _ = restarted.handle("GET", "/healthz")
        assert status == 200
        assert payload["restored_from_snapshot"] is True
        assert payload["mutation_seq"] == seq
        status, counts_payload, _ = restarted.handle("GET", "/v1/counts")
        assert counts_payload["counts"] == analyze(
            restarted.state, restarted.config.analysis
        ).counts()

    def test_close_without_snapshot_path_is_fine(self):
        service = make_service()
        service.close()


class TestWarmPool:
    """Lifecycle of the service-held scan-worker pool."""

    def test_no_pool_for_serial_scans(self):
        service = make_service()
        service.start()
        assert service._pool is None
        service.close()

    def test_pool_created_when_scans_fan_out(self):
        service = make_service(
            analysis=AnalysisConfig(finder_options={"n_workers": 2})
        )
        service.start()
        assert service._pool is not None
        assert service._pool.n_workers == 2
        pool = service._pool
        service.close()
        assert pool.closed
        assert service._pool is None

    def test_analyze_runs_with_warm_pool(self):
        service = make_service(
            analysis=AnalysisConfig(
                finder_options={"n_workers": 2, "block_rows": 2}
            )
        )
        service.start()
        try:
            status, payload, _ = service.handle("POST", "/v1/analyze", b"{}")
            assert status == 200
            assert payload["report"]["counts"] == analyze(
                service.state, service.config.analysis
            ).counts()
            # A kernel override is an execution knob: same cache entry.
            status, payload, _ = service.handle(
                "POST", "/v1/analyze", json.dumps({"kernel": "bits"}).encode()
            )
            assert status == 200
            assert payload["cache"] == "hit"
        finally:
            service.close()

    def test_drain_close_unlinks_adopted_segments(self):
        # The SIGTERM-drain cleanup guarantee: segments an interrupted
        # scan left in the pool registry are unlinked with the pool.
        import numpy as np

        from repro.parallel import publish

        service = make_service(
            analysis=AnalysisConfig(finder_options={"n_workers": 2})
        )
        service.start()
        handle = service._pool.adopt_segment(publish({"a": np.arange(4)}))
        service.begin_drain()
        service.close(drain_reason="test-drain")
        # Re-attaching by name must fail: the segment is gone.
        from repro.parallel.shm import _attach_untracked

        with pytest.raises(FileNotFoundError):
            _attach_untracked(handle.name)


class TestHTTPBinding:
    """One real loopback round trip through ThreadingHTTPServer."""

    def request(self, url, method="GET", body=None, headers=None):
        request = urllib.request.Request(
            url, data=body, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read()), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def test_end_to_end_over_loopback(self, tmp_path):
        snapshot = tmp_path / "snap.json"
        service = make_service(snapshot_path=snapshot, warm_start=True)
        server = ServiceServer(service, port=0)
        server.start()
        try:
            base = server.url
            status, payload, _ = self.request(f"{base}/healthz")
            assert status == 200 and payload["status"] == "ok"

            body = json.dumps(
                {
                    "mutations": [
                        {"op": "add_user", "id": "via-http"},
                        {"op": "assign_user", "role": "r1", "user": "via-http"},
                    ]
                }
            ).encode()
            status, payload, _ = self.request(
                f"{base}/v1/mutations", method="POST", body=body
            )
            assert status == 200 and payload["applied"] == 2

            status, counts_payload, _ = self.request(f"{base}/v1/counts")
            assert status == 200
            assert counts_payload["counts"] == analyze(
                service.state, service.config.analysis
            ).counts()

            status, analyze_payload, _ = self.request(
                f"{base}/v1/analyze", method="POST", body=b""
            )
            assert status == 200
            status, again, _ = self.request(
                f"{base}/v1/analyze", method="POST", body=b""
            )
            assert status == 200 and again["cache"] == "hit"

            status, payload, headers = self.request(f"{base}/v1/nothing")
            assert status == 404
        finally:
            server.stop(reason="test-shutdown")
        assert snapshot.is_file()
        meta = json.loads(snapshot.read_text())["meta"]
        assert meta["extra"]["reason"] == "test-shutdown"
        assert meta["mutation_seq"] == service.mutation_seq
