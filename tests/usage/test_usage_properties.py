"""Property-based tests for the usage analysis."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import RbacState
from repro.usage import AccessLog, UsageAnalysis, generate_access_log

USERS = [f"u{i}" for i in range(5)]
ROLES = [f"r{i}" for i in range(5)]
PERMISSIONS = [f"p{i}" for i in range(5)]


@st.composite
def populated_states(draw) -> RbacState:
    state = RbacState.build(
        users=USERS, roles=ROLES, permissions=PERMISSIONS
    )
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        state.assign_user(
            draw(st.sampled_from(ROLES)), draw(st.sampled_from(USERS))
        )
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        state.assign_permission(
            draw(st.sampled_from(ROLES)), draw(st.sampled_from(PERMISSIONS))
        )
    return state


@st.composite
def logs(draw) -> AccessLog:
    log = AccessLog()
    for _ in range(draw(st.integers(min_value=0, max_value=20))):
        log.record(
            draw(st.sampled_from(USERS)),
            draw(st.sampled_from(PERMISSIONS)),
            timestamp=draw(
                st.floats(min_value=0, max_value=100, allow_nan=False)
            ),
        )
    return log


class TestMonotonicity:
    @given(populated_states(), logs(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_more_events_never_increase_dormancy(self, state, log, data):
        before = UsageAnalysis(state, log)
        extended = AccessLog(list(log))
        extra_user = data.draw(st.sampled_from(USERS))
        extra_permission = data.draw(st.sampled_from(PERMISSIONS))
        extended.record(extra_user, extra_permission)
        after = UsageAnalysis(state, extended)
        assert set(after.dormant_memberships) <= set(
            before.dormant_memberships
        )
        assert set(after.dormant_roles) <= set(before.dormant_roles)
        assert set(after.unused_grants) <= set(before.unused_grants)


class TestConsistency:
    @given(populated_states(), logs())
    @settings(max_examples=50, deadline=None)
    def test_dormant_roles_have_all_memberships_dormant(self, state, log):
        analysis = UsageAnalysis(state, log)
        dormant_pairs = set(analysis.dormant_memberships)
        for role_id in analysis.dormant_roles:
            for user_id in state.users_of_role(role_id):
                assert (role_id, user_id) in dormant_pairs

    @given(populated_states(), logs())
    @settings(max_examples=50, deadline=None)
    def test_flagged_items_reference_real_assignments(self, state, log):
        analysis = UsageAnalysis(state, log)
        for role_id, user_id in analysis.dormant_memberships:
            assert user_id in state.users_of_role(role_id)
        for role_id, permission_id in analysis.unused_grants:
            assert permission_id in state.permissions_of_role(role_id)

    @given(populated_states())
    @settings(max_examples=30, deadline=None)
    def test_full_exercise_leaves_nothing_dormant(self, state):
        log = generate_access_log(state, exercise_rate=1.0, seed=0)
        analysis = UsageAnalysis(state, log)
        # memberships through roles that actually grant something are
        # exercised; memberships on permissionless roles stay dormant.
        for role_id, _user in analysis.dormant_memberships:
            assert state.permissions_of_role(role_id) == frozenset()
        assert analysis.unknown_event_pairs == []

    @given(populated_states(), logs())
    @settings(max_examples=40, deadline=None)
    def test_summary_counts_match_lists(self, state, log):
        analysis = UsageAnalysis(state, log)
        summary = analysis.summary()
        assert summary.n_dormant_memberships == len(
            analysis.dormant_memberships
        )
        assert summary.n_unused_grants == len(analysis.unused_grants)
        assert summary.n_dormant_roles == len(analysis.dormant_roles)
