"""Unit tests for dormancy analysis."""

from __future__ import annotations

import pytest

from repro.core.state import RbacState
from repro.usage import AccessLog, UsageAnalysis, generate_access_log


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["active", "idle"],
        roles=["used-role", "dead-role"],
        permissions=["p-used", "p-never"],
        user_assignments=[
            ("used-role", "active"),
            ("used-role", "idle"),
            ("dead-role", "idle"),
        ],
        permission_assignments=[
            ("used-role", "p-used"),
            ("dead-role", "p-never"),
        ],
    )


class TestDormancy:
    def test_everything_dormant_on_empty_log(self, state):
        analysis = UsageAnalysis(state, AccessLog())
        assert set(analysis.dormant_roles) == {"used-role", "dead-role"}
        assert len(analysis.dormant_memberships) == 3
        assert len(analysis.unused_grants) == 2

    def test_single_use_wakes_membership_and_grant(self, state):
        log = AccessLog()
        log.record("active", "p-used")
        analysis = UsageAnalysis(state, log)
        assert ("used-role", "active") not in analysis.dormant_memberships
        assert ("used-role", "idle") in analysis.dormant_memberships
        assert ("used-role", "p-used") not in analysis.unused_grants
        assert analysis.dormant_roles == ["dead-role"]

    def test_benefit_of_the_doubt_attribution(self):
        """A permission granted through two roles wakes both memberships
        when used — no arbitrary attribution."""
        state = RbacState.build(
            users=["u"],
            roles=["a", "b"],
            permissions=["p"],
            user_assignments=[("a", "u"), ("b", "u")],
            permission_assignments=[("a", "p"), ("b", "p")],
        )
        log = AccessLog()
        log.record("u", "p")
        analysis = UsageAnalysis(state, log)
        assert analysis.dormant_memberships == []
        assert analysis.dormant_roles == []

    def test_unknown_event_pairs_surfaced(self, state):
        log = AccessLog()
        log.record("active", "p-never")  # not granted to 'active'
        log.record("ghost", "p-used")  # unknown user
        analysis = UsageAnalysis(state, log)
        assert ("active", "p-never") in analysis.unknown_event_pairs
        assert ("ghost", "p-used") in analysis.unknown_event_pairs
        assert analysis.summary().n_unknown_event_pairs == 2

    def test_roles_without_members_never_dormant(self):
        """An empty role is a type-2 finding for the main detectors, not
        a usage question."""
        state = RbacState.build(
            roles=["empty"], permissions=["p"],
            permission_assignments=[("empty", "p")],
        )
        analysis = UsageAnalysis(state, AccessLog())
        assert analysis.dormant_roles == []
        assert analysis.unused_grants == [("empty", "p")]


class TestSummaryAndText:
    def test_summary_counts(self, state):
        log = AccessLog()
        log.record("active", "p-used")
        summary = UsageAnalysis(state, log).summary()
        assert summary.n_events == 1
        assert summary.n_memberships == 3
        assert summary.n_dormant_memberships == 2
        assert summary.n_grants == 2
        assert summary.n_unused_grants == 1
        assert summary.n_dormant_roles == 1

    def test_to_text(self, state):
        text = UsageAnalysis(state, AccessLog()).to_text()
        assert "dormant memberships:    3 of 3" in text
        assert "dead-role" in text

    def test_summary_serialisable(self, state):
        import json

        json.dumps(UsageAnalysis(state, AccessLog()).summary().to_dict())


class TestEndToEnd:
    def test_generated_log_round_trip(self):
        from repro.datagen import DepartmentProfile, generate_departmental_org

        state = generate_departmental_org(DepartmentProfile(seed=8))
        log = generate_access_log(state, exercise_rate=1.0, seed=8)
        analysis = UsageAnalysis(state, log)
        # full exercise: nothing with members/grants can be dormant
        assert analysis.dormant_roles == []
        assert analysis.dormant_memberships == []
        assert analysis.unknown_event_pairs == []

    def test_partial_exercise_flags_something(self):
        from repro.datagen import DepartmentProfile, generate_departmental_org

        state = generate_departmental_org(DepartmentProfile(seed=8))
        log = generate_access_log(state, exercise_rate=0.3, seed=8)
        analysis = UsageAnalysis(state, log)
        assert len(analysis.dormant_memberships) > 0
        assert len(analysis.unused_grants) > 0
