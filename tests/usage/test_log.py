"""Unit tests for access logs and the synthetic generator."""

from __future__ import annotations

import pytest

from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.usage import AccessLog, generate_access_log


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2"],
        roles=["r1"],
        permissions=["p1", "p2"],
        user_assignments=[("r1", "u1"), ("r1", "u2")],
        permission_assignments=[("r1", "p1"), ("r1", "p2")],
    )


class TestAccessLog:
    def test_record_and_iterate(self):
        log = AccessLog()
        log.record("u1", "p1", timestamp=5.0)
        log.record("u1", "p1", timestamp=9.0)
        assert len(log) == 2
        assert log.used_pairs() == {("u1", "p1")}
        assert log.users() == {"u1"}
        assert log.permissions() == {"p1"}

    def test_window(self):
        log = AccessLog()
        for t in (1.0, 5.0, 9.0):
            log.record("u1", "p1", timestamp=t)
        windowed = log.window(2.0, 9.0)
        assert len(windowed) == 1
        assert next(iter(windowed)).timestamp == 5.0

    def test_window_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            AccessLog().window(5.0, 1.0)

    def test_empty_log(self):
        log = AccessLog()
        assert len(log) == 0
        assert log.used_pairs() == frozenset()


class TestGenerator:
    def test_full_exercise_covers_every_pair(self, state):
        log = generate_access_log(state, exercise_rate=1.0, seed=1)
        assert log.used_pairs() == {
            ("u1", "p1"), ("u1", "p2"), ("u2", "p1"), ("u2", "p2"),
        }

    def test_zero_exercise_is_empty(self, state):
        assert len(generate_access_log(state, exercise_rate=0.0)) == 0

    def test_events_only_within_granted_access(self, state):
        log = generate_access_log(state, exercise_rate=0.5, seed=3)
        for event in log:
            assert event.permission_id in state.effective_permissions(
                event.user_id
            )

    def test_timestamps_within_duration(self, state):
        log = generate_access_log(state, duration=100.0, seed=4)
        assert all(0.0 <= e.timestamp < 100.0 for e in log)

    def test_deterministic(self, state):
        a = list(generate_access_log(state, seed=7))
        b = list(generate_access_log(state, seed=7))
        assert a == b

    def test_parameters_validated(self, state):
        with pytest.raises(ConfigurationError):
            generate_access_log(state, exercise_rate=1.5)
        with pytest.raises(ConfigurationError):
            generate_access_log(state, events_per_pair=0)


class TestCsvRoundTrip:
    def test_round_trip(self, state, tmp_path):
        from repro.usage import load_access_log_csv, save_access_log_csv

        log = generate_access_log(state, exercise_rate=1.0, seed=5)
        path = tmp_path / "log.csv"
        save_access_log_csv(log, path)
        restored = load_access_log_csv(path)
        assert list(restored) == list(log)

    def test_two_column_import(self, tmp_path):
        from repro.usage import load_access_log_csv

        path = tmp_path / "log.csv"
        path.write_text("user_id,permission_id\nu1,p1\nu2,p2\n")
        log = load_access_log_csv(path)
        assert len(log) == 2
        assert all(e.timestamp == 0.0 for e in log)

    def test_bad_header_rejected(self, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.usage import load_access_log_csv

        path = tmp_path / "log.csv"
        path.write_text("who,what\nu1,p1\n")
        with pytest.raises(DataFormatError, match="header"):
            load_access_log_csv(path)

    def test_bad_timestamp_rejected(self, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.usage import load_access_log_csv

        path = tmp_path / "log.csv"
        path.write_text("user_id,permission_id,timestamp\nu1,p1,yesterday\n")
        with pytest.raises(DataFormatError, match="bad timestamp"):
            load_access_log_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.usage import load_access_log_csv

        path = tmp_path / "log.csv"
        path.write_text("")
        with pytest.raises(DataFormatError, match="empty"):
            load_access_log_csv(path)
