"""Tests for the typed metric registry and mergeable histograms."""

from __future__ import annotations

import math
import random
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_bound,
)


class TestBucketBound:
    def test_non_positive_values_share_the_zero_bucket(self):
        assert bucket_bound(0.0) == 0.0
        assert bucket_bound(-3.5) == 0.0

    def test_exact_powers_of_two_are_their_own_bound(self):
        for value in (0.25, 0.5, 1.0, 2.0, 1024.0, 2.0**-20):
            assert bucket_bound(value) == value

    def test_rounds_up_to_next_power_of_two(self):
        assert bucket_bound(3.0) == 4.0
        assert bucket_bound(0.3) == 0.5
        assert bucket_bound(1.0000001) == 2.0

    def test_bound_always_contains_the_value(self):
        rng = random.Random(7)
        for _ in range(1000):
            value = rng.random() * 10 ** rng.randint(-9, 9)
            bound = bucket_bound(value)
            assert bound >= value
            assert bound / 2 < value  # tight: previous bucket excludes it


class TestCounterGauge:
    def test_counter_accumulates_and_rejects_decrease(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_empty_summary(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["max"] is None
        assert summary["buckets"] == []

    def test_single_observation_quantiles_are_exact(self):
        hist = Histogram("h")
        hist.record(0.3)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.3)

    def test_count_sum_min_max_exact(self):
        hist = Histogram("h")
        for value in (1.0, 3.0, 0.5, 7.0):
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(11.5)
        assert summary["min"] == 0.5 and summary["max"] == 7.0

    def test_quantiles_are_monotone_and_clamped(self):
        hist = Histogram("h")
        rng = random.Random(3)
        values = [rng.expovariate(10.0) for _ in range(500)]
        for value in values:
            hist.record(value)
        p50, p90, p99 = (hist.quantile(q) for q in (0.5, 0.9, 0.99))
        assert min(values) <= p50 <= p90 <= p99 <= max(values)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("h").quantile(1.5)

    def test_merge_equals_single_recorder(self):
        """The parity guarantee: fragments merged in any order produce
        exactly the histogram one recorder would have built."""
        rng = random.Random(11)
        values = [rng.random() * 8 for _ in range(300)]
        serial = Histogram("h")
        for value in values:
            serial.record(value)

        fragments = [Histogram("h") for _ in range(4)]
        for index, value in enumerate(values):
            fragments[index % 4].record(value)
        rng.shuffle(fragments)
        merged = Histogram("h")
        for fragment in fragments:
            merged.merge(fragment)

        merged_dict, serial_dict = merged.to_dict(), serial.to_dict()
        # sum is float addition in fragment order: identical up to
        # associativity; everything else is exact.
        assert merged_dict.pop("sum") == pytest.approx(
            serial_dict.pop("sum"), rel=1e-12
        )
        assert merged_dict == serial_dict
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == serial.quantile(q)

    def test_merge_dict_from_empty_payload_is_noop(self):
        hist = Histogram("h")
        hist.record(2.0)
        before = hist.to_dict()
        hist.merge_dict({"count": 0, "sum": 0.0, "min": None, "max": None,
                         "buckets": []})
        assert hist.to_dict() == before

    def test_cumulative_buckets_end_with_inf_total(self):
        hist = Histogram("h")
        for value in (0.4, 0.6, 3.0):
            hist.record(value)
        pairs = hist.cumulative_buckets()
        assert pairs[-1] == (math.inf, 3)
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)  # cumulative is monotone


class TestMetricRegistry:
    def test_get_or_create_returns_same_series(self):
        registry = MetricRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h", {"k": "a"}) is registry.histogram(
            "h", {"k": "a"}
        )
        assert registry.histogram("h", {"k": "a"}) is not registry.histogram(
            "h", {"k": "b"}
        )

    def test_name_keeps_one_kind(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.histogram("x")

    def test_snapshot_shapes(self):
        registry = MetricRegistry()
        registry.inc("reqs", 3)
        registry.gauge("depth").set(2)
        registry.observe("lat", 0.5)
        registry.observe("lat_by", 0.5, labels={"endpoint": "GET /x"})
        snap = registry.snapshot()
        assert snap["counters"]["reqs"] == 3
        assert snap["gauges"]["depth"] == 2
        assert snap["histograms"]["lat"]["count"] == 1
        labelled = snap["histograms"]["lat_by"]
        assert labelled[0]["labels"] == {"endpoint": "GET /x"}
        assert labelled[0]["count"] == 1

    def test_histogram_summaries_excludes_labelled_series(self):
        registry = MetricRegistry()
        registry.observe("plain", 1.0)
        registry.observe("tagged", 1.0, labels={"k": "v"})
        assert set(registry.histogram_summaries()) == {"plain"}

    def test_fragment_round_trip_excludes_gauges(self):
        worker = MetricRegistry()
        worker.inc("items", 5)
        worker.gauge("in_flight").set(9)
        worker.observe("seconds", 0.25)
        fragment = worker.to_fragment()

        parent = MetricRegistry()
        parent.inc("items", 2)
        parent.merge_fragment(fragment)
        assert parent.counter("items").value == 7
        assert parent.histogram("seconds").count == 1
        assert "in_flight" not in parent.snapshot()["gauges"]

    def test_merge_histogram_dicts(self):
        source = MetricRegistry()
        source.observe("block_seconds", 0.1)
        source.observe("block_seconds", 0.2)
        target = MetricRegistry()
        target.merge_histogram_dicts(
            {name: hist.to_dict() for name, hist in source.histograms().items()}
        )
        assert target.histogram("block_seconds").count == 2

    def test_concurrent_writers_lose_no_updates(self):
        registry = MetricRegistry()
        threads = 8
        per_thread = 500

        def hammer(seed: int) -> None:
            for i in range(per_thread):
                registry.inc("hits")
                registry.observe("lat", (seed + 1) * 0.001 * (i % 7 + 1))

        workers = [
            threading.Thread(target=hammer, args=(t,)) for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("hits").value == threads * per_thread
        hist = registry.histogram("lat")
        assert hist.count == threads * per_thread
        assert sum(n for _, n in hist.to_dict()["buckets"]) == hist.count


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricRegistry()
        registry.inc("service.requests", 4)
        registry.gauge("service.depth").set(1)
        registry.observe(
            "service.request_seconds", 0.25, labels={"endpoint": "GET /x"}
        )
        text = registry.prometheus_text(
            extra_counters={"extra.count": 2},
            extra_gauges={"extra.level": 0.5},
        )
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_service_requests_total 4" in text
        assert "repro_service_depth 1" in text
        assert "repro_extra_count_total 2" in text
        assert "# TYPE repro_service_request_seconds histogram" in text
        assert (
            'repro_service_request_seconds_bucket{endpoint="GET /x",le="0.25"} 1'
            in text
        )
        assert (
            'repro_service_request_seconds_bucket{endpoint="GET /x",le="+Inf"} 1'
            in text
        )
        assert 'repro_service_request_seconds_count{endpoint="GET /x"} 1' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricRegistry()
        registry.inc("hits", labels={"path": 'a"b\\c\nd'})
        text = registry.prometheus_text()
        assert 'path="a\\"b\\\\c\\nd"' in text
