"""Unit tests for spans and recorders."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    counter_totals,
    current_recorder,
    span_count,
    tree_signature,
    use_recorder,
)


class TestSpan:
    def test_add_accumulates(self):
        span = Span("s")
        span.add("hits")
        span.add("hits", 2)
        assert span.counters == {"hits": 3}

    def test_annotate_merges(self):
        span = Span("s", attributes={"a": 1})
        span.annotate(b=2)
        assert span.attributes == {"a": 1, "b": 2}

    def test_walk_preorder_paths(self):
        root = Span("root", children=[
            Span("a", children=[Span("leaf")]),
            Span("b"),
        ])
        assert [(p, d) for p, d, _ in root.walk()] == [
            ("root", 0),
            ("root/a", 1),
            ("root/a/leaf", 2),
            ("root/b", 1),
        ]

    def test_dict_round_trip(self):
        root = Span(
            "root",
            start=0.5,
            duration=1.25,
            attributes={"k": "v"},
            counters={"c": 3},
            children=[Span("child", counters={"c": 1})],
        )
        clone = Span.from_dict(root.to_dict())
        assert clone.to_dict() == root.to_dict()

    def test_counter_totals_sum_subtree(self):
        root = Span("root", counters={"x": 1}, children=[
            Span("a", counters={"x": 2, "y": 5}),
            Span("b", children=[Span("c", counters={"y": 1})]),
        ])
        assert counter_totals(root) == {"x": 3, "y": 6}
        assert span_count(root) == 4

    def test_tree_signature_ignores_durations(self):
        a = Span("root", duration=1.0, children=[Span("c", duration=2.0)])
        b = Span("root", duration=9.0, children=[Span("c", duration=0.1)])
        assert tree_signature(a) == tree_signature(b)


class TestRecorder:
    def test_nested_spans_form_tree(self):
        recorder = Recorder()
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                inner.add("n", 2)
        assert recorder.traces == [outer]
        assert outer.children == [inner]
        assert outer.duration >= inner.duration >= 0

    def test_start_is_root_relative(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner") as inner:
                pass
        root = recorder.traces[0]
        assert root.start == 0.0
        assert inner.start >= 0.0

    def test_sibling_spans(self):
        recorder = Recorder()
        with recorder.span("root"):
            with recorder.span("a"):
                pass
            with recorder.span("b"):
                pass
        assert [c.name for c in recorder.traces[0].children] == ["a", "b"]

    def test_exception_annotates_and_propagates(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("nope")
        assert recorder.traces[0].attributes["error"] == "ValueError"

    def test_sinks_receive_each_completed_trace(self):
        emitted = []

        class FakeSink:
            def emit(self, root):
                emitted.append(root.name)

        recorder = Recorder(sinks=[FakeSink()])
        with recorder.span("one"):
            pass
        with recorder.span("two"):
            with recorder.span("nested"):
                pass
        assert emitted == ["one", "two"]

    def test_graft_attaches_under_current_span(self):
        recorder = Recorder()
        fragment = Span("worker", counters={"w": 1}).to_dict()
        with recorder.span("root"):
            recorder.graft(fragment)
        root = recorder.traces[0]
        assert [c.name for c in root.children] == ["worker"]
        assert recorder.counter_totals() == {"w": 1}

    def test_graft_outside_span_becomes_trace(self):
        recorder = Recorder()
        recorder.graft(Span("orphan").to_dict())
        assert [t.name for t in recorder.traces] == ["orphan"]

    def test_counter_totals_across_traces(self):
        recorder = Recorder()
        for _ in range(2):
            with recorder.span("t") as span:
                span.add("c", 2)
        assert recorder.counter_totals() == {"c": 4}
        assert recorder.span_count() == 2


class TestNullRecorder:
    def test_everything_is_a_no_op(self):
        null = NullRecorder()
        with null.span("anything", attr=1) as span:
            span.add("c", 5)
            span.annotate(x=2)
        assert null.traces == []
        assert null.counter_totals() == {}
        assert null.span_count() == 0

    def test_shared_singleton_is_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.measure_memory is False


class TestCurrentRecorder:
    def test_defaults_to_null(self):
        assert current_recorder() is NULL_RECORDER

    def test_use_recorder_installs_and_restores(self):
        recorder = Recorder()
        with use_recorder(recorder):
            assert current_recorder() is recorder
            nested = Recorder()
            with use_recorder(nested):
                assert current_recorder() is nested
            assert current_recorder() is recorder
        assert current_recorder() is NULL_RECORDER

    def test_restored_after_exception(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with use_recorder(recorder):
                raise RuntimeError
        assert current_recorder() is NULL_RECORDER
