"""Tests for offline trace reconstruction and the derived views."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    JsonlTraceSink,
    Recorder,
    TraceAnalysisError,
    collapsed_stacks,
    diff_traces,
    load_trace_file,
    summarize_traces,
)
from repro.obs.traceanalysis import format_diff, format_summary


def _write_trace(tmp_path, actions, name="trace.jsonl"):
    out = tmp_path / name
    with JsonlTraceSink(out) as sink:
        actions(Recorder(sinks=[sink]))
    return out


def _sample(recorder: Recorder) -> None:
    with recorder.span("root"):
        with recorder.span("fast") as fast:
            fast.add("items", 2)
        with recorder.span("slow"):
            with recorder.span("leaf"):
                pass


class TestLoadTraceFile:
    def test_v2_round_trip_preserves_tree(self, tmp_path):
        path = _write_trace(tmp_path, _sample)
        traces = load_trace_file(path)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.orphans == []
        assert trace.spans == 4
        assert trace.root.name == "root"
        assert [c.name for c in trace.root.children] == ["fast", "slow"]
        assert trace.root.children[1].children[0].name == "leaf"
        assert trace.trace_id == trace.root.trace_id

    def test_worker_grafted_trace_has_no_orphans(self, tmp_path):
        def actions(recorder):
            worker = Recorder()
            with worker.span("detector:x") as span:
                span.add("findings", 1)
            fragment = worker.export_fragment()
            with recorder.span("engine"):
                recorder.graft(fragment, fragment=0)

        path = _write_trace(tmp_path, actions)
        trace = load_trace_file(path)[0]
        assert trace.orphans == []
        assert [c.name for c in trace.root.children] == ["detector:x"]
        assert trace.root.children[0].attributes["fragment"] == 0

    def test_v1_depth_stack_fallback(self, tmp_path):
        # Hand-written schema-1 lines: no trace_id/span_id/parent_id.
        lines = [
            {"event": "trace_start", "schema": 1, "trace": 0, "name": "r"},
            {"event": "span", "trace": 0, "path": "r", "name": "r",
             "depth": 0, "start_s": 0.0, "duration_s": 1.0,
             "attributes": {}, "counters": {}},
            {"event": "span", "trace": 0, "path": "r/a", "name": "a",
             "depth": 1, "start_s": 0.0, "duration_s": 0.4,
             "attributes": {}, "counters": {}},
            {"event": "span", "trace": 0, "path": "r/a/b", "name": "b",
             "depth": 2, "start_s": 0.1, "duration_s": 0.2,
             "attributes": {}, "counters": {}},
            {"event": "span", "trace": 0, "path": "r/c", "name": "c",
             "depth": 1, "start_s": 0.5, "duration_s": 0.3,
             "attributes": {}, "counters": {}},
            {"event": "trace_end", "trace": 0, "spans": 4,
             "counter_totals": {}},
        ]
        path = tmp_path / "v1.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        trace = load_trace_file(path)[0]
        assert trace.spans == 4
        assert [c.name for c in trace.root.children] == ["a", "c"]
        assert trace.root.children[0].children[0].name == "b"

    def test_dangling_parent_recorded_as_orphan(self, tmp_path):
        path = _write_trace(tmp_path, _sample)
        lines = path.read_text().splitlines()
        doctored = []
        for raw in lines:
            event = json.loads(raw)
            if event.get("event") == "span" and event.get("name") == "leaf":
                event["parent_id"] = 99  # never emitted
            doctored.append(json.dumps(event))
        path.write_text("\n".join(doctored) + "\n")
        trace = load_trace_file(path)[0]
        assert trace.orphans == [3]
        # The orphan stays visible, re-attached under the root.
        assert "leaf" in [c.name for c in trace.root.children]

    def test_rejects_bad_json_and_missing_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        with pytest.raises(TraceAnalysisError, match="not valid JSON"):
            load_trace_file(bad)
        with pytest.raises(TraceAnalysisError, match="cannot read"):
            load_trace_file(tmp_path / "missing.jsonl")

    def test_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceAnalysisError, match="no traces"):
            load_trace_file(empty)


class TestSummarize:
    def test_counts_and_by_name(self, tmp_path):
        traces = load_trace_file(_write_trace(tmp_path, _sample))
        summary = summarize_traces(traces, top=3)
        assert summary["traces"] == 1
        assert summary["spans"] == 4
        assert summary["orphan_spans"] == 0
        names = {row["name"]: row for row in summary["by_name"]}
        assert set(names) == {"root", "fast", "slow", "leaf"}
        assert names["root"]["count"] == 1
        assert len(summary["slowest"]) == 3
        # Slowest is sorted descending by duration.
        durations = [row["duration_s"] for row in summary["slowest"]]
        assert durations == sorted(durations, reverse=True)

    def test_critical_path_descends_to_latest_ending_child(self, tmp_path):
        traces = load_trace_file(_write_trace(tmp_path, _sample))
        crumbs = [
            step["name"]
            for step in summary_path(summarize_traces(traces))
        ]
        # "slow" starts after "fast" and therefore ends last.
        assert crumbs == ["root", "slow", "leaf"]

    def test_format_summary_renders(self, tmp_path):
        traces = load_trace_file(_write_trace(tmp_path, _sample))
        text = format_summary(summarize_traces(traces))
        assert "traces: 1" in text
        assert "critical path:" in text
        assert "slowest spans:" in text


def summary_path(summary):
    return summary["per_trace"][0]["critical_path"]


class TestCollapsedStacks:
    def test_format_and_weights(self, tmp_path):
        traces = load_trace_file(_write_trace(tmp_path, _sample))
        lines = collapsed_stacks(traces)
        stacks = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        assert "root;slow;leaf" in stacks
        assert all(weight >= 0 for weight in stacks.values())
        # Frame separator is ';', weight is integer microseconds.
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


class TestDiff:
    def test_deltas_and_ordering(self, tmp_path):
        before = load_trace_file(_write_trace(tmp_path, _sample, "a.jsonl"))

        def bigger(recorder):
            _sample(recorder)
            with recorder.span("extra"):
                pass

        after = load_trace_file(_write_trace(tmp_path, bigger, "b.jsonl"))
        rows = diff_traces(before, after)
        by_name = {row["name"]: row for row in rows}
        assert by_name["extra"]["count_before"] == 0
        assert by_name["extra"]["count_delta"] == 1
        assert by_name["root"]["count_delta"] == 0  # same tree on both sides
        deltas = [abs(row["total_delta_s"]) for row in rows]
        assert deltas == sorted(deltas, reverse=True)
        assert "extra" in format_diff(rows)
