"""Integration tests: the pipeline's span trees and counters.

Covers the observability acceptance criteria: the engine's span
hierarchy, serial-vs-parallel counter parity, deterministic parallel
traces (modulo durations), and the opt-in memory counters.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AnalysisConfig, AnalysisEngine, analyze
from repro.obs import Recorder, current_recorder, tree_signature, use_recorder


def _trace(state, recorder=None, **config_kwargs):
    recorder = recorder or Recorder()
    engine = AnalysisEngine(AnalysisConfig(**config_kwargs))
    report = engine.analyze(state, recorder=recorder)
    assert len(recorder.traces) == 1
    return report, recorder.traces[0], recorder


class TestSerialSpanTree:
    def test_root_span_and_attributes(self, paper_example):
        _, root, _ = _trace(paper_example)
        assert root.name == "engine.analyze"
        assert root.attributes["finder"] == "cooccurrence"
        assert root.attributes["n_workers"] == 1
        assert root.attributes["n_roles"] == paper_example.n_roles

    def test_children_are_matrix_build_warm_then_detectors(self, paper_example):
        _, root, _ = _trace(paper_example)
        names = [c.name for c in root.children]
        assert names[0] == "engine.matrix_build"
        assert names[1] == "engine.workspace_warm"
        assert names[2:] == [
            "detector:standalone_nodes",
            "detector:disconnected_roles",
            "detector:single_assignment_roles",
            "detector:duplicate_roles",
            "detector:similar_roles",
        ]

    def test_warm_span_carries_the_blocked_scans(self, paper_example):
        _, root, _ = _trace(paper_example)
        warm = next(
            c for c in root.children if c.name == "engine.workspace_warm"
        )
        axis_names = [c.name for c in warm.children]
        assert axis_names == ["axis:users", "axis:permissions"]
        for axis_span in warm.children:
            # One shared pass per axis, one block by default.
            assert axis_span.counters["workspace.cooccurrence_passes"] == 1
            assert [c.name for c in axis_span.children] == [
                "cooccurrence.block"
            ]

    def test_matrix_counters_match_state(self, paper_example):
        _, root, _ = _trace(paper_example)
        build = root.children[0]
        assert build.counters["matrix.ruam_nnz"] == 6
        assert build.counters["matrix.rpam_nnz"] == 8

    def test_grouping_detectors_have_axis_and_finder_spans(self, paper_example):
        _, root, recorder = _trace(paper_example)
        paths = [p for p, _, _ in root.walk()]
        dup = "engine.analyze/detector:duplicate_roles"
        assert f"{dup}/axis:users" in paths
        assert f"{dup}/axis:users/finder:cooccurrence" in paths
        # The product itself runs once per axis, in the warm phase.
        warm = "engine.analyze/engine.workspace_warm"
        assert f"{warm}/axis:users/cooccurrence.block" in paths
        totals = recorder.counter_totals()
        assert totals["cooccurrence.blocks"] >= 1
        assert totals["cooccurrence.candidate_pairs"] >= 1
        assert totals["workspace.cooccurrence_passes"] == 2
        assert totals["workspace.artifact_hits"] >= 1
        assert totals["workspace.artifact_misses"] >= 1

    def test_finding_counters_match_report(self, paper_example):
        report, root, recorder = _trace(paper_example)
        assert recorder.counter_totals()["findings"] == len(report.findings)

    def test_timings_are_span_durations(self, paper_example):
        report, root, _ = _trace(paper_example)
        by_name = {c.name: c for c in root.children}
        assert report.timings["matrix_build"] == (
            by_name["engine.matrix_build"].duration
        )
        assert report.timings["duplicate_roles"] == (
            by_name["detector:duplicate_roles"].duration
        )
        assert report.total_seconds == root.duration

    def test_engine_without_recorder_still_populates_metrics(self, paper_example):
        report = analyze(paper_example)
        assert report.metrics["schema"] == 2
        assert report.metrics["spans"] > 0
        assert report.metrics["workers"]["mode"] == "serial"
        assert "findings" in report.metrics["counters"]

    def test_engine_adopts_installed_recorder(self, paper_example):
        recorder = Recorder()
        with use_recorder(recorder):
            analyze(paper_example)
        assert [t.name for t in recorder.traces] == ["engine.analyze"]


class TestDbscanInstrumentation:
    def test_fit_and_expand_counters(self, paper_example):
        _, root, recorder = _trace(paper_example, finder="dbscan")
        paths = {p for p, _, _ in root.walk()}
        assert any(p.endswith("finder:dbscan/dbscan.fit") for p in paths)
        totals = recorder.counter_totals()
        assert totals["dbscan.points"] >= 1
        assert 1 <= totals["dbscan.seed_queries"] <= totals["dbscan.points"]
        # Expansion queries live on dbscan.expand child spans, seed
        # queries on dbscan.fit — no query is counted twice.
        assert totals["dbscan.clusters"] >= 1
        assert totals["dbscan.cluster_members"] >= 2


class TestSerialParallelParity:
    def test_counter_totals_equal(self, paper_example):
        _, _, serial = _trace(paper_example, n_workers=1)
        _, _, parallel = _trace(paper_example, n_workers=2)
        assert parallel.counter_totals() == serial.counter_totals()

    def test_parallel_trace_is_deterministic(self, paper_example):
        _, root_a, _ = _trace(paper_example, n_workers=2)
        _, root_b, _ = _trace(paper_example, n_workers=2)
        assert tree_signature(root_a) == tree_signature(root_b)

    def test_parallel_grafts_detector_fragments_in_order(self, paper_example):
        _, root, _ = _trace(paper_example, n_workers=2)
        par = next(c for c in root.children if c.name == "engine.detect_parallel")
        grafted = [c.name for c in par.children if c.name.startswith("detector:")]
        # Partition order: one fragment per (detector, axis) work item,
        # detectors in serial order, axes in configured order.
        assert grafted == [
            "detector:standalone_nodes",
            "detector:disconnected_roles",
            "detector:single_assignment_roles",
            "detector:duplicate_roles",
            "detector:duplicate_roles",
            "detector:similar_roles",
            "detector:similar_roles",
        ]

    def test_parallel_timings_same_keys_as_serial(self, paper_example):
        serial_report, _, _ = _trace(paper_example, n_workers=1)
        parallel_report, _, _ = _trace(paper_example, n_workers=2)
        assert set(parallel_report.timings) == set(serial_report.timings)

    def test_parallel_metrics_have_worker_breakdown(self, paper_example):
        report, _, _ = _trace(paper_example, n_workers=2)
        workers = report.metrics["workers"]
        assert workers == {
            "requested": 2,
            "resolved": 2,
            "mode": "parallel",
            "per_worker": workers["per_worker"],
        }
        assert sum(w["items"] for w in workers["per_worker"]) == 7
        assert all(w["seconds"] >= 0 for w in workers["per_worker"])

    def test_worker_identity_never_on_spans(self, paper_example):
        _, root, _ = _trace(paper_example, n_workers=2)
        for _, _, span in root.walk():
            assert "pid" not in span.attributes
            assert "worker" not in span.attributes


class TestMemoryCounters:
    def test_block_peak_bytes_only_when_opted_in(self, paper_example):
        _, _, plain = _trace(paper_example)
        assert "cooccurrence.block_peak_bytes" not in plain.counter_totals()

        recorder = Recorder(measure_memory=True)
        _, _, _ = _trace(paper_example, recorder=recorder)
        totals = recorder.counter_totals()
        assert totals["cooccurrence.block_peak_bytes"] > 0

    def test_measure_memory_propagates_to_workers(self, paper_example):
        recorder = Recorder(measure_memory=True)
        _trace(paper_example, recorder=recorder, n_workers=2)
        assert recorder.counter_totals()["cooccurrence.block_peak_bytes"] > 0


class TestBenchharnessIntegration:
    def test_time_call_captures_engine_spans(self, paper_example):
        from repro.benchharness import time_call

        recorder = Recorder()
        stats, report = time_call(
            lambda: analyze(paper_example), repeats=2, recorder=recorder
        )
        assert stats.n == 2
        assert len(recorder.traces) == 2
        for trace in recorder.traces:
            assert trace.name == "bench.run"
            assert [c.name for c in trace.children] == ["engine.analyze"]
        assert report.metrics["counters"]["findings"] == len(report.findings)

    def test_time_call_without_recorder_unchanged(self):
        from repro.benchharness import time_call

        stats, result = time_call(lambda: 42, repeats=3)
        assert result == 42
        assert stats.n == 3


class TestEmptyState:
    def test_empty_state_trace_is_well_formed(self, empty_state):
        report, root, recorder = _trace(empty_state)
        assert root.children[0].name == "engine.matrix_build"
        assert report.timings["matrix_build"] >= 0.0
        assert recorder.counter_totals()["findings"] == 0


class TestHistogramTelemetry:
    def test_serial_report_has_histograms(self, paper_example):
        report, _, _ = _trace(paper_example)
        histograms = report.metrics["histograms"]
        # One observation per detector span in serial mode.
        assert histograms["detector.seconds"]["count"] == 5
        blocks = histograms["cooccurrence.block_seconds"]
        assert blocks["count"] >= 2  # at least one block per axis
        assert blocks["p50"] is not None
        assert blocks["min"] <= blocks["p50"] <= blocks["p99"] <= blocks["max"]

    def test_parallel_observations_merge_without_loss(self, paper_example):
        serial_report, _, _ = _trace(paper_example, n_workers=1)
        parallel_report, _, _ = _trace(paper_example, n_workers=2)
        serial_hist = serial_report.metrics["histograms"]
        parallel_hist = parallel_report.metrics["histograms"]
        # Blocks are scanned in the parent's warm phase on both paths:
        # observation counts match exactly.
        assert (
            parallel_hist["cooccurrence.block_seconds"]["count"]
            == serial_hist["cooccurrence.block_seconds"]["count"]
        )
        # The parallel path observes once per (detector, axis) work
        # item — all 7 worker-side observations travel back inside the
        # grafted fragments, none lost.
        assert parallel_hist["detector.seconds"]["count"] == 7

    def test_parallel_histogram_counts_deterministic(self, paper_example):
        first, _, _ = _trace(paper_example, n_workers=2)
        second, _, _ = _trace(paper_example, n_workers=2)
        counts_of = lambda report: {
            name: summary["count"]
            for name, summary in report.metrics["histograms"].items()
        }
        assert counts_of(first) == counts_of(second)


class TestTraceCorrelation:
    def test_trace_gets_an_id(self, paper_example):
        _, root, _ = _trace(paper_example)
        assert root.trace_id and len(root.trace_id) == 32

    def test_pinned_trace_id_propagates(self, paper_example):
        recorder = Recorder(trace_id="pinned-id")
        _, root, _ = _trace(paper_example, recorder=recorder)
        assert root.trace_id == "pinned-id"

    def test_parallel_trace_stitches_with_zero_orphans(
        self, paper_example, tmp_path
    ):
        import io

        from repro.obs import (
            JsonlTraceSink,
            load_trace_file,
            validate_trace_lines,
        )

        buffer = io.StringIO()
        recorder = Recorder(sinks=[JsonlTraceSink(buffer)])
        _trace(paper_example, recorder=recorder, n_workers=2)
        lines = buffer.getvalue().splitlines()
        validate_trace_lines(lines)  # v2 ID integrity incl. parent links
        out = tmp_path / "trace.jsonl"
        out.write_text(buffer.getvalue())
        trace = load_trace_file(out)[0]
        assert trace.orphans == []
        # The reconstructed tree is the tree the recorder held.
        assert tree_signature(trace.root) == tree_signature(
            recorder.traces[0]
        )


class TestRecorderOverhead:
    """Pin the per-operation costs behind the <=1% end-to-end budget.

    Absolute per-op bounds are loose enough to be stable under CI noise
    where an end-to-end percentage comparison would flake.
    """

    def test_null_recorder_span_is_nearly_free(self):
        import time

        from repro.obs import NULL_RECORDER

        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with NULL_RECORDER.span("x"):
                pass
        per_op = (time.perf_counter() - start) / n
        assert per_op < 20e-6  # a real span site costs ~ms of work

    def test_observe_is_nearly_free(self):
        import time

        recorder = Recorder()
        n = 20_000
        start = time.perf_counter()
        for i in range(n):
            recorder.observe("lat", i * 1e-6)
        per_op = (time.perf_counter() - start) / n
        assert per_op < 50e-6
        assert recorder.registry.histogram("lat").count == n
