"""Tests for trace sinks and the JSONL trace schema validator."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    InMemorySink,
    JsonlTraceSink,
    LoggingSink,
    Recorder,
    Span,
    TraceSchemaError,
    validate_trace_file,
    validate_trace_lines,
)


def _sample_trace(recorder: Recorder) -> None:
    with recorder.span("root", finder="x") as root:
        root.add("top", 1)
        with recorder.span("child") as child:
            child.add("leaf", 2)
        with recorder.span("child2"):
            pass


class TestInMemorySink:
    def test_collects_roots(self):
        sink = InMemorySink()
        recorder = Recorder(sinks=[sink])
        _sample_trace(recorder)
        assert len(sink.traces) == 1
        assert sink.traces[0].name == "root"
        assert [c.name for c in sink.traces[0].children] == ["child", "child2"]


class TestLoggingSink:
    def test_one_record_per_span(self, caplog):
        recorder = Recorder(sinks=[LoggingSink()])
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            _sample_trace(recorder)
        messages = [r.getMessage() for r in caplog.records]
        assert len(messages) == 3
        assert "span root " in messages[0]
        assert "root/child" in messages[1]
        assert "counters={'leaf': 2}" in messages[1]

    def test_custom_logger_and_level(self, caplog):
        logger = logging.getLogger("test.obs.custom")
        recorder = Recorder(sinks=[LoggingSink(logger=logger, level=logging.DEBUG)])
        with caplog.at_level(logging.DEBUG, logger="test.obs.custom"):
            _sample_trace(recorder)
        assert all(r.levelno == logging.DEBUG for r in caplog.records)
        assert len(caplog.records) == 3


class TestJsonlTraceSink:
    def _events(self, recorder_actions) -> list[dict]:
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        recorder = Recorder(sinks=[sink])
        recorder_actions(recorder)
        return [json.loads(line) for line in buffer.getvalue().splitlines()]

    def test_event_layout(self):
        events = self._events(_sample_trace)
        assert [e["event"] for e in events] == [
            "trace_start",
            "span",
            "span",
            "span",
            "trace_end",
        ]
        start = events[0]
        assert start["schema"] == TRACE_SCHEMA_VERSION
        assert start["trace"] == 0
        assert start["name"] == "root"
        root = events[1]
        assert root["path"] == "root"
        assert root["depth"] == 0
        assert root["attributes"] == {"finder": "x"}
        child = events[2]
        assert child["path"] == "root/child"
        assert child["depth"] == 1
        assert child["counters"] == {"leaf": 2}
        end = events[-1]
        assert end["spans"] == 3
        assert end["counter_totals"] == {"leaf": 2, "top": 1}

    def test_multiple_traces_get_sequential_indices(self):
        def actions(recorder):
            _sample_trace(recorder)
            with recorder.span("second"):
                pass

        events = self._events(actions)
        assert [e["trace"] for e in events if e["event"] == "trace_start"] == [0, 1]

    def test_validator_accepts_output(self):
        buffer = io.StringIO()
        recorder = Recorder(sinks=[JsonlTraceSink(buffer)])
        _sample_trace(recorder)
        summary = validate_trace_lines(buffer.getvalue().splitlines())
        assert summary == {"traces": 1, "spans": 3}

    def test_path_target_round_trips_through_file(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        with JsonlTraceSink(out) as sink:
            recorder = Recorder(sinks=[sink])
            _sample_trace(recorder)
        summary = validate_trace_file(out)
        assert summary == {"traces": 1, "spans": 3}

    def test_close_leaves_external_file_open(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        recorder = Recorder(sinks=[sink])
        _sample_trace(recorder)
        sink.close()
        assert not buffer.closed


class TestTraceValidator:
    def _valid_lines(self) -> list[str]:
        buffer = io.StringIO()
        recorder = Recorder(sinks=[JsonlTraceSink(buffer)])
        _sample_trace(recorder)
        return buffer.getvalue().splitlines()

    def test_rejects_bad_json(self):
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_trace_lines(["{nope"])

    def test_rejects_empty_file(self):
        with pytest.raises(TraceSchemaError, match="no traces"):
            validate_trace_lines([])

    def test_rejects_truncated_trace(self):
        lines = self._valid_lines()[:-1]  # drop trace_end
        with pytest.raises(TraceSchemaError, match="unterminated"):
            validate_trace_lines(lines)

    def test_rejects_wrong_span_count(self):
        lines = self._valid_lines()
        end = json.loads(lines[-1])
        end["spans"] = 99
        lines[-1] = json.dumps(end)
        with pytest.raises(TraceSchemaError, match="spans"):
            validate_trace_lines(lines)

    def test_rejects_mismatched_counter_totals(self):
        lines = self._valid_lines()
        end = json.loads(lines[-1])
        end["counter_totals"] = {"leaf": 1}
        lines[-1] = json.dumps(end)
        with pytest.raises(TraceSchemaError, match="counter_totals"):
            validate_trace_lines(lines)

    def test_rejects_depth_jump(self):
        lines = self._valid_lines()
        span = json.loads(lines[2])  # root/child at depth 1
        span["depth"] = 2
        span["path"] = "root/?/child"
        lines[2] = json.dumps(span)
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines)

    def test_rejects_path_name_mismatch(self):
        lines = self._valid_lines()
        span = json.loads(lines[2])
        span["name"] = "other"
        lines[2] = json.dumps(span)
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines)

    def _edit_span(self, lines: list[str], index: int, **changes) -> list[str]:
        span = json.loads(lines[index])
        span.update(changes)
        lines[index] = json.dumps(span)
        return lines

    def test_rejects_wrong_trace_id_on_span(self):
        lines = self._edit_span(self._valid_lines(), 2, trace_id="deadbeef")
        with pytest.raises(TraceSchemaError, match="line 3.*trace_id"):
            validate_trace_lines(lines)

    def test_rejects_out_of_order_span_id(self):
        lines = self._edit_span(self._valid_lines(), 2, span_id=7)
        with pytest.raises(TraceSchemaError, match="span_id"):
            validate_trace_lines(lines)

    def test_rejects_root_with_parent(self):
        lines = self._edit_span(self._valid_lines(), 1, parent_id=0)
        with pytest.raises(TraceSchemaError, match="parent_id"):
            validate_trace_lines(lines)

    def test_rejects_dangling_parent_link(self):
        lines = self._edit_span(self._valid_lines(), 2, parent_id=42)
        with pytest.raises(TraceSchemaError, match="dangling"):
            validate_trace_lines(lines)

    def test_rejects_parent_at_wrong_depth(self):
        # "child2" (pre-order id 2) claims "child" (id 1, depth 1) as its
        # parent while staying at depth 1 itself.
        lines = self._edit_span(self._valid_lines(), 3, parent_id=1)
        with pytest.raises(TraceSchemaError, match="depth"):
            validate_trace_lines(lines)

    def test_error_messages_carry_line_numbers(self):
        lines = self._edit_span(self._valid_lines(), 3, parent_id=42)
        with pytest.raises(TraceSchemaError, match=r"^line 4: "):
            validate_trace_lines(lines)

    def test_accepts_schema_v1_files(self):
        # Strip every v2 field back to the v1 layout.
        lines = []
        for raw in self._valid_lines():
            event = json.loads(raw)
            event.pop("trace_id", None)
            event.pop("span_id", None)
            event.pop("parent_id", None)
            if event["event"] == "trace_start":
                event["schema"] = 1
            lines.append(json.dumps(event))
        summary = validate_trace_lines(lines)
        assert summary == {"traces": 1, "spans": 3}

    def test_rejects_unknown_schema_version(self):
        lines = self._valid_lines()
        start = json.loads(lines[0])
        start["schema"] = 99
        lines[0] = json.dumps(start)
        with pytest.raises(TraceSchemaError, match="schema"):
            validate_trace_lines(lines)
