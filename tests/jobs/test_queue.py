"""Unit tests for the durable job queue (``repro.jobs.queue``)."""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.jobs import JobError, JobQueue, spec_key_of


@pytest.fixture
def queue(tmp_path):
    q = JobQueue(
        tmp_path / "jobs.sqlite",
        lease_seconds=10.0,
        max_attempts=3,
        backoff_seconds=1.0,
        backoff_cap_seconds=8.0,
    )
    yield q
    q.close()


class TestValidation:
    @pytest.mark.parametrize(
        "options",
        [
            {"lease_seconds": 0},
            {"lease_seconds": -1},
            {"max_attempts": 0},
            {"backoff_seconds": -0.1},
            {"backoff_seconds": 5.0, "backoff_cap_seconds": 1.0},
        ],
    )
    def test_bad_options(self, tmp_path, options):
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path / "q.sqlite", **options)

    def test_bad_enqueue_max_attempts(self, queue):
        with pytest.raises(ConfigurationError):
            queue.enqueue("sleep", {}, max_attempts=0)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "q.sqlite"
        JobQueue(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.close()
        with pytest.raises(JobError):
            JobQueue(path)

    def test_closed_queue_rejects_operations(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        q.close()
        with pytest.raises(JobError):
            q.enqueue("sleep", {})


class TestEnqueue:
    def test_spec_hash_is_canonical(self):
        a = spec_key_of("analyze", {"x": 1, "y": 2})
        b = spec_key_of("analyze", {"y": 2, "x": 1})
        assert a == b
        assert a != spec_key_of("analyze", {"x": 1, "y": 3})
        assert a != spec_key_of("other", {"x": 1, "y": 2})

    def test_enqueue_is_idempotent(self, queue):
        first, created = queue.enqueue("sleep", {"seconds": 1})
        again, created_again = queue.enqueue("sleep", {"seconds": 1})
        assert created and not created_again
        assert first.job_id == again.job_id
        assert queue.counts_by_state()["queued"] == 1
        assert queue.counters()["jobs.deduplicated"] == 1

    def test_done_job_not_reenqueued(self, queue):
        record, _ = queue.enqueue("sleep", {"seconds": 1})
        claimed = queue.claim("w1")
        queue.complete(claimed.job_id, "w1", {"ok": True})
        again, created = queue.enqueue("sleep", {"seconds": 1})
        assert not created and again.state == "done"

    def test_failed_job_is_resurrected(self, queue):
        record, _ = queue.enqueue("sleep", {"seconds": 1})
        claimed = queue.claim("w1")
        queue.fail(claimed.job_id, "w1", "boom", retryable=False)
        assert queue.get(record.job_id).state == "failed"
        again, created = queue.enqueue("sleep", {"seconds": 1})
        assert created
        assert again.state == "queued"
        assert again.attempts == 0
        assert again.error is None

    def test_explicit_spec_key_wins(self, queue):
        first, _ = queue.enqueue("sleep", {"seconds": 1}, spec_key="custom")
        assert first.job_id == "custom"
        again, created = queue.enqueue("sleep", {"seconds": 2}, spec_key="custom")
        assert not created

    def test_trace_id_persisted(self, queue):
        record, _ = queue.enqueue("sleep", {}, trace_id="t" * 32)
        assert queue.get(record.job_id).trace_id == "t" * 32


class TestClaim:
    def test_claim_carries_payload(self, queue):
        queue.enqueue("sleep", {"seconds": 3})
        record = queue.claim("w1")
        assert record.payload == {"seconds": 3}
        assert record.state == "leased"
        assert record.leased_by == "w1"
        assert record.attempts == 1
        assert record.lease_expires_at is not None

    def test_empty_queue_claims_none(self, queue):
        assert queue.claim("w1") is None

    def test_oldest_job_first(self, queue):
        a, _ = queue.enqueue("sleep", {"n": 1})
        b, _ = queue.enqueue("sleep", {"n": 2})
        assert queue.claim("w1").job_id == a.job_id
        assert queue.claim("w1").job_id == b.job_id

    def test_two_claimers_never_share_a_job(self, queue):
        for n in range(8):
            queue.enqueue("sleep", {"n": n})
        claimed: list[str] = []
        lock = threading.Lock()

        def worker(worker_id: str) -> None:
            while True:
                record = queue.claim(worker_id)
                if record is None:
                    return
                with lock:
                    claimed.append(record.job_id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == 8
        assert len(set(claimed)) == 8  # atomic claim: no double-lease

    def test_backoff_gate_respected(self, queue):
        record, _ = queue.enqueue("sleep", {})
        claimed = queue.claim("w1", now=100.0)
        queue.reap_expired(now=claimed.lease_expires_at + 0.1)
        requeued = queue.get(record.job_id)
        assert requeued.state == "queued"
        # attempts=1 -> backoff = 1.0s after the reap time
        assert queue.claim("w2", now=requeued.not_before - 0.01) is None
        assert queue.claim("w2", now=requeued.not_before) is not None

    def test_expired_job_never_claimed(self, queue):
        queue.enqueue("sleep", {}, expires_at=50.0)
        assert queue.claim("w1", now=60.0) is None

    def test_queue_wait_recorded_once(self, queue):
        record, _ = queue.enqueue("sleep", {})
        claimed = queue.claim("w1")
        assert claimed.queue_wait_seconds is not None
        summaries = queue.histogram_summaries()
        assert summaries["jobs.queue_wait_seconds"]["count"] == 1


class TestLeaseGuards:
    def test_heartbeat_extends_only_for_holder(self, queue):
        queue.enqueue("sleep", {})
        record = queue.claim("w1")
        before = record.lease_expires_at
        assert queue.heartbeat(record.job_id, "w1")
        assert queue.get(record.job_id).lease_expires_at >= before
        assert not queue.heartbeat(record.job_id, "intruder")

    def test_complete_guarded_by_lease(self, queue):
        queue.enqueue("sleep", {})
        record = queue.claim("w1")
        assert not queue.complete(record.job_id, "w2", {"stolen": True})
        assert queue.complete(record.job_id, "w1", {"ok": True})
        # Double-complete by the same holder is also rejected.
        assert not queue.complete(record.job_id, "w1", {"again": True})
        assert queue.get(record.job_id).result == {"ok": True}
        assert queue.counters()["jobs.stale_completions"] == 2

    def test_retryable_failure_requeues_with_backoff(self, queue):
        record, _ = queue.enqueue("sleep", {})
        claimed = queue.claim("w1")
        assert queue.fail(claimed.job_id, "w1", "flaky", retryable=True)
        after = queue.get(record.job_id)
        assert after.state == "queued"
        assert after.error == "flaky"
        assert after.not_before > 0

    def test_retryable_failure_deadletters_on_last_attempt(self, queue):
        record, _ = queue.enqueue("sleep", {}, max_attempts=1)
        claimed = queue.claim("w1")
        queue.fail(claimed.job_id, "w1", "flaky", retryable=True)
        assert queue.get(record.job_id).state == "failed"

    def test_release_refunds_the_attempt(self, queue):
        record, _ = queue.enqueue("sleep", {})
        claimed = queue.claim("w1")
        assert queue.release(claimed.job_id, "w1")
        after = queue.get(record.job_id)
        assert after.state == "queued"
        assert after.attempts == 0
        reclaimed = queue.claim("w2")
        assert reclaimed.attempts == 1


class TestReap:
    def test_expired_lease_requeued_exactly_once(self, queue):
        record, _ = queue.enqueue("sleep", {})
        claimed = queue.claim("w1", now=100.0)
        dead_at = claimed.lease_expires_at + 1
        first = queue.reap_expired(now=dead_at)
        second = queue.reap_expired(now=dead_at)
        assert first["requeued"] == [record.job_id]
        assert second == {"requeued": [], "dead_lettered": [], "expired": []}
        assert queue.counters()["jobs.lease_expired"] == 1

    def test_dead_letter_after_max_attempts(self, queue):
        record, _ = queue.enqueue("sleep", {}, max_attempts=2)
        now = 100.0
        for _ in range(2):
            claimed = queue.claim("w1", now=now)
            assert claimed is not None
            queue.reap_expired(now=claimed.lease_expires_at + 1)
            # Jump past the retry backoff so the next claim is eligible.
            now = claimed.lease_expires_at + queue.backoff_cap_seconds + 1
        final = queue.get(record.job_id)
        assert final.state == "lost"
        assert "lease expired" in final.error
        assert queue.counters()["jobs.dead_lettered"] == 1
        # Terminal: not claimable anymore.
        assert queue.claim("w1", now=now + 100) is None

    def test_live_lease_untouched(self, queue):
        queue.enqueue("sleep", {})
        claimed = queue.claim("w1", now=100.0)
        result = queue.reap_expired(now=claimed.lease_expires_at - 1)
        assert result["requeued"] == []
        assert queue.get(claimed.job_id).state == "leased"

    def test_queued_past_deadline_failed(self, queue):
        record, _ = queue.enqueue("sleep", {}, expires_at=50.0)
        result = queue.reap_expired(now=60.0)
        assert result["expired"] == [record.job_id]
        after = queue.get(record.job_id)
        assert after.state == "failed"
        assert "expired" in after.error


class TestDurability:
    def test_state_survives_reopen(self, tmp_path):
        path = tmp_path / "q.sqlite"
        q = JobQueue(path)
        record, _ = q.enqueue("sleep", {"seconds": 1}, trace_id="abc")
        q.claim("w1")
        q.close()
        reopened = JobQueue(path)
        survived = reopened.get(record.job_id)
        assert survived.state == "leased"
        assert survived.trace_id == "abc"
        assert reopened.counters()["jobs.claimed"] == 1
        reopened.close()

    def test_stats_shape(self, queue):
        queue.enqueue("sleep", {})
        queue.claim("w1")
        stats = queue.stats()
        assert set(stats) == {
            "path", "states", "counters", "histograms",
            "lease_seconds", "max_attempts",
        }
        assert stats["states"]["leased"] == 1
        assert stats["counters"]["jobs.claimed"] == 1
        payload = json.dumps(stats)  # must be JSON-serialisable
        assert "jobs.queue_wait_seconds" in payload
