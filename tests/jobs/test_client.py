"""Tests for the producer-side :class:`repro.jobs.JobClient`."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ReproError
from repro.jobs import JobClient, JobFailed, JobQueue, JobWaitTimeout, JobWorker


@pytest.fixture
def queue(tmp_path):
    q = JobQueue(tmp_path / "jobs.sqlite", lease_seconds=5.0)
    yield q
    q.close()


@pytest.fixture
def client(queue):
    return JobClient(queue, poll_seconds=0.01)


class TestStatusAndResult:
    def test_status_of_unknown_job_is_none(self, client):
        assert client.status("nope") is None

    def test_result_only_for_done_jobs(self, queue, client):
        record, _ = client.enqueue("sleep", {"seconds": 0})
        assert client.result(record.job_id) is None  # still queued
        claimed = queue.claim("w1")
        queue.complete(claimed.job_id, "w1", {"slept": 0})
        assert client.result(record.job_id) == {"slept": 0}
        assert client.status(record.job_id).state == "done"


class TestWait:
    def test_wait_returns_result_when_worker_finishes(self, queue, client):
        record, _ = client.enqueue("sleep", {"seconds": 0.05})
        worker = JobWorker(queue, worker_id="w1", max_jobs=1, poll_seconds=0.01)
        thread = threading.Thread(target=worker.run)
        thread.start()
        try:
            result = client.wait(record.job_id, timeout=10.0)
        finally:
            thread.join()
        assert result == {"slept": 0.05}

    def test_wait_unknown_job_raises_immediately(self, client):
        with pytest.raises(ReproError, match="unknown job"):
            client.wait("nope", timeout=5.0)

    def test_wait_raises_jobfailed_with_record(self, queue, client):
        record, _ = client.enqueue("sleep", {"seconds": 0})
        claimed = queue.claim("w1")
        queue.fail(claimed.job_id, "w1", "handler exploded", retryable=False)
        with pytest.raises(JobFailed) as excinfo:
            client.wait(record.job_id, timeout=5.0)
        assert excinfo.value.record.state == "failed"
        assert "handler exploded" in str(excinfo.value)

    def test_wait_times_out_without_touching_the_job(self, queue):
        ticks = iter([0.0, 0.0, 10.0, 10.0])
        client = JobClient(
            queue,
            poll_seconds=0.01,
            time_source=lambda: next(ticks),
            sleep=lambda _: None,
        )
        record, _ = client.enqueue("sleep", {"seconds": 60})
        with pytest.raises(JobWaitTimeout, match="not finished"):
            client.wait(record.job_id, timeout=5.0)
        # Only the caller gave up; the job itself is still runnable.
        assert queue.get(record.job_id).state == "queued"
