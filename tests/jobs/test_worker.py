"""Worker-loop tests: handlers, retries, engine caching, trace stitching."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.engine import AnalysisConfig, analyze
from repro.core.report import Report
from repro.core.state import RbacState
from repro.io.jsonio import state_to_dict
from repro.jobs import JobQueue, JobWorker
from repro.obs.sinks import InMemorySink


def sample_state() -> RbacState:
    return RbacState.build(
        users=[f"u{i}" for i in range(6)],
        roles=[f"r{i}" for i in range(5)],
        permissions=[f"p{i}" for i in range(6)],
        user_assignments=[
            ("r0", "u0"), ("r0", "u1"), ("r1", "u0"), ("r1", "u1"),
            ("r2", "u2"), ("r3", "u3"),
        ],
        permission_assignments=[
            ("r0", "p0"), ("r0", "p1"), ("r1", "p0"), ("r1", "p1"),
            ("r2", "p2"), ("r3", "p3"),
        ],
    )


def analyze_payload(state: RbacState, config: AnalysisConfig) -> dict:
    return {
        "state": state_to_dict(state),
        "config": config.to_dict(),
        "fingerprint": state.fingerprint(),
        "mutation_seq": 0,
    }


def normalized(report_dict: dict) -> str:
    """The repo's report-parity normalisation: run-specific keys out."""
    payload = dict(report_dict)
    for key in ("timings_seconds", "total_seconds", "metrics"):
        payload.pop(key, None)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture
def queue(tmp_path):
    q = JobQueue(tmp_path / "jobs.sqlite", lease_seconds=5.0)
    yield q
    q.close()


class TestAnalyzeHandler:
    def test_report_matches_inline_execution(self, queue):
        state = sample_state()
        config = AnalysisConfig()
        inline = analyze(state, config)
        queue.enqueue("analyze", analyze_payload(state, config))
        worker = JobWorker(queue, worker_id="w1")
        record = queue.claim("w1")
        assert worker.run_one(record)
        result = queue.get(record.job_id).result
        assert normalized(result["report"]) == normalized(inline.to_dict())
        # Reconstruction round-trips to the same bytes too.
        rebuilt = Report.from_payload(result["report"], state)
        assert normalized(rebuilt.to_dict()) == normalized(inline.to_dict())
        assert rebuilt.counts() == inline.counts()

    def test_engine_cached_per_config(self, queue):
        state = sample_state()
        config = AnalysisConfig()
        worker = JobWorker(queue, worker_id="w1")
        for seq in range(2):
            payload = analyze_payload(state, config)
            payload["mutation_seq"] = seq  # different job, same config
            queue.enqueue("analyze", payload)
        assert worker.run_one(queue.claim("w1"))
        assert worker.run_one(queue.claim("w1"))
        assert len(worker._engines) == 1
        other = AnalysisConfig(similarity_threshold=2)
        queue.enqueue("analyze", analyze_payload(state, other))
        assert worker.run_one(queue.claim("w1"))
        assert len(worker._engines) == 2

    def test_result_carries_job_identity(self, queue):
        state = sample_state()
        payload = analyze_payload(state, AnalysisConfig())
        queue.enqueue("analyze", payload)
        worker = JobWorker(queue, worker_id="w1")
        record = queue.claim("w1")
        worker.run_one(record)
        result = queue.get(record.job_id).result
        assert result["fingerprint"] == payload["fingerprint"]
        assert result["mutation_seq"] == 0


class TestFailureModes:
    def test_unknown_kind_fails_without_retry(self, queue):
        record, _ = queue.enqueue("no_such_kind", {})
        worker = JobWorker(queue, worker_id="w1")
        assert not worker.run_one(queue.claim("w1"))
        after = queue.get(record.job_id)
        assert after.state == "failed"
        assert "no handler" in after.error

    def test_domain_error_fails_without_retry(self, queue):
        # A malformed state document raises a ReproError subclass —
        # deterministic, so retrying would only burn attempts.
        record, _ = queue.enqueue(
            "analyze", {"state": {"format": "wrong"}, "config": None}
        )
        worker = JobWorker(queue, worker_id="w1")
        assert not worker.run_one(queue.claim("w1"))
        assert queue.get(record.job_id).state == "failed"

    def test_unexpected_error_requeues(self, queue):
        record, _ = queue.enqueue("boom", {})

        def explode(worker, job):
            raise RuntimeError("transient")

        worker = JobWorker(queue, worker_id="w1", handlers={"boom": explode})
        assert not worker.run_one(queue.claim("w1"))
        after = queue.get(record.job_id)
        assert after.state == "queued"  # retryable: requeued with backoff
        assert "transient" in after.error
        assert worker.jobs_failed == 1

    def test_loop_counts_and_idle_exit(self, queue):
        for n in range(3):
            queue.enqueue("sleep", {"seconds": 0, "n": n})
        worker = JobWorker(
            queue, worker_id="w1", poll_seconds=0.01, idle_exit_seconds=0.05
        )
        stats = worker.run()
        assert stats == {"done": 3, "failed": 0}
        assert queue.counts_by_state()["done"] == 3

    def test_stop_event_releases_claim(self, queue):
        record, _ = queue.enqueue("sleep", {"seconds": 30})
        stop = threading.Event()
        worker = JobWorker(queue, worker_id="w1", stop_event=stop)
        claimed = queue.claim("w1")
        stop.set()
        # The loop's post-claim stop check releases rather than runs.
        assert queue.release(claimed.job_id, "w1")
        after = queue.get(record.job_id)
        assert after.state == "queued"
        assert after.attempts == 0


class TestTraceStitching:
    def test_worker_trace_carries_enqueuers_trace_id(self, queue):
        state = sample_state()
        trace_id = "f" * 32
        queue.enqueue(
            "analyze",
            analyze_payload(state, AnalysisConfig()),
            trace_id=trace_id,
        )
        sink = InMemorySink()
        worker = JobWorker(queue, worker_id="w1", sinks=[sink])
        assert worker.run_one(queue.claim("w1"))
        assert sink.traces, "worker should emit a jobs.run trace"
        root = sink.traces[-1]
        assert root.trace_id == trace_id
        assert root.name == "jobs.run"
        assert root.attributes["attempt"] == 1
        assert root.attributes["worker"] == "w1"

    def test_generated_trace_id_when_enqueued_without_one(self, queue):
        queue.enqueue("sleep", {"seconds": 0})
        sink = InMemorySink()
        worker = JobWorker(queue, worker_id="w1", sinks=[sink])
        assert worker.run_one(queue.claim("w1"))
        assert sink.traces[-1].trace_id  # fresh id, still correlated
