"""Crash-recovery properties of the job plane.

The contract under test (ISSUE: job-plane crash recovery):

* a worker SIGKILLed mid-lease stops heartbeating, the reaper requeues
  the job **exactly once**, and a healthy worker's retry completes it;
* the retried attempt of an ``analyze`` job produces a byte-identical
  report (after the repo's standard run-specific-key normalisation);
* no job is ever double-completed, even when a slow first holder races
  the retry's holder, and even under many concurrent claimers with a
  reaper sweeping at the same time.

The SIGKILL test uses a real subprocess (the point is that *nothing*
runs after the kill — no atexit, no finally).  The deterministic tests
simulate the dead worker with an unheartbeated claim and explicit
``now`` values, so they need no sleeps and no real clock.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.engine import AnalysisConfig, analyze
from repro.core.state import RbacState
from repro.io.jsonio import state_to_dict
from repro.jobs import JobQueue, JobWorker

SRC = Path(__file__).resolve().parents[2] / "src"

#: Inline worker entrypoint for the subprocess test: short lease so the
#: reaper notices the kill quickly, tight poll so the claim is fast.
WORKER_SCRIPT = """
import sys
from repro.jobs import run_worker

run_worker(sys.argv[1], worker_id=sys.argv[2], lease_seconds=1.0,
           poll_seconds=0.05)
"""


def sample_state() -> RbacState:
    return RbacState.build(
        users=[f"u{i}" for i in range(6)],
        roles=[f"r{i}" for i in range(5)],
        permissions=[f"p{i}" for i in range(6)],
        user_assignments=[
            ("r0", "u0"), ("r0", "u1"), ("r1", "u0"), ("r1", "u1"),
            ("r2", "u2"), ("r3", "u3"),
        ],
        permission_assignments=[
            ("r0", "p0"), ("r0", "p1"), ("r1", "p0"), ("r1", "p1"),
            ("r2", "p2"), ("r3", "p3"),
        ],
    )


def normalized(report_dict: dict) -> str:
    payload = dict(report_dict)
    for key in ("timings_seconds", "total_seconds", "metrics"):
        payload.pop(key, None)
    return json.dumps(payload, sort_keys=True)


def wait_until(predicate, timeout: float = 20.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s")


class TestSigkillMidLease:
    def test_killed_worker_is_reaped_exactly_once_and_retried(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        queue = JobQueue(path, lease_seconds=1.0)
        record, _ = queue.enqueue("sleep", {"seconds": 120})

        process = subprocess.Popen(
            [sys.executable, "-c", WORKER_SCRIPT, str(path), "victim:worker"],
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        try:
            # Wait for the subprocess to take the lease, then kill it
            # mid-sleep: SIGKILL means no cleanup code runs at all.
            wait_until(
                lambda: (queue.get(record.job_id) or record).state == "leased"
            )
            assert queue.get(record.job_id).leased_by == "victim:worker"
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)

            # Sweep until the lease expires; count every requeue we see.
            requeues: list[str] = []

            def sweep():
                requeues.extend(queue.reap_expired()["requeued"])
                return requeues

            wait_until(sweep, timeout=20.0)
            # A few extra sweeps must not requeue it again.
            for _ in range(3):
                queue.reap_expired()
            assert requeues == [record.job_id]
            assert queue.counters()["jobs.lease_expired"] == 1

            requeued = wait_until(
                lambda: queue.claim("rescuer", now=time.time() + 60)
            )
            assert requeued.job_id == record.job_id
            assert requeued.attempts == 2  # the kill burned attempt 1
            assert queue.complete(record.job_id, "rescuer", {"rescued": True})
            assert queue.get(record.job_id).state == "done"
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
            queue.close()


class TestRetryParity:
    def test_retry_after_crash_produces_byte_identical_report(self, tmp_path):
        state = sample_state()
        config = AnalysisConfig()
        inline = analyze(state, config)

        queue = JobQueue(tmp_path / "jobs.sqlite", lease_seconds=10.0)
        record, _ = queue.enqueue(
            "analyze",
            {
                "state": state_to_dict(state),
                "config": config.to_dict(),
                "fingerprint": state.fingerprint(),
                "mutation_seq": 0,
            },
        )
        # Attempt 1 "crashes": claimed, never heartbeated, lease expires.
        t0 = time.time()
        dead = queue.claim("w-dead", now=t0)
        assert dead is not None
        swept = queue.reap_expired(now=dead.lease_expires_at + 1)
        assert swept["requeued"] == [record.job_id]

        # Attempt 2 runs for real and must reproduce the inline bytes.
        worker = JobWorker(queue, worker_id="w-live")
        retried = queue.claim(
            "w-live", now=dead.lease_expires_at + queue.backoff_cap_seconds + 1
        )
        assert retried.attempts == 2
        assert worker.run_one(retried)
        result = queue.get(record.job_id).result
        assert normalized(result["report"]) == normalized(inline.to_dict())
        queue.close()


class TestNoDoubleComplete:
    def test_slow_first_holder_cannot_overwrite_the_retry(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.sqlite", lease_seconds=10.0)
        record, _ = queue.enqueue("sleep", {"seconds": 0})
        t0 = time.time()
        first = queue.claim("w-slow", now=t0)
        queue.reap_expired(now=first.lease_expires_at + 1)
        second = queue.claim(
            "w-fast", now=first.lease_expires_at + queue.backoff_cap_seconds + 1
        )
        assert second is not None
        assert queue.complete(record.job_id, "w-fast", {"winner": "w-fast"})
        # The original holder wakes up late and tries to report: refused.
        assert not queue.complete(record.job_id, "w-slow", {"winner": "w-slow"})
        final = queue.get(record.job_id)
        assert final.result == {"winner": "w-fast"}
        assert queue.counters()["jobs.completed"] == 1
        assert queue.counters()["jobs.stale_completions"] == 1
        queue.close()

    def test_concurrent_claimers_with_reaper_complete_each_job_once(
        self, tmp_path
    ):
        queue = JobQueue(
            tmp_path / "jobs.sqlite", lease_seconds=30.0, backoff_seconds=0.0
        )
        n_jobs = 12
        for n in range(n_jobs):
            queue.enqueue("sleep", {"n": n})
        completions: list[str] = []
        lock = threading.Lock()
        stop = threading.Event()

        def claimer(worker_id: str) -> None:
            while not stop.is_set():
                record = queue.claim(worker_id)
                if record is None:
                    return
                if queue.complete(record.job_id, worker_id, {"by": worker_id}):
                    with lock:
                        completions.append(record.job_id)

        def reaper() -> None:
            while not stop.is_set():
                queue.reap_expired()
                time.sleep(0.005)

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",)) for i in range(4)
        ]
        reap_thread = threading.Thread(target=reaper)
        reap_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        reap_thread.join()

        assert len(completions) == n_jobs
        assert len(set(completions)) == n_jobs  # exactly once each
        assert queue.counts_by_state()["done"] == n_jobs
        assert queue.counters()["jobs.completed"] == n_jobs
        assert queue.counters().get("jobs.stale_completions", 0) == 0
        queue.close()
