"""Unit tests for the union-find utility."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import DisjointSet


class TestBasics:
    def test_new_set_has_singletons(self):
        ds = DisjointSet(5)
        assert len(ds) == 5
        assert ds.n_components == 5
        for i in range(5):
            assert ds.find(i) == i

    def test_zero_size_is_allowed(self):
        ds = DisjointSet(0)
        assert len(ds) == 0
        assert ds.groups() == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)

    def test_union_merges(self):
        ds = DisjointSet(4)
        assert ds.union(0, 1) is True
        assert ds.connected(0, 1)
        assert not ds.connected(0, 2)
        assert ds.n_components == 3

    def test_union_idempotent(self):
        ds = DisjointSet(3)
        assert ds.union(0, 1) is True
        assert ds.union(1, 0) is False
        assert ds.n_components == 2

    def test_transitive_connection(self):
        ds = DisjointSet(4)
        ds.union(0, 1)
        ds.union(1, 2)
        assert ds.connected(0, 2)
        assert not ds.connected(0, 3)


class TestGroups:
    def test_groups_only_nontrivial_by_default(self):
        ds = DisjointSet(5)
        ds.union(1, 3)
        assert ds.groups() == [[1, 3]]

    def test_groups_min_size_one_includes_singletons(self):
        ds = DisjointSet(3)
        ds.union(0, 2)
        assert ds.groups(min_size=1) == [[0, 2], [1]]

    def test_groups_sorted_by_smallest_member(self):
        ds = DisjointSet(6)
        ds.union(4, 5)
        ds.union(0, 3)
        groups = ds.groups()
        assert groups == [[0, 3], [4, 5]]

    def test_members_sorted_ascending(self):
        ds = DisjointSet(5)
        ds.union(4, 2)
        ds.union(2, 0)
        assert ds.groups() == [[0, 2, 4]]


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=50),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=49),
                st.integers(min_value=0, max_value=49),
            ),
            max_size=100,
        ),
    )
    def test_components_partition_the_universe(self, n, pairs):
        ds = DisjointSet(n)
        for a, b in pairs:
            if a < n and b < n:
                ds.union(a, b)
        groups = ds.groups(min_size=1)
        flattened = sorted(x for group in groups for x in group)
        assert flattened == list(range(n))
        assert len(groups) == ds.n_components

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ),
            max_size=60,
        )
    )
    def test_connectivity_matches_naive_reachability(self, pairs):
        n = 20
        ds = DisjointSet(n)
        adjacency = {i: set() for i in range(n)}
        for a, b in pairs:
            ds.union(a, b)
            adjacency[a].add(b)
            adjacency[b].add(a)

        def reachable(start: int) -> set[int]:
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            return seen

        for i in range(n):
            component = reachable(i)
            for j in range(n):
                assert ds.connected(i, j) == (j in component)
