"""Unit tests for the experiment runners (tiny sizes — correctness only).

The actual figure-scale runs live in ``benchmarks/``; here we verify the
runners' plumbing: right workload parameters, right series structure,
ground truth recovered, counts table shapes.
"""

from __future__ import annotations

import pytest

from repro.benchharness import (
    METHOD_LABELS,
    run_real_dataset,
    run_roles_sweep,
    run_users_sweep,
)
from repro.datagen import OrgProfile
from repro.exceptions import ConfigurationError


class TestSweeps:
    def test_users_sweep_structure(self):
        result = run_users_sweep(
            [50, 100],
            n_roles=60,
            methods=("cooccurrence", "hash"),
            repeats=2,
        )
        assert result.name == "fig2_users_sweep"
        assert result.x_label == "users"
        assert "roles=60" in result.fixed_label
        assert len(result.points) == 4  # 2 sizes x 2 methods
        assert {p.x for p in result.points} == {50, 100}
        assert result.methods() == ["cooccurrence", "hash"]

    def test_series_ordered_by_x(self):
        result = run_users_sweep(
            [100, 50], n_roles=40, methods=("cooccurrence",), repeats=1
        )
        series = result.series("cooccurrence")
        assert [p.x for p in series] == [50, 100]

    def test_roles_sweep_structure(self):
        result = run_roles_sweep(
            [40, 80],
            n_users=50,
            methods=("cooccurrence",),
            repeats=1,
        )
        assert result.name == "fig3_roles_sweep"
        assert result.x_label == "roles"

    def test_all_methods_find_the_same_group_count(self):
        result = run_roles_sweep(
            [120],
            n_users=100,
            methods=("cooccurrence", "dbscan", "hash"),
            repeats=1,
            seed=3,
        )
        counts = {p.method: p.n_groups for p in result.points}
        assert len(set(counts.values())) == 1
        assert counts["cooccurrence"] > 0  # clusters were planted

    def test_stats_have_requested_repeats(self):
        result = run_users_sweep(
            [60], n_roles=30, methods=("cooccurrence",), repeats=3
        )
        assert result.points[0].stats.n == 3

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            run_users_sweep([], n_roles=10)

    def test_method_labels_cover_paper_methods(self):
        assert set(METHOD_LABELS) >= {"cooccurrence", "dbscan", "hnsw"}


class TestRealDataset:
    @pytest.fixture(scope="class")
    def result(self):
        return run_real_dataset(OrgProfile.small(divisor=200, seed=5))

    def test_measured_equals_expected(self, result):
        assert result.measured_counts == result.expected_counts

    def test_count_rows_shape(self, result):
        rows = result.count_rows()
        assert len(rows) == len(result.measured_counts)
        for metric, expected, measured in rows:
            assert expected == measured, metric

    def test_consolidation_applied(self, result):
        assert result.consolidation["applied_roles_removed"] > 0
        assert result.reduction_description

    def test_timings_recorded(self, result):
        assert result.analysis_seconds > 0
        assert "duplicate_roles" in result.detector_timings

    def test_without_consolidation(self):
        result = run_real_dataset(
            OrgProfile.small(divisor=400, seed=6), apply_consolidation=False
        )
        assert "applied_roles_removed" not in result.consolidation
        assert result.reduction_description == ""


class TestDensitySweep:
    def test_structure_and_ground_truth(self):
        from repro.benchharness import run_density_sweep

        result = run_density_sweep(
            [0.02, 0.10],
            n_roles=80,
            n_cols=120,
            methods=("cooccurrence",),
            repeats=1,
        )
        assert result.name == "density_sweep"
        assert result.x_label == "density_permille"
        assert {p.x for p in result.points} == {20, 100}
        assert all(p.n_groups > 0 for p in result.points)

    def test_empty_densities_rejected(self):
        from repro.benchharness import run_density_sweep
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_density_sweep([])
