"""Unit tests for the timing harness."""

from __future__ import annotations

import pytest

from repro.benchharness import TimingStats, time_call
from repro.exceptions import ConfigurationError


class TestTimingStats:
    def test_requires_runs(self):
        with pytest.raises(ConfigurationError):
            TimingStats(())

    def test_single_run(self):
        stats = TimingStats((2.0,))
        assert stats.mean == 2.0
        assert stats.std == 0.0
        assert stats.n == 1

    def test_known_mean_std(self):
        stats = TimingStats((1.0, 3.0))
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_str_format(self):
        text = str(TimingStats((0.5, 0.5)))
        assert "0.500s" in text
        assert "n=2" in text


class TestTimeCall:
    def test_repeats_and_result(self):
        calls = []

        def work():
            calls.append(1)
            return "value"

        stats, result = time_call(work, repeats=4)
        assert len(calls) == 4
        assert stats.n == 4
        assert result == "value"
        assert all(duration >= 0 for duration in stats.runs)

    def test_default_five_repeats_matches_paper_protocol(self):
        stats, _ = time_call(lambda: None)
        assert stats.n == 5

    def test_repeats_validated(self):
        with pytest.raises(ConfigurationError):
            time_call(lambda: None, repeats=0)

    def test_measures_real_time(self):
        import time

        stats, _ = time_call(lambda: time.sleep(0.01), repeats=2)
        assert stats.mean >= 0.009
