"""Unit tests for figure/table rendering."""

from __future__ import annotations

import pytest

from repro.benchharness import (
    render_real_dataset_table,
    render_series_csv,
    render_series_table,
    run_real_dataset,
    run_users_sweep,
)
from repro.datagen import OrgProfile, PlantedCounts


@pytest.fixture(scope="module")
def sweep():
    return run_users_sweep(
        [40, 80], n_roles=30, methods=("cooccurrence", "hash"), repeats=2
    )


class TestSeriesTable:
    def test_contains_labels_and_sizes(self, sweep):
        text = render_series_table(sweep)
        assert "fig2_users_sweep" in text
        assert "Our algorithm (co-occurrence)" in text
        assert "Hash grouping (ablation)" in text
        assert " 40" in text and " 80" in text

    def test_one_row_per_x(self, sweep):
        lines = render_series_table(sweep).splitlines()
        data_lines = [l for l in lines[2:] if l.strip()]
        assert len(data_lines) == 2


class TestSeriesCsv:
    def test_header_and_rows(self, sweep):
        csv_text = render_series_csv(sweep)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "users,method,mean_seconds,std_seconds,n_groups"
        assert len(lines) == 1 + 4

    def test_rows_parse_as_numbers(self, sweep):
        for line in render_series_csv(sweep).strip().splitlines()[1:]:
            x, method, mean, std, n_groups = line.split(",")
            assert int(x) in (40, 80)
            assert float(mean) >= 0
            assert float(std) >= 0
            assert int(n_groups) >= 0


class TestRealDatasetTable:
    def test_planted_measured_columns(self):
        result = run_real_dataset(OrgProfile.small(divisor=400, seed=6))
        text = render_real_dataset_table(result)
        assert "planted" in text
        assert "measured" in text
        assert "roles_same_users" in text
        assert "consolidation could remove" in text

    def test_paper_column_optional(self):
        result = run_real_dataset(
            OrgProfile.small(divisor=400, seed=6), apply_consolidation=False
        )
        with_paper = render_real_dataset_table(
            result, paper_counts=PlantedCounts().as_dict()
        )
        assert "paper" in with_paper
        assert "180000" in with_paper  # the paper's standalone permissions


class TestAsciiChart:
    def test_renders_markers_and_legend(self, sweep):
        from repro.benchharness import render_ascii_chart

        chart = render_ascii_chart(sweep)
        assert "log10(seconds)" in chart
        assert "o = " in chart
        assert "* = " in chart
        assert "users: 40 … 80" in chart

    def test_empty_sweep(self):
        from repro.benchharness import render_ascii_chart
        from repro.benchharness.experiments import SweepResult

        empty = SweepResult(name="x", x_label="users", fixed_label="roles=1")
        assert "no data" in render_ascii_chart(empty)
