"""Unit tests for the hierarchical organisation generator."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.datagen import HierarchicalOrgProfile, generate_hierarchical_org
from repro.exceptions import ConfigurationError
from repro.hierarchy import (
    find_redundant_edges,
    find_void_edges,
    flatten,
)


class TestProfileValidation:
    def test_plantings_bounded_by_departments(self):
        with pytest.raises(ConfigurationError, match="cannot exceed"):
            HierarchicalOrgProfile(n_departments=2, redundant_edges=3)

    def test_minimum_users(self):
        with pytest.raises(ConfigurationError):
            HierarchicalOrgProfile(users_per_department=2)


class TestGroundTruth:
    @pytest.fixture(scope="class")
    def org(self):
        return generate_hierarchical_org(HierarchicalOrgProfile(seed=5))

    def test_shape(self, org):
        profile = org.profile
        # 3 ladder roles per department + placeholders + shadows
        expected_roles = (
            3 * profile.n_departments
            + profile.void_edges
            + profile.hidden_duplicate_pairs
        )
        assert org.state.n_roles == expected_roles

    def test_planted_redundant_edges_found_exactly(self, org):
        found = {
            (f.senior, f.junior) for f in find_redundant_edges(org.hierarchy)
        }
        assert found == set(org.planted_redundant_edges)

    def test_planted_void_edges_found(self, org):
        found = {
            (f.senior, f.junior)
            for f in find_void_edges(org.state, org.hierarchy)
        }
        # planted void edges are all found; planted *redundant* edges are
        # void too (lead already reaches member's permissions via senior)
        assert set(org.planted_void_edges) <= found
        extras = found - set(org.planted_void_edges)
        assert extras <= set(org.planted_redundant_edges)

    def test_hidden_duplicates_invisible_flat_visible_flattened(self, org):
        flat_report = analyze(org.state)
        flat_groups = {
            frozenset(f.entity_ids)
            for f in flat_report.findings
            if f.type.value == "duplicate_roles"
            and f.axis is not None
            and f.axis.value == "permissions"
        }
        for senior, shadow in org.planted_hidden_duplicates:
            assert frozenset((senior, shadow)) not in flat_groups

        flattened_report = analyze(flatten(org.state, org.hierarchy))
        flattened_groups = {
            frozenset(f.entity_ids)
            for f in flattened_report.findings
            if f.type.value == "duplicate_roles"
            and f.axis is not None
            and f.axis.value == "permissions"
        }
        for senior, shadow in org.planted_hidden_duplicates:
            assert any(
                {senior, shadow} <= set(group)
                for group in flattened_groups
            )

    def test_deterministic(self):
        profile = HierarchicalOrgProfile(seed=6)
        a = generate_hierarchical_org(profile)
        b = generate_hierarchical_org(profile)
        assert a.state == b.state
        assert list(a.hierarchy.edges()) == list(b.hierarchy.edges())

    def test_zero_plantings(self):
        org = generate_hierarchical_org(
            HierarchicalOrgProfile(
                redundant_edges=0, void_edges=0,
                hidden_duplicate_pairs=0, seed=7,
            )
        )
        assert find_redundant_edges(org.hierarchy) == []
        assert find_void_edges(org.state, org.hierarchy) == []
