"""Unit tests for the §IV-A matrix generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grouping import CooccurrenceGroupFinder
from repro.datagen import MatrixSpec, generate_matrix
from repro.exceptions import ConfigurationError


class TestSpecValidation:
    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            MatrixSpec(n_roles=-1, n_cols=10)
        with pytest.raises(ConfigurationError):
            MatrixSpec(n_roles=10, n_cols=0)

    def test_bad_cluster_proportion(self):
        with pytest.raises(ConfigurationError):
            MatrixSpec(n_roles=10, n_cols=10, cluster_proportion=1.5)

    def test_bad_max_cluster_size(self):
        with pytest.raises(ConfigurationError):
            MatrixSpec(n_roles=10, n_cols=10, max_cluster_size=1)

    def test_bad_density(self):
        with pytest.raises(ConfigurationError):
            MatrixSpec(n_roles=10, n_cols=10, row_density=0.0)

    def test_density_too_high_for_columns(self):
        with pytest.raises(ConfigurationError, match="row_density too high"):
            generate_matrix(MatrixSpec(n_roles=4, n_cols=4, row_density=0.99))


class TestGeneration:
    def test_shape(self):
        generated = generate_matrix(
            MatrixSpec(n_roles=50, n_cols=80, row_density=0.1)
        )
        assert generated.matrix.shape == (50, 80)

    def test_deterministic_per_seed(self):
        spec = MatrixSpec(n_roles=40, n_cols=60, row_density=0.1, seed=5)
        a = generate_matrix(spec)
        b = generate_matrix(spec)
        assert (a.matrix != b.matrix).nnz == 0
        assert a.groups == b.groups

    def test_different_seeds_differ(self):
        base = dict(n_roles=40, n_cols=60, row_density=0.1)
        a = generate_matrix(MatrixSpec(seed=1, **base))
        b = generate_matrix(MatrixSpec(seed=2, **base))
        assert (a.matrix != b.matrix).nnz > 0

    def test_cluster_proportion_respected(self):
        generated = generate_matrix(
            MatrixSpec(
                n_roles=200, n_cols=300, cluster_proportion=0.3,
                row_density=0.05,
            )
        )
        target = int(200 * 0.3)
        assert target - 10 <= generated.n_clustered_rows <= target

    def test_zero_cluster_proportion_all_unique(self):
        generated = generate_matrix(
            MatrixSpec(
                n_roles=100, n_cols=200, cluster_proportion=0.0,
                row_density=0.05,
            )
        )
        assert generated.groups == []
        assert CooccurrenceGroupFinder().find_groups(generated.matrix, 0) == []

    def test_max_cluster_size_respected(self):
        generated = generate_matrix(
            MatrixSpec(
                n_roles=300, n_cols=400, cluster_proportion=0.5,
                max_cluster_size=4, row_density=0.03,
            )
        )
        assert generated.groups
        assert max(len(g) for g in generated.groups) <= 4
        assert min(len(g) for g in generated.groups) >= 2

    def test_no_empty_rows(self):
        generated = generate_matrix(
            MatrixSpec(n_roles=100, n_cols=150, row_density=0.02)
        )
        row_sums = np.asarray(generated.matrix.sum(axis=1)).ravel()
        assert (row_sums > 0).all()


class TestGroundTruth:
    def test_exact_groups_found_by_finder(self):
        generated = generate_matrix(
            MatrixSpec(n_roles=250, n_cols=300, row_density=0.04, seed=9)
        )
        found = CooccurrenceGroupFinder().find_groups(generated.matrix, 0)
        assert found == generated.groups

    def test_similar_groups_found_by_finder(self):
        generated = generate_matrix(
            MatrixSpec(
                n_roles=250, n_cols=300, row_density=0.04,
                differences=1, seed=10,
            )
        )
        found = CooccurrenceGroupFinder().find_groups(generated.matrix, 1)
        assert found == generated.groups

    def test_similar_members_at_exact_distance(self):
        generated = generate_matrix(
            MatrixSpec(
                n_roles=60, n_cols=120, row_density=0.05,
                differences=2, seed=11,
            )
        )
        dense = generated.dense
        for group in generated.groups:
            # each cluster is a star: base plus members at distance 2
            base = group[0]
            popcounts = [dense[m].sum() for m in group]
            base = group[int(np.argmin(popcounts))]
            for member in group:
                if member == base:
                    continue
                distance = int(np.count_nonzero(dense[base] != dense[member]))
                assert distance == 2

    def test_groups_ordered_canonically(self):
        generated = generate_matrix(
            MatrixSpec(n_roles=150, n_cols=200, row_density=0.05, seed=12)
        )
        firsts = [g[0] for g in generated.groups]
        assert firsts == sorted(firsts)
        for group in generated.groups:
            assert group == sorted(group)
