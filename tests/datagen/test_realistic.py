"""Unit tests for the departmental organisation generator."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.exceptions import ConfigurationError


class TestProfileValidation:
    def test_needs_users(self):
        with pytest.raises(ConfigurationError):
            DepartmentProfile(n_departments=10, n_users=5)

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            DepartmentProfile(duplication_rate=1.5)
        with pytest.raises(ConfigurationError):
            DepartmentProfile(stale_user_rate=1.0)


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def state(self):
        return generate_departmental_org(DepartmentProfile(seed=4))

    def test_sizes_plausible(self, state):
        profile = DepartmentProfile()
        assert state.n_users == profile.n_users
        assert state.n_roles > profile.n_departments  # at least 1 per dept
        assert state.n_permissions > 20  # shared namespace at minimum

    def test_departments_annotated(self, state):
        departments = {
            state.get_user(u).attributes.get("department")
            for u in state.user_ids()
            if not state.get_user(u).attributes.get("stale")
        }
        assert len(departments) == DepartmentProfile().n_departments

    def test_baseline_roles_cover_active_users(self, state):
        users = state.users_of_role("role-baseline-00")
        stale = sum(
            1
            for u in state.user_ids()
            if state.get_user(u).attributes.get("stale")
        )
        assert len(users) == state.n_users - stale

    def test_deterministic(self):
        profile = DepartmentProfile(seed=5)
        assert (
            generate_departmental_org(profile)
            == generate_departmental_org(profile)
        )

    def test_drift_produces_inefficiencies(self, state):
        """The generator's whole point: organic duplication shows up in
        the analysis without being planted count-exactly."""
        counts = analyze(state).counts()
        assert counts["roles_same_permissions"] > 0
        assert counts["standalone_users"] > 0
        assert counts["standalone_permissions"] > 0

    def test_copy_of_attribute_points_at_real_role(self, state):
        copies = [
            role_id
            for role_id in state.role_ids()
            if "copy_of" in state.get_role(role_id).attributes
        ]
        assert copies
        for role_id in copies:
            original = state.get_role(role_id).attributes["copy_of"]
            assert state.has_role(original)
            # drifted copy shares the original's user set
            assert state.users_of_role(role_id) == state.users_of_role(
                original
            )
