"""Unit tests for surgical inefficiency planting."""

from __future__ import annotations

import pytest

from repro.core import InefficiencyType, analyze
from repro.core.state import RbacState
from repro.datagen import (
    add_role_twin,
    add_similar_role,
    add_single_assignment_role,
    add_standalone_permission,
    add_standalone_role,
    add_standalone_user,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2", "u3"],
        roles=["r1"],
        permissions=["p1", "p2"],
        user_assignments=[("r1", "u1"), ("r1", "u2")],
        permission_assignments=[("r1", "p1"), ("r1", "p2")],
    )


class TestStandalonePlanting:
    def test_explicit_id(self, state):
        assert add_standalone_user(state, "ghost") == "ghost"
        assert state.has_user("ghost")
        assert state.roles_of_user("ghost") == frozenset()

    def test_generated_ids_unique(self, state):
        first = add_standalone_user(state)
        second = add_standalone_user(state)
        assert first != second

    def test_all_three_kinds(self, state):
        planted = {
            add_standalone_user(state),
            add_standalone_permission(state),
            add_standalone_role(state),
        }
        findings = analyze(state).of_type(InefficiencyType.STANDALONE_NODE)
        detected = {f.entity_ids[0] for f in findings}
        assert planted <= detected
        # u3 is unassigned in the fixture, so it is detected as well.
        assert detected == planted | {"u3"}


class TestSingleAssignment:
    def test_role_with_one_user(self, state):
        role_id = add_single_assignment_role(
            state, "u3", permission_ids=("p1",)
        )
        assert state.users_of_role(role_id) == {"u3"}
        counts = analyze(state).counts()
        assert counts["single_user_roles"] == 1
        assert counts["roles_without_permissions"] == 0


class TestTwins:
    def test_twin_copies_both_sides(self, state):
        twin = add_role_twin(state, "r1")
        assert state.users_of_role(twin) == state.users_of_role("r1")
        assert state.permissions_of_role(twin) == state.permissions_of_role(
            "r1"
        )

    def test_twin_detected_as_duplicate(self, state):
        add_role_twin(state, "r1")
        counts = analyze(state).counts()
        assert counts["roles_same_users"] == 2
        assert counts["roles_same_permissions"] == 2


class TestSimilar:
    def test_requires_exactly_one_axis(self, state):
        with pytest.raises(ConfigurationError):
            add_similar_role(state, "r1")
        with pytest.raises(ConfigurationError):
            add_similar_role(
                state, "r1", extra_user_ids=("u3",),
                extra_permission_ids=("p1",),
            )

    def test_similar_on_users(self, state):
        similar = add_similar_role(state, "r1", extra_user_ids=("u3",))
        assert state.users_of_role(similar) == {"u1", "u2", "u3"}
        counts = analyze(state).counts()
        assert counts["roles_similar_users"] == 2
