"""Unit tests for the planted-organisation generator (§IV-B stand-in)."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.datagen import OrgProfile, PlantedCounts, generate_org
from repro.exceptions import ConfigurationError


class TestPlantedCounts:
    def test_defaults_match_paper(self):
        counts = PlantedCounts()
        assert counts.standalone_users == 500
        assert counts.standalone_permissions == 180_000
        assert counts.roles_without_users == 12_000
        assert counts.roles_without_permissions == 1_000
        assert counts.single_user_roles == 4_000
        assert counts.single_permission_roles == 21_000
        assert counts.roles_same_users == 8_000
        assert counts.roles_same_permissions == 2_000
        assert counts.roles_similar_users == 6_000
        assert counts.roles_similar_permissions == 4_000

    def test_scaled_keeps_pairs_even(self):
        scaled = PlantedCounts(roles_same_users=10).scaled(4)
        assert scaled.roles_same_users % 2 == 0

    def test_as_dict_keys_match_report_counts(self, paper_example):
        report_keys = set(analyze(paper_example).counts())
        assert set(PlantedCounts().as_dict()) == report_keys


class TestProfileValidation:
    def test_paper_scale_profile(self):
        profile = OrgProfile.paper_scale()
        blocks = profile.block_sizes()
        assert sum(blocks.values()) == 50_000
        assert blocks["normal"] == 10_000
        assert blocks["extra_single_permission"] == 7_000
        assert blocks["extra_single_user"] == 0

    def test_odd_pair_count_rejected(self):
        profile = OrgProfile(
            n_users=100, n_permissions=100, n_roles=50,
            planted=PlantedCounts(
                standalone_permissions=0, roles_without_users=0,
                roles_without_permissions=0, single_user_roles=0,
                single_permission_roles=0, roles_same_users=3,
                roles_same_permissions=0, roles_similar_users=0,
                roles_similar_permissions=0, standalone_users=0,
            ),
        )
        with pytest.raises(ConfigurationError, match="must be even"):
            profile.block_sizes()

    def test_role_budget_overflow_rejected(self):
        profile = OrgProfile(
            n_users=100, n_permissions=100, n_roles=5,
            planted=PlantedCounts().scaled(100),
        )
        with pytest.raises(ConfigurationError, match="exceed n_roles"):
            profile.block_sizes()

    def test_standalone_roles_planting_rejected(self):
        profile = OrgProfile(
            n_users=10, n_permissions=10, n_roles=10,
            planted=PlantedCounts(
                standalone_users=0, standalone_permissions=0,
                standalone_roles=1, roles_without_users=0,
                roles_without_permissions=0, single_user_roles=0,
                single_permission_roles=0, roles_same_users=0,
                roles_same_permissions=0, roles_similar_users=0,
                roles_similar_permissions=0,
            ),
        )
        with pytest.raises(ConfigurationError, match="standalone_roles"):
            profile.block_sizes()

    def test_set_size_minimum_enforced(self):
        profile = OrgProfile(
            n_users=100, n_permissions=100, n_roles=10,
            planted=PlantedCounts().scaled(10_000),
            user_set_size=(2, 4),
        )
        with pytest.raises(ConfigurationError, match=">= 3"):
            profile.block_sizes()


class TestGeneratedOrg:
    @pytest.fixture(scope="class")
    def org(self):
        return generate_org(OrgProfile.small(divisor=100, seed=3))

    def test_totals(self, org):
        assert org.state.n_users == 900
        assert org.state.n_roles == 500
        assert org.state.n_permissions == 3500

    def test_every_planted_count_detected_exactly(self, org):
        report = analyze(org.state)
        assert report.counts() == org.expected_counts()

    def test_deterministic(self):
        profile = OrgProfile.small(divisor=200, seed=7)
        assert generate_org(profile).state == generate_org(profile).state

    def test_seeds_differ(self):
        a = generate_org(OrgProfile.small(divisor=200, seed=1)).state
        b = generate_org(OrgProfile.small(divisor=200, seed=2)).state
        assert a != b

    def test_role_categories_annotated(self, org):
        categories = {
            org.state.get_role(role_id).attributes["category"]
            for role_id in org.state.role_ids()
        }
        assert "normal" in categories
        assert "same_users" in categories
        assert "no_users" in categories

    def test_full_coverage_of_usable_entities(self, org):
        """Only the planted standalone entities are unassigned."""
        report = analyze(org.state)
        counts = report.counts()
        assert counts["standalone_users"] == org.expected.standalone_users
        assert (
            counts["standalone_permissions"]
            == org.expected.standalone_permissions
        )

    @pytest.mark.parametrize("divisor", [50, 400])
    def test_other_scales_also_exact(self, divisor):
        org = generate_org(OrgProfile.small(divisor=divisor, seed=13))
        report = analyze(org.state)
        assert report.counts() == org.expected_counts()
