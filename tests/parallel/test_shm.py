"""Tests for the shared-memory data plane and the reusable worker pool.

Covers the zero-copy contract end to end: publish/attach round-trips,
read-only views, unlink-on-close with no ``/dev/shm`` leak, graceful
degradation (:class:`SharedMemoryUnavailable` → pickled fallback),
:class:`WorkerPool` reuse/fallback/segment-registry semantics, the
pid-guarded ambient pool, and the acceptance criterion that per-task
scan payloads no longer carry the matrix arrays.
"""

from __future__ import annotations

import logging
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.parallel import (
    SegmentHandle,
    SharedMemoryUnavailable,
    WorkerPool,
    attach,
    current_pool,
    publish,
    use_pool,
)
from repro.parallel import shm as shm_module


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        probe = shm_module._attach_untracked(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


class TestPublishAttach:
    def test_round_trip_multiple_dtypes(self):
        rng = np.random.default_rng(0)
        arrays = {
            "floats": rng.random((7, 5)),
            "ints": rng.integers(0, 100, size=40, dtype=np.int64),
            "words": rng.integers(0, 2**63, size=(3, 4), dtype=np.uint64),
            "empty": np.empty(0, dtype=np.int32),
        }
        with publish(arrays) as handle:
            attached = attach(handle.manifest)
            try:
                for key, original in arrays.items():
                    view = attached.views[key]
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    assert np.array_equal(view, original)
            finally:
                attached.close()

    def test_views_are_read_only(self):
        with publish({"a": np.arange(4)}) as handle:
            attached = attach(handle.manifest)
            with pytest.raises(ValueError):
                attached.views["a"][0] = 9
            attached.close()

    def test_manifest_is_tiny_and_picklable(self):
        big = np.zeros(1_000_000, dtype=np.int64)
        with publish({"big": big}) as handle:
            payload = pickle.dumps(handle.manifest)
            assert len(payload) < 1024
            restored = pickle.loads(payload)
            assert restored.arrays["big"].shape == (1_000_000,)

    def test_close_unlinks_segment(self):
        handle = publish({"a": np.arange(8)})
        name = handle.name
        assert _segment_exists(name)
        handle.close()
        assert not _segment_exists(name)
        handle.close()  # idempotent

    def test_alignment(self):
        # An odd-sized array must not misalign its successor.
        arrays = {
            "odd": np.zeros(3, dtype=np.uint8),
            "wide": np.arange(5, dtype=np.float64),
        }
        with publish(arrays) as handle:
            assert handle.manifest.arrays["wide"].offset % 8 == 0
            attached = attach(handle.manifest)
            assert np.array_equal(attached.views["wide"], arrays["wide"])
            attached.close()

    def test_publish_failure_raises_shared_memory_unavailable(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no /dev/shm here")

        monkeypatch.setattr(
            shm_module.shared_memory, "SharedMemory", refuse
        )
        with pytest.raises(SharedMemoryUnavailable):
            publish({"a": np.arange(3)})

    def test_attach_survives_unlink(self):
        # Linux semantics the eager-unlink strategy relies on: a mapping
        # created before the unlink keeps working afterwards.
        handle = publish({"a": np.arange(6)})
        attached = attach(handle.manifest)
        handle.close()
        assert np.array_equal(attached.views["a"], np.arange(6))
        attached.close()


class TestWorkerPool:
    def test_serial_for_single_worker(self):
        with WorkerPool(1) as pool:
            assert pool.map(abs, [-1, -2]) == [1, 2]
            assert not pool.warm

    def test_serial_for_single_task(self):
        with WorkerPool(4) as pool:
            assert pool.map(abs, [-3]) == [3]
            assert not pool.warm

    def test_map_after_close_raises(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map(abs, [-1, -2])

    def test_fallback_warns_and_counts(self, caplog):
        from repro.obs import Recorder, use_recorder

        recorder = Recorder()
        with WorkerPool(2) as pool, use_recorder(recorder):
            with caplog.at_level(logging.WARNING, logger="repro.parallel.pool"):
                # A lambda cannot be pickled into worker processes.
                results = pool.map(lambda x: x * 2, [1, 2, 3])
        assert results == [2, 4, 6]
        assert any(
            "running 3 task(s) serially" in record.message
            for record in caplog.records
        )
        assert recorder.counter_totals().get("parallel.fallbacks") == 1

    def test_adopt_and_release_segment(self):
        pool = WorkerPool(2)
        handle = pool.adopt_segment(publish({"a": np.arange(4)}))
        name = handle.name
        assert _segment_exists(name)
        pool.release_segment(handle)
        assert not _segment_exists(name)
        pool.release_segment(handle)  # idempotent
        pool.close()

    def test_close_unlinks_adopted_segments(self):
        # The service-drain guarantee: whatever the pool still owns when
        # it closes is unlinked with it.
        pool = WorkerPool(2)
        handle = pool.adopt_segment(publish({"a": np.arange(4)}))
        pool.close()
        assert not _segment_exists(handle.name)


class TestAmbientPool:
    def test_default_is_none(self):
        assert current_pool() is None

    def test_use_pool_installs_and_restores(self):
        pool = WorkerPool(2)
        with use_pool(pool):
            assert current_pool() is pool
        assert current_pool() is None
        pool.close()

    def test_closed_pool_is_invisible(self):
        pool = WorkerPool(2)
        with use_pool(pool):
            pool.close()
            assert current_pool() is None

    def test_nested_pools(self):
        outer, inner = WorkerPool(2), WorkerPool(2)
        with use_pool(outer):
            with use_pool(inner):
                assert current_pool() is inner
            assert current_pool() is outer
        outer.close()
        inner.close()

    def test_foreign_pid_pool_is_invisible(self):
        pool = WorkerPool(2)
        pool._pid = pool._pid + 1  # simulate a forked child's view
        with use_pool(pool):
            assert current_pool() is None
        pool._pid -= 1
        pool.close()


class TestZeroCopyContract:
    def test_scan_task_payload_excludes_matrices(self):
        """Per-task pickles carry a manifest, never the matrix arrays."""
        from repro.core.grouping.cooccurrence import _ScanSpec

        rng = np.random.default_rng(1)
        csr = sp.csr_matrix((rng.random((500, 400)) < 0.3).astype(np.int64))
        csr_t = csr.T.tocsr()
        norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
        with publish(
            {
                "m_data": csr.data, "m_indices": csr.indices,
                "m_indptr": csr.indptr, "t_data": csr_t.data,
                "t_indices": csr_t.indices, "t_indptr": csr_t.indptr,
                "norms": norms,
            }
        ) as handle:
            spec = _ScanSpec(
                manifest=handle.manifest, shape=csr.shape,
                shape_t=csr_t.shape, k=1, collect_subsets=True,
                measure_memory=False, has_words=False,
            )
            task = (spec, 0, 100, "sparse")
            payload = pickle.dumps(task)
        # ~60k stored entries => hundreds of KB pickled the old way; the
        # manifest-only task stays well under a single KB.
        assert len(payload) < 1024

    def test_parallel_scan_leaves_no_segment_behind(self):
        import os

        from repro.core.grouping.cooccurrence import blocked_scan

        def shm_names():
            try:
                return set(os.listdir("/dev/shm"))
            except FileNotFoundError:  # pragma: no cover - non-Linux
                return set()

        rng = np.random.default_rng(2)
        csr = sp.csr_matrix((rng.random((40, 30)) < 0.3).astype(np.int64))
        norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
        before = shm_names()
        scan = blocked_scan(
            csr, norms, k=1, block_rows=7, n_workers=2, kernel="sparse"
        )
        assert scan.n_blocks == 6
        assert shm_names() <= before

    def test_warm_pool_scan_releases_segment(self):
        from repro.core.grouping.cooccurrence import blocked_scan

        rng = np.random.default_rng(3)
        csr = sp.csr_matrix((rng.random((40, 30)) < 0.3).astype(np.int64))
        norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
        pool = WorkerPool(2)
        with use_pool(pool):
            serial = blocked_scan(csr, norms, k=1, block_rows=7, kernel="sparse")
            warm = blocked_scan(
                csr, norms, k=1, block_rows=7, n_workers=2, kernel="sparse"
            )
        # Eager release: nothing left in the registry for close() to do.
        assert pool._segments == []
        pool.close()
        assert sorted(zip(warm.rows.tolist(), warm.cols.tolist())) == sorted(
            zip(serial.rows.tolist(), serial.cols.tolist())
        )
