"""Unit tests for the process-pool executor and its serial fallback."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import ParallelExecutor, resolve_workers

_INIT_STATE: dict[str, int] = {}


def _square(x: int) -> int:
    return x * x


def _install_offset(offset: int) -> None:
    _INIT_STATE["offset"] = offset


def _add_offset(x: int) -> int:
    return x + _INIT_STATE["offset"]


class TestResolveWorkers:
    def test_default_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3

    def test_none_means_all_cores(self):
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_zero_and_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)


class TestSerialPath:
    def test_single_worker_maps_in_order(self):
        executor = ParallelExecutor(n_workers=1)
        assert executor.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]
        assert executor.last_fallback_reason is None

    def test_single_item_stays_in_process(self):
        # Closures are unpicklable; a pool would choke on them, but one
        # item never leaves the process.
        state = []
        executor = ParallelExecutor(n_workers=8)
        assert executor.map(lambda x: state.append(x) or x, [42]) == [42]
        assert state == [42]

    def test_initializer_runs_in_process(self):
        executor = ParallelExecutor(
            n_workers=1, initializer=_install_offset, initargs=(100,)
        )
        assert executor.map(_add_offset, [1, 2]) == [101, 102]

    def test_empty_items(self):
        assert ParallelExecutor(n_workers=4).map(_square, []) == []


class TestPoolPath:
    def test_results_in_input_order(self):
        executor = ParallelExecutor(n_workers=2)
        assert executor.map(_square, range(10)) == [x * x for x in range(10)]

    def test_initializer_ships_state_to_workers(self):
        executor = ParallelExecutor(
            n_workers=2, initializer=_install_offset, initargs=(7,)
        )
        assert executor.map(_add_offset, [0, 1, 2, 3]) == [7, 8, 9, 10]

    def test_unpicklable_fn_falls_back_serially(self):
        executor = ParallelExecutor(n_workers=2)
        doubled = executor.map(lambda x: 2 * x, [1, 2, 3])
        assert doubled == [2, 4, 6]
        assert executor.last_fallback_reason is not None

    def test_fallback_warns_and_counts(self, caplog):
        # The silent-degradation fix: falling back to serial must leave
        # an operator-visible trail — a WARNING log line and a
        # ``parallel.fallbacks`` counter that reaches Report.metrics.
        import logging

        from repro.obs import Recorder, use_recorder

        recorder = Recorder()
        executor = ParallelExecutor(n_workers=2)
        with use_recorder(recorder):
            with caplog.at_level(
                logging.WARNING, logger="repro.parallel.executor"
            ):
                executor.map(lambda x: 2 * x, [1, 2, 3])
        assert any(
            "serially in-process" in record.message
            for record in caplog.records
        )
        assert recorder.counter_totals().get("parallel.fallbacks") == 1

    def test_pool_success_logs_no_warning(self, caplog):
        import logging

        executor = ParallelExecutor(n_workers=2)
        with caplog.at_level(logging.WARNING, logger="repro.parallel.executor"):
            executor.map(_square, range(8))
        assert not caplog.records

    def test_matches_serial_exactly(self):
        serial = ParallelExecutor(n_workers=1).map(_square, range(25))
        parallel = ParallelExecutor(n_workers=3).map(_square, range(25))
        assert serial == parallel


class TestValidation:
    def test_bad_chunksize_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(n_workers=2, chunksize=0)


class TestValidateWorkers:
    def test_none_passes_through(self):
        from repro.parallel import validate_workers

        assert validate_workers(None) is None

    def test_valid_counts_normalised_to_int(self):
        from repro.parallel import validate_workers

        assert validate_workers(1) == 1
        assert validate_workers(8) == 8

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_rejects_non_positive(self, bad):
        from repro.parallel import validate_workers

        with pytest.raises(ConfigurationError, match="n_workers must be >= 1"):
            validate_workers(bad)

    def test_message_identical_to_engine_config(self):
        """AnalysisConfig and the executor share one validation helper,
        so a bad worker count reads the same wherever it is caught."""
        from repro.core.engine import AnalysisConfig
        from repro.parallel import validate_workers

        with pytest.raises(ConfigurationError) as from_helper:
            validate_workers(0)
        with pytest.raises(ConfigurationError) as from_config:
            AnalysisConfig(n_workers=0)
        assert str(from_helper.value) == str(from_config.value)

    def test_resolve_workers_routes_through_validation(self):
        with pytest.raises(ConfigurationError, match="n_workers must be >= 1"):
            resolve_workers(-2)
