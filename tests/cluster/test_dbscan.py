"""Unit tests for the from-scratch DBSCAN implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import DBSCAN, NOISE, labels_to_groups
from repro.exceptions import ConfigurationError


class TestParameters:
    def test_negative_eps_rejected(self):
        with pytest.raises(ConfigurationError):
            DBSCAN(eps=-1.0)

    def test_min_samples_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DBSCAN(eps=1.0, min_samples=0)


class TestDuplicateDetectionSemantics:
    """min_samples=2, eps≈0 — the paper's type-4 configuration."""

    def test_duplicates_cluster_unique_rows_are_noise(self):
        data = np.array(
            [
                [1, 0, 0],
                [0, 1, 0],
                [1, 0, 0],
                [0, 0, 1],
            ],
            dtype=bool,
        )
        labels = DBSCAN(eps=1e-6, min_samples=2).fit_predict(data)
        assert labels[0] == labels[2] != NOISE
        assert labels[1] == NOISE
        assert labels[3] == NOISE

    def test_multiple_groups_get_distinct_labels(self):
        data = np.array(
            [[1, 0], [0, 1], [1, 0], [0, 1], [1, 1]], dtype=bool
        )
        labels = DBSCAN(eps=1e-6, min_samples=2).fit_predict(data)
        assert labels[0] == labels[2]
        assert labels[1] == labels[3]
        assert labels[0] != labels[1]
        assert labels[4] == NOISE

    def test_all_identical_is_one_cluster(self):
        data = np.ones((5, 3), dtype=bool)
        labels = DBSCAN(eps=1e-6, min_samples=2).fit_predict(data)
        assert set(labels.tolist()) == {0}

    def test_empty_input(self):
        labels = DBSCAN(eps=0.5).fit_predict(np.zeros((0, 4), dtype=bool))
        assert labels.tolist() == []


class TestSimilarityChaining:
    """eps = k + ε: clusters are components of the distance<=k graph."""

    def test_chain_joins_transitively(self):
        # a-b at distance 1, b-c at distance 1, a-c at distance 2: all one
        # cluster at eps=1 (the chaining semantics shared with the
        # custom algorithm).
        data = np.array(
            [
                [1, 1, 0, 0],
                [1, 1, 1, 0],
                [1, 1, 1, 1],
            ],
            dtype=bool,
        )
        labels = DBSCAN(eps=1 + 1e-6, min_samples=2).fit_predict(data)
        assert labels[0] == labels[1] == labels[2] != NOISE

    def test_far_point_stays_noise(self):
        data = np.array(
            [
                [1, 1, 0, 0, 0, 0],
                [1, 1, 1, 0, 0, 0],
                [0, 0, 0, 1, 1, 1],
            ],
            dtype=bool,
        )
        labels = DBSCAN(eps=1 + 1e-6, min_samples=2).fit_predict(data)
        assert labels[0] == labels[1] != NOISE
        assert labels[2] == NOISE


class TestMinSamplesAboveTwo:
    def test_border_points_join_but_do_not_expand(self):
        # Classic DBSCAN shape: a dense core of 4 identical points plus a
        # point at distance 1 (border when min_samples=4).
        data = np.array(
            [
                [1, 1, 0],
                [1, 1, 0],
                [1, 1, 0],
                [1, 1, 0],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        labels = DBSCAN(eps=1 + 1e-6, min_samples=4).fit_predict(data)
        assert labels[0] == labels[1] == labels[2] == labels[3] != NOISE
        assert labels[4] == labels[0]  # border point absorbed

    def test_sparse_points_all_noise_with_high_min_samples(self):
        data = np.eye(4, dtype=bool)
        labels = DBSCAN(eps=1e-6, min_samples=3).fit_predict(data)
        assert all(label == NOISE for label in labels)


class TestBackends:
    def test_bitpacked_equals_dense_backend(self):
        rng = np.random.default_rng(9)
        data = rng.random((60, 30)) < 0.2
        data[10] = data[40]
        data[11] = data[40]
        dense_labels = DBSCAN(eps=1e-6, metric="hamming").fit_predict(data)
        packed_labels = DBSCAN(
            eps=1e-6, metric="bitpacked-hamming"
        ).fit_predict(data)
        assert np.array_equal(dense_labels, packed_labels)

    def test_labels_stored_on_instance(self):
        clusterer = DBSCAN(eps=1e-6)
        labels = clusterer.fit_predict(np.ones((3, 2), dtype=bool))
        assert clusterer.labels_ is labels


class TestLabelsToGroups:
    def test_noise_dropped(self):
        labels = np.array([0, NOISE, 0, 1, 1, NOISE], dtype=np.intp)
        assert labels_to_groups(labels) == [[0, 2], [3, 4]]

    def test_ordering_by_smallest_member(self):
        labels = np.array([1, 1, 0, 0], dtype=np.intp)
        assert labels_to_groups(labels) == [[0, 1], [2, 3]]

    def test_empty(self):
        assert labels_to_groups(np.array([], dtype=np.intp)) == []


from repro.cluster.neighbors import NeighborSearch


class CountingSearch(NeighborSearch):
    """NeighborSearch wrapper that records every radius query.

    Implements the :class:`~repro.cluster.neighbors.NeighborSearch`
    interface so it can be handed straight to ``fit_predict`` /
    ``dbscan_labels``.
    """

    def __init__(self, inner):
        self._inner = inner
        self.queried: list[int] = []

    @property
    def n_points(self) -> int:
        return self._inner.n_points

    def radius_neighbors(self, index, eps):
        self.queried.append(int(index))
        return self._inner.radius_neighbors(index, eps)


class TestQueryEfficiency:
    """Regression for the expansion-queue blow-up.

    Each core expansion used to re-enqueue every not-yet-visited
    neighbour, so a dense cluster's queue held O(n^2) duplicate entries.
    The enqueued-mask fix bounds enqueues — and therefore
    ``radius_neighbors`` work — at one per point; these tests pin that
    via a counting search wrapper.
    """

    def _counting_search(self, data):
        from repro.cluster.neighbors import BruteForceSearch

        return CountingSearch(BruteForceSearch(data, metric="hamming"))

    def test_dense_cluster_queries_each_point_once(self):
        # 50 identical rows: one all-connected cluster, the worst case
        # for duplicate enqueues.
        data = np.tile(np.array([1, 0, 1, 0], dtype=bool), (50, 1))
        search = self._counting_search(data)
        labels = DBSCAN(eps=1e-6, min_samples=2).fit_predict(search)
        assert all(label == labels[0] != NOISE for label in labels)
        assert sorted(search.queried) == list(range(50))  # once each, all 50

    def test_mixed_data_never_requeries(self):
        rng = np.random.default_rng(17)
        data = rng.random((80, 12)) < 0.3
        data[3] = data[60]
        data[4] = data[60]
        search = self._counting_search(data)
        DBSCAN(eps=1 + 1e-6, min_samples=2).fit_predict(search)
        assert len(search.queried) == len(set(search.queried))
        assert len(search.queried) <= 80

    def test_labels_unchanged_by_enqueue_mask(self):
        rng = np.random.default_rng(23)
        data = rng.random((60, 10)) < 0.35
        search = self._counting_search(data)
        wrapped = DBSCAN(eps=1 + 1e-6, min_samples=2).fit_predict(search)
        direct = DBSCAN(eps=1 + 1e-6, min_samples=2).fit_predict(data)
        assert np.array_equal(wrapped, direct)
