"""Unit tests for the metric library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import (
    METRICS,
    euclidean_distances,
    hamming_distances,
    jaccard_distances,
    manhattan_distances,
    resolve_metric,
)
from repro.exceptions import ConfigurationError


class TestHamming:
    def test_counts_differing_positions(self):
        block = np.array([[1, 1, 0], [0, 0, 0]], dtype=float)
        query = np.array([1, 0, 0], dtype=float)
        assert hamming_distances(block, query).tolist() == [1.0, 1.0]

    def test_identical_is_zero(self):
        block = np.array([[1, 0, 1]], dtype=float)
        assert hamming_distances(block, block[0]).tolist() == [0.0]

    def test_is_count_not_fraction(self):
        block = np.zeros((1, 10))
        query = np.ones(10)
        assert hamming_distances(block, query)[0] == 10.0


class TestManhattan:
    def test_matches_hamming_on_binary(self):
        rng = np.random.default_rng(0)
        block = (rng.random((20, 15)) < 0.5).astype(float)
        query = (rng.random(15) < 0.5).astype(float)
        assert np.array_equal(
            manhattan_distances(block, query), hamming_distances(block, query)
        )

    def test_non_binary_values(self):
        block = np.array([[3.0, -1.0]])
        query = np.array([1.0, 1.0])
        assert manhattan_distances(block, query)[0] == pytest.approx(4.0)


class TestEuclidean:
    def test_known_value(self):
        block = np.array([[3.0, 4.0]])
        query = np.array([0.0, 0.0])
        assert euclidean_distances(block, query)[0] == pytest.approx(5.0)

    def test_binary_relation_to_hamming(self):
        rng = np.random.default_rng(1)
        block = (rng.random((10, 12)) < 0.5).astype(float)
        query = (rng.random(12) < 0.5).astype(float)
        hamming = hamming_distances(block, query)
        euclid = euclidean_distances(block, query)
        assert np.allclose(euclid, np.sqrt(hamming))


class TestJaccard:
    def test_disjoint_sets(self):
        block = np.array([[1, 1, 0, 0]], dtype=float)
        query = np.array([0, 0, 1, 1], dtype=float)
        assert jaccard_distances(block, query)[0] == pytest.approx(1.0)

    def test_identical_sets(self):
        block = np.array([[1, 0, 1]], dtype=float)
        assert jaccard_distances(block, block[0])[0] == pytest.approx(0.0)

    def test_both_empty_is_zero(self):
        block = np.zeros((1, 4))
        query = np.zeros(4)
        assert jaccard_distances(block, query)[0] == pytest.approx(0.0)

    def test_half_overlap(self):
        block = np.array([[1, 1, 0]], dtype=float)
        query = np.array([1, 0, 1], dtype=float)
        # intersection 1, union 3
        assert jaccard_distances(block, query)[0] == pytest.approx(2.0 / 3.0)


class TestResolveMetric:
    def test_resolves_names(self):
        for name in METRICS:
            assert resolve_metric(name) is METRICS[name]

    def test_passes_through_callables(self):
        fn = lambda block, query: np.zeros(len(block))  # noqa: E731
        assert resolve_metric(fn) is fn

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            resolve_metric("cosine")


class TestMetricAxioms:
    @given(
        hnp.arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=20),
            ),
        ),
        st.sampled_from(["hamming", "manhattan", "euclidean", "jaccard"]),
    )
    @settings(max_examples=60)
    def test_nonnegative_and_symmetric(self, dense, name):
        metric = METRICS[name]
        block = dense.astype(float)
        for i in range(len(block)):
            distances = metric(block, block[i])
            assert (distances >= 0).all()
            assert distances[i] == pytest.approx(0.0)
            # symmetry: d(x_j, x_i) computed both ways
            for j in range(len(block)):
                other_way = metric(block[i][None, :], block[j])[0]
                assert distances[j] == pytest.approx(other_way)
