"""Property-based tests: DBSCAN with min_samples=2 equals the connected
components of the distance<=eps graph (the invariant that makes the three
paper approaches comparable)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import DBSCAN, labels_to_groups
from repro.util import DisjointSet


def bool_matrices():
    return hnp.arrays(
        dtype=bool,
        shape=st.tuples(
            st.integers(min_value=1, max_value=14),
            st.integers(min_value=1, max_value=25),
        ),
    )


def components_by_definition(dense: np.ndarray, k: int) -> list[list[int]]:
    n = dense.shape[0]
    ds = DisjointSet(n)
    for i in range(n):
        for j in range(i + 1, n):
            if int(np.count_nonzero(dense[i] != dense[j])) <= k:
                ds.union(i, j)
    return ds.groups(min_size=2)


class TestComponentEquivalence:
    @given(bool_matrices(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=80, deadline=None)
    def test_min_samples_two_is_graph_components(self, dense, k):
        labels = DBSCAN(eps=k + 1e-6, min_samples=2).fit_predict(dense)
        assert labels_to_groups(labels) == components_by_definition(dense, k)

    @given(bool_matrices())
    @settings(max_examples=40, deadline=None)
    def test_label_vector_well_formed(self, dense):
        labels = DBSCAN(eps=1e-6, min_samples=2).fit_predict(dense)
        assert len(labels) == dense.shape[0]
        used = sorted(set(labels.tolist()) - {-1})
        # Cluster ids are consecutive starting at 0.
        assert used == list(range(len(used)))

    @given(bool_matrices(), st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_eps_monotonicity(self, dense, k):
        """Growing eps can only merge clusters, never split them."""
        small = labels_to_groups(
            DBSCAN(eps=k + 1e-6, min_samples=2).fit_predict(dense)
        )
        large = labels_to_groups(
            DBSCAN(eps=k + 1 + 1e-6, min_samples=2).fit_predict(dense)
        )
        for group in small:
            assert any(set(group) <= set(bigger) for bigger in large)
