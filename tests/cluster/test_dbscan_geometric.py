"""DBSCAN as a general clusterer: classic geometric scenarios.

The RBAC use case only exercises Hamming space with min_samples=2; these
tests validate the substrate against the scenarios DBSCAN was designed
for (Ester et al.'s own motivation): Gaussian blobs, noise rejection,
and non-convex shapes — guarding against an implementation that only
happens to work on boolean duplicates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import DBSCAN, NOISE


def gaussian_blobs(
    centers: list[tuple[float, float]],
    n_per_blob: int = 40,
    spread: float = 0.08,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    points = []
    labels = []
    for blob_index, center in enumerate(centers):
        points.append(
            rng.normal(loc=center, scale=spread, size=(n_per_blob, 2))
        )
        labels.extend([blob_index] * n_per_blob)
    return np.vstack(points), np.asarray(labels)


class TestGaussianBlobs:
    def test_two_well_separated_blobs(self):
        data, truth = gaussian_blobs([(0.0, 0.0), (5.0, 5.0)])
        labels = DBSCAN(
            eps=0.5, min_samples=4, metric="euclidean"
        ).fit_predict(data)
        assert set(labels.tolist()) == {0, 1}
        # every found cluster maps to exactly one true blob
        for found in (0, 1):
            blob_ids = set(truth[labels == found].tolist())
            assert len(blob_ids) == 1

    def test_three_blobs(self):
        data, truth = gaussian_blobs(
            [(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)]
        )
        labels = DBSCAN(
            eps=0.5, min_samples=4, metric="euclidean"
        ).fit_predict(data)
        assert len(set(labels.tolist()) - {NOISE}) == 3

    def test_outliers_marked_noise(self):
        data, _ = gaussian_blobs([(0.0, 0.0)])
        with_outliers = np.vstack(
            [data, [[50.0, 50.0], [-40.0, 10.0], [0.0, 99.0]]]
        )
        labels = DBSCAN(
            eps=0.5, min_samples=4, metric="euclidean"
        ).fit_predict(with_outliers)
        assert labels[-1] == NOISE
        assert labels[-2] == NOISE
        assert labels[-3] == NOISE
        assert labels[0] != NOISE

    def test_eps_too_small_fragments_everything(self):
        data, _ = gaussian_blobs([(0.0, 0.0)], n_per_blob=30)
        labels = DBSCAN(
            eps=1e-9, min_samples=4, metric="euclidean"
        ).fit_predict(data)
        assert all(label == NOISE for label in labels)

    def test_eps_huge_merges_everything(self):
        data, _ = gaussian_blobs([(0.0, 0.0), (5.0, 5.0)])
        labels = DBSCAN(
            eps=100.0, min_samples=4, metric="euclidean"
        ).fit_predict(data)
        assert set(labels.tolist()) == {0}


class TestNonConvexShapes:
    def test_ring_around_a_core(self):
        """A dense ring and a central blob: density clustering must keep
        them apart even though the ring 'surrounds' the blob (the case
        centroid methods get wrong)."""
        rng = np.random.default_rng(1)
        angles = rng.uniform(0, 2 * np.pi, size=150)
        ring = np.stack(
            [3.0 * np.cos(angles), 3.0 * np.sin(angles)], axis=1
        ) + rng.normal(scale=0.05, size=(150, 2))
        core = rng.normal(scale=0.2, size=(60, 2))
        data = np.vstack([ring, core])
        labels = DBSCAN(
            eps=0.6, min_samples=4, metric="euclidean"
        ).fit_predict(data)
        ring_labels = set(labels[:150].tolist()) - {NOISE}
        core_labels = set(labels[150:].tolist()) - {NOISE}
        assert len(ring_labels) == 1
        assert len(core_labels) == 1
        assert ring_labels != core_labels


class TestDeterminism:
    def test_same_input_same_labels(self):
        data, _ = gaussian_blobs([(0.0, 0.0), (4.0, 4.0)], seed=2)
        first = DBSCAN(eps=0.5, min_samples=4, metric="euclidean").fit_predict(
            data
        )
        second = DBSCAN(
            eps=0.5, min_samples=4, metric="euclidean"
        ).fit_predict(data)
        assert np.array_equal(first, second)
