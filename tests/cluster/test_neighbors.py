"""Unit tests for the neighbour-search backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmatrix import BitMatrix
from repro.cluster import BitpackedHammingSearch, BruteForceSearch
from repro.exceptions import ConfigurationError


@pytest.fixture
def binary_data():
    rng = np.random.default_rng(8)
    return (rng.random((25, 40)) < 0.3).astype(bool)


class TestBruteForce:
    def test_n_points(self, binary_data):
        assert BruteForceSearch(binary_data).n_points == 25

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            BruteForceSearch(np.zeros(5))

    def test_query_point_always_included(self, binary_data):
        search = BruteForceSearch(binary_data)
        for i in range(5):
            assert i in search.radius_neighbors(i, 0.0)

    def test_radius_zero_finds_duplicates(self):
        data = np.array([[1, 0], [1, 0], [0, 1]], dtype=bool)
        search = BruteForceSearch(data)
        assert search.radius_neighbors(0, 0.0).tolist() == [0, 1]
        assert search.radius_neighbors(2, 0.0).tolist() == [2]

    def test_radius_grows_monotonically(self, binary_data):
        search = BruteForceSearch(binary_data)
        small = set(search.radius_neighbors(0, 2.0).tolist())
        large = set(search.radius_neighbors(0, 5.0).tolist())
        assert small <= large

    def test_custom_metric(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0], [10.0, 0.0]])
        search = BruteForceSearch(data, metric="euclidean")
        assert search.radius_neighbors(0, 5.0).tolist() == [0, 1]


class TestBitpackedHamming:
    def test_matches_brute_force(self, binary_data):
        brute = BruteForceSearch(binary_data, metric="hamming")
        packed = BitpackedHammingSearch(binary_data)
        for i in range(binary_data.shape[0]):
            for eps in (0.0, 1.0, 3.0, 10.0):
                assert (
                    packed.radius_neighbors(i, eps).tolist()
                    == brute.radius_neighbors(i, eps).tolist()
                )

    def test_accepts_prebuilt_bitmatrix(self, binary_data):
        bits = BitMatrix(binary_data)
        search = BitpackedHammingSearch(bits)
        assert search.bits is bits
        assert search.n_points == binary_data.shape[0]

    def test_fractional_eps_floors(self):
        # eps = 0.5 must behave like eps = 0 on integer Hamming distances.
        data = np.array([[1, 0], [0, 1]], dtype=bool)
        search = BitpackedHammingSearch(data)
        assert search.radius_neighbors(0, 0.5).tolist() == [0]
