"""Property-based round-trip tests for the I/O formats."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.core.state import RbacState
from repro.io import anonymize, dumps_json, loads_json

identifier = st.text(
    alphabet=string.ascii_lowercase + string.digits + "-_",
    min_size=1,
    max_size=12,
)


@st.composite
def rbac_states(draw) -> RbacState:
    users = draw(
        st.lists(identifier, min_size=0, max_size=8, unique=True)
    )
    roles = draw(
        st.lists(identifier, min_size=0, max_size=6, unique=True)
    )
    permissions = draw(
        st.lists(identifier, min_size=0, max_size=8, unique=True)
    )
    state = RbacState.build(
        users=users, roles=roles, permissions=permissions
    )
    if roles and users:
        for _ in range(draw(st.integers(min_value=0, max_value=12))):
            role = draw(st.sampled_from(roles))
            user = draw(st.sampled_from(users))
            state.assign_user(role, user)
    if roles and permissions:
        for _ in range(draw(st.integers(min_value=0, max_value=12))):
            role = draw(st.sampled_from(roles))
            permission = draw(st.sampled_from(permissions))
            state.assign_permission(role, permission)
    return state


class TestJsonRoundTrip:
    @given(rbac_states())
    @settings(max_examples=60, deadline=None)
    def test_identity(self, state):
        assert loads_json(dumps_json(state)) == state

    @given(rbac_states())
    @settings(max_examples=30, deadline=None)
    def test_double_round_trip_stable(self, state):
        once = dumps_json(state)
        twice = dumps_json(loads_json(once))
        assert once == twice


class TestAnonymizeProperties:
    @given(rbac_states())
    @settings(max_examples=30, deadline=None)
    def test_analysis_counts_invariant(self, state):
        assert analyze(state).counts() == analyze(anonymize(state)).counts()

    @given(rbac_states())
    @settings(max_examples=30, deadline=None)
    def test_effective_permission_multiset_preserved(self, state):
        """The multiset of per-user effective-permission-set sizes is a
        structural invariant of pseudonymisation."""
        original = sorted(
            len(perms) for perms in state.effective_permission_map().values()
        )
        anonymised = sorted(
            len(perms)
            for perms in anonymize(state).effective_permission_map().values()
        )
        assert original == anonymised
