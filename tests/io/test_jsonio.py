"""Unit tests for JSON serialisation."""

from __future__ import annotations

import json

import pytest

from repro.core.entities import Role, User
from repro.core.state import RbacState
from repro.exceptions import DataFormatError
from repro.io import dumps_json, load_json, loads_json, save_json
from repro.io.jsonio import FORMAT_NAME, state_to_dict


class TestRoundTrip:
    def test_paper_example_round_trips(self, paper_example, tmp_path):
        path = tmp_path / "state.json"
        save_json(paper_example, path)
        assert load_json(path) == paper_example

    def test_string_round_trip(self, paper_example):
        assert loads_json(dumps_json(paper_example)) == paper_example

    def test_attributes_preserved(self):
        state = RbacState()
        state.add_user(User("u1", name="Alice", attributes={"dept": "sec"}))
        state.add_role(Role("r1", name="Auditor"))
        restored = loads_json(dumps_json(state))
        assert restored.get_user("u1").name == "Alice"
        assert restored.get_user("u1").attributes["dept"] == "sec"
        assert restored.get_role("r1").name == "Auditor"

    def test_standalone_nodes_survive(self):
        state = RbacState.build(users=["ghost"], roles=[], permissions=["p"])
        restored = loads_json(dumps_json(state))
        assert restored.has_user("ghost")
        assert restored.has_permission("p")

    def test_empty_state(self):
        assert loads_json(dumps_json(RbacState())) == RbacState()

    def test_indent_option(self, paper_example):
        assert "\n" in dumps_json(paper_example, indent=2)


class TestDocumentShape:
    def test_marker_and_version(self, paper_example):
        document = state_to_dict(paper_example)
        assert document["format"] == FORMAT_NAME
        assert document["version"] == 1

    def test_empty_fields_omitted(self):
        state = RbacState.build(users=["u1"])
        document = state_to_dict(state)
        assert document["users"] == [{"id": "u1"}]


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(DataFormatError, match="invalid JSON"):
            loads_json("{nope")

    def test_wrong_format_marker(self):
        with pytest.raises(DataFormatError, match="format marker"):
            loads_json(json.dumps({"format": "other", "version": 1}))

    def test_wrong_version(self):
        with pytest.raises(DataFormatError, match="version"):
            loads_json(json.dumps({"format": FORMAT_NAME, "version": 99}))

    def test_top_level_not_object(self):
        with pytest.raises(DataFormatError):
            loads_json("[1, 2, 3]")

    def test_edge_to_unknown_entity(self):
        document = {
            "format": FORMAT_NAME,
            "version": 1,
            "users": [],
            "roles": [{"id": "r1"}],
            "permissions": [],
            "user_assignments": [["r1", "missing"]],
            "permission_assignments": [],
        }
        with pytest.raises(DataFormatError, match="inconsistent"):
            loads_json(json.dumps(document))

    def test_malformed_entity(self):
        document = {
            "format": FORMAT_NAME,
            "version": 1,
            "users": [{"name": "no id"}],
        }
        with pytest.raises(DataFormatError, match="malformed"):
            loads_json(json.dumps(document))


class TestUnicodeAndOddIdentifiers:
    def test_unicode_ids_round_trip(self):
        state = RbacState.build(
            users=["Ångström", "测试用户"],
            roles=["rôle-β"],
            permissions=["перм#1"],
            user_assignments=[("rôle-β", "Ångström")],
            permission_assignments=[("rôle-β", "перм#1")],
        )
        assert loads_json(dumps_json(state)) == state

    def test_ids_with_json_specials(self):
        state = RbacState.build(
            users=['he said "hi"', "tab\there"],
            roles=["r,1"],
            permissions=[],
            user_assignments=[("r,1", 'he said "hi"')],
        )
        assert loads_json(dumps_json(state)) == state
