"""Unit tests for CSV import/export."""

from __future__ import annotations

import pytest

from repro.core.state import RbacState
from repro.exceptions import DataFormatError
from repro.io import load_csv, save_csv
from repro.io.csvio import ENTITIES_FILE, PERMISSION_EDGES_FILE, USER_EDGES_FILE


class TestRoundTrip:
    def test_paper_example(self, paper_example, tmp_path):
        save_csv(paper_example, tmp_path / "export")
        restored = load_csv(tmp_path / "export")
        assert restored == paper_example

    def test_standalone_nodes_survive_via_entities_file(self, tmp_path):
        state = RbacState.build(
            users=["ghost"], roles=["empty"], permissions=["unused"]
        )
        save_csv(state, tmp_path)
        restored = load_csv(tmp_path)
        assert restored.has_user("ghost")
        assert restored.has_role("empty")
        assert restored.has_permission("unused")

    def test_names_preserved(self, tmp_path):
        from repro.core.entities import User

        state = RbacState()
        state.add_user(User("u1", name="Alice"))
        save_csv(state, tmp_path)
        assert load_csv(tmp_path).get_user("u1").name == "Alice"


class TestEdgeOnlyImports:
    def test_two_file_import_creates_entities_implicitly(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text(
            "role_id,user_id\nr1,u1\nr1,u2\n"
        )
        (tmp_path / PERMISSION_EDGES_FILE).write_text(
            "role_id,permission_id\nr1,p1\n"
        )
        state = load_csv(tmp_path)
        assert state.n_users == 2
        assert state.n_roles == 1
        assert state.users_of_role("r1") == {"u1", "u2"}

    def test_single_file_import(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text("role_id,user_id\nr1,u1\n")
        state = load_csv(tmp_path)
        assert state.n_permissions == 0
        assert state.n_roles == 1

    def test_blank_lines_skipped(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text(
            "role_id,user_id\nr1,u1\n\nr1,u2\n"
        )
        assert load_csv(tmp_path).users_of_role("r1") == {"u1", "u2"}


class TestErrors:
    def test_missing_directory_contents(self, tmp_path):
        with pytest.raises(DataFormatError, match="neither"):
            load_csv(tmp_path)

    def test_wrong_column_count(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text(
            "role_id,user_id\nr1,u1,extra\n"
        )
        with pytest.raises(DataFormatError, match="expected 2 columns"):
            load_csv(tmp_path)

    def test_bad_header(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text("only_one_column\n")
        with pytest.raises(DataFormatError, match="header"):
            load_csv(tmp_path)

    def test_empty_file(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text("")
        with pytest.raises(DataFormatError, match="empty"):
            load_csv(tmp_path)

    def test_unknown_entity_kind(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text("role_id,user_id\n")
        (tmp_path / ENTITIES_FILE).write_text("kind,id,name\nrobot,x,\n")
        with pytest.raises(DataFormatError, match="unknown kind"):
            load_csv(tmp_path)


class TestOddIdentifiers:
    def test_commas_and_quotes_round_trip(self, tmp_path):
        state = RbacState.build(
            users=['u,with,commas', 'u "quoted"'],
            roles=["r;1"],
            permissions=["p\nnewline"],
            user_assignments=[
                ("r;1", "u,with,commas"), ("r;1", 'u "quoted"'),
            ],
            permission_assignments=[("r;1", "p\nnewline")],
        )
        save_csv(state, tmp_path)
        assert load_csv(tmp_path) == state

    def test_duplicate_edges_in_file_are_idempotent(self, tmp_path):
        (tmp_path / USER_EDGES_FILE).write_text(
            "role_id,user_id\nr1,u1\nr1,u1\nr1,u1\n"
        )
        state = load_csv(tmp_path)
        assert state.n_user_assignments == 1
