"""Unit tests for the Graphviz DOT export."""

from __future__ import annotations

from repro.core import analyze
from repro.core.state import RbacState
from repro.io import state_to_dot


class TestStructure:
    def test_all_nodes_present(self, paper_example):
        dot = state_to_dot(paper_example)
        for user_id in paper_example.user_ids():
            assert f'"user:{user_id}"' in dot
        for role_id in paper_example.role_ids():
            assert f'"role:{role_id}"' in dot
        for permission_id in paper_example.permission_ids():
            assert f'"permission:{permission_id}"' in dot

    def test_edge_count(self, paper_example):
        dot = state_to_dot(paper_example)
        edge_lines = [l for l in dot.splitlines() if " -- " in l]
        assert len(edge_lines) == (
            paper_example.n_user_assignments
            + paper_example.n_permission_assignments
        )

    def test_three_rank_clusters(self, paper_example):
        dot = state_to_dot(paper_example)
        assert "cluster_users" in dot
        assert "cluster_roles" in dot
        assert "cluster_permissions" in dot

    def test_empty_state(self):
        dot = state_to_dot(RbacState())
        assert dot.startswith('graph "rbac" {')
        assert dot.rstrip().endswith("}")

    def test_identifiers_are_escaped(self):
        state = RbacState.build(users=['we"ird'], roles=["r"], permissions=[])
        state.assign_user("r", 'we"ird')
        dot = state_to_dot(state)
        assert '\\"' in dot

    def test_graph_name(self, paper_example):
        assert state_to_dot(paper_example, graph_name="fig1").startswith(
            'graph "fig1" {'
        )


class TestHighlighting:
    def test_standalone_node_highlighted(self, paper_example):
        report = analyze(paper_example)
        dot = state_to_dot(paper_example, report)
        p01_line = next(
            l for l in dot.splitlines() if '"permission:P01"' in l and "[" in l
        )
        assert "#f4cccc" in p01_line  # standalone colour

    def test_disconnected_roles_highlighted(self, paper_example):
        report = analyze(paper_example)
        dot = state_to_dot(paper_example, report)
        for role_id in ("R02", "R03"):
            line = next(
                l
                for l in dot.splitlines()
                if f'"role:{role_id}"' in l and "[" in l
            )
            # R02 is also in a duplicate group; duplicate < disconnected
            assert "#f9cb9c" in line

    def test_duplicate_groups_tagged(self, paper_example):
        report = analyze(paper_example)
        dot = state_to_dot(paper_example, report)
        r05_line = next(
            l for l in dot.splitlines() if '"role:R05"' in l and "[" in l
        )
        assert "dup-p" in r05_line

    def test_no_report_no_highlight(self, paper_example):
        dot = state_to_dot(paper_example)
        assert "#f4cccc" not in dot
