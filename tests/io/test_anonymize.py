"""Unit tests for the anonymisation pass."""

from __future__ import annotations

from repro.core import analyze
from repro.io import anonymize


class TestStructurePreservation:
    def test_sizes_unchanged(self, paper_example):
        anon = anonymize(paper_example)
        assert anon.n_users == paper_example.n_users
        assert anon.n_roles == paper_example.n_roles
        assert anon.n_permissions == paper_example.n_permissions
        assert anon.n_user_assignments == paper_example.n_user_assignments
        assert (
            anon.n_permission_assignments
            == paper_example.n_permission_assignments
        )

    def test_detection_results_identical(self, paper_example):
        """All detection counts carry over one-to-one — the property that
        makes anonymised sharing useful."""
        original = analyze(paper_example).counts()
        anonymised = analyze(anonymize(paper_example)).counts()
        assert original == anonymised

    def test_original_ids_absent(self, paper_example):
        anon = anonymize(paper_example)
        for user_id in paper_example.user_ids():
            assert not anon.has_user(user_id)
        for role_id in paper_example.role_ids():
            assert not anon.has_role(role_id)

    def test_attributes_dropped(self, small_org_state):
        anon = anonymize(small_org_state)
        sample_role = anon.role_ids()[0]
        assert dict(anon.get_role(sample_role).attributes) == {}


class TestKeying:
    def test_same_key_same_pseudonyms(self, paper_example):
        a = anonymize(paper_example, key="secret")
        b = anonymize(paper_example, key="secret")
        assert a == b

    def test_different_keys_differ(self, paper_example):
        a = anonymize(paper_example, key="one")
        b = anonymize(paper_example, key="two")
        assert set(a.user_ids()) != set(b.user_ids())

    def test_kind_prefixes(self, paper_example):
        anon = anonymize(paper_example)
        assert all(u.startswith("u-") for u in anon.user_ids())
        assert all(r.startswith("r-") for r in anon.role_ids())
        assert all(p.startswith("p-") for p in anon.permission_ids())

    def test_source_not_modified(self, paper_example):
        snapshot = paper_example.copy()
        anonymize(paper_example)
        assert paper_example == snapshot
