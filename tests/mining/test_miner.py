"""Unit tests for the role-mining baseline."""

from __future__ import annotations

import pytest

from repro.core.state import RbacState
from repro.exceptions import ConfigurationError
from repro.mining import (
    greedy_role_cover,
    mine_candidate_roles,
    upa_from_state,
)


@pytest.fixture
def state() -> RbacState:
    """Three user profiles: {p1,p2}, {p2,p3}, {p2} (x2 users)."""
    return RbacState.build(
        users=["u1", "u2", "u3", "u4"],
        roles=["ra", "rb", "rc"],
        permissions=["p1", "p2", "p3"],
        user_assignments=[
            ("ra", "u1"),
            ("rb", "u2"),
            ("rc", "u3"), ("rc", "u4"),
        ],
        permission_assignments=[
            ("ra", "p1"), ("ra", "p2"),
            ("rb", "p2"), ("rb", "p3"),
            ("rc", "p2"),
        ],
    )


class TestUpa:
    def test_effective_profiles(self, state):
        upa = upa_from_state(state)
        assert upa == {
            "u1": {"p1", "p2"},
            "u2": {"p2", "p3"},
            "u3": {"p2"},
            "u4": {"p2"},
        }

    def test_permissionless_users_excluded(self, state):
        state.add_user("ghost")
        assert "ghost" not in upa_from_state(state)


class TestMining:
    def test_candidates_include_profiles_and_intersections(self, state):
        mined = {role.permissions for role in mine_candidate_roles(state)}
        assert frozenset({"p1", "p2"}) in mined
        assert frozenset({"p2", "p3"}) in mined
        assert frozenset({"p2"}) in mined  # both a profile & intersection

    def test_support_counts_supersets(self, state):
        mined = {
            role.permissions: role for role in mine_candidate_roles(state)
        }
        # every user's profile contains p2
        assert mined[frozenset({"p2"})].support == 4
        assert mined[frozenset({"p1", "p2"})].support == 1

    def test_sorted_by_support(self, state):
        supports = [role.support for role in mine_candidate_roles(state)]
        assert supports == sorted(supports, reverse=True)

    def test_deterministic(self, state):
        assert mine_candidate_roles(state) == mine_candidate_roles(state)

    def test_candidate_explosion_guarded(self, state):
        with pytest.raises(ConfigurationError, match="explosion"):
            mine_candidate_roles(state, max_candidates=2)

    def test_empty_state(self):
        assert mine_candidate_roles(RbacState()) == []


class TestGreedyCover:
    def test_full_coverage_with_unbounded_budget(self, state):
        result = greedy_role_cover(state)
        assert result.coverage == 1.0
        assert result.covered_cells == result.total_cells == 6

    def test_roles_never_over_grant(self, state):
        """Selected rectangles stay inside the original UPA."""
        upa = upa_from_state(state)
        for role in greedy_role_cover(state).selected:
            for user_id in role.users:
                assert role.permissions <= upa[user_id]

    def test_budget_limits_roles(self, state):
        result = greedy_role_cover(state, max_roles=1)
        assert result.n_roles == 1
        assert 0 < result.coverage < 1.0

    def test_first_pick_maximises_cells(self, state):
        result = greedy_role_cover(state, max_roles=1)
        # {p2} x 4 users = 4 cells is the single biggest rectangle
        assert result.selected[0].permissions == {"p2"}
        assert result.covered_cells == 4

    def test_zero_budget(self, state):
        result = greedy_role_cover(state, max_roles=0)
        assert result.n_roles == 0
        assert result.coverage == 0.0

    def test_negative_budget_rejected(self, state):
        with pytest.raises(ConfigurationError):
            greedy_role_cover(state, max_roles=-1)

    def test_empty_state_trivially_covered(self):
        result = greedy_role_cover(RbacState())
        assert result.coverage == 1.0
        assert result.n_roles == 0


class TestMiningVsConsolidationContrast:
    def test_consolidation_preserves_definitions_mining_does_not(self):
        """The paper's §II argument, as an executable assertion: mined
        role definitions need not match any existing role, while
        consolidation only ever keeps existing definitions."""
        from repro.core import analyze
        from repro.datagen import add_role_twin
        from repro.remediation import apply_plan, build_plan

        state = RbacState.build(
            users=["u1", "u2"],
            roles=["orig"],
            permissions=["p1", "p2"],
            user_assignments=[("orig", "u1"), ("orig", "u2")],
            permission_assignments=[("orig", "p1"), ("orig", "p2")],
        )
        add_role_twin(state, "orig")

        consolidated = apply_plan(state, build_plan(analyze(state)))
        surviving = {
            consolidated.permissions_of_role(role_id)
            for role_id in consolidated.role_ids()
        }
        original = {
            state.permissions_of_role(role_id)
            for role_id in state.role_ids()
        }
        assert surviving <= original  # consolidation: no new definitions

        mined = {role.permissions for role in mine_candidate_roles(state)}
        # mining proposes definitions from profiles/intersections, which
        # may (and here do) coincide with nothing but the full profile
        assert mined == {frozenset({"p1", "p2"})}
