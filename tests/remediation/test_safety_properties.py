"""Property-based safety tests: the central remediation invariant.

For ANY state, building the default plan and applying it must never
change a surviving user's effective permission set (minus permissions
that were provably unreachable).  This is the guarantee that makes
automated consolidation trustworthy.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.core.state import RbacState
from repro.remediation import apply_plan, build_plan, measure_reduction

identifier = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=6
)


@st.composite
def rbac_states(draw) -> RbacState:
    users = draw(st.lists(identifier, min_size=1, max_size=8, unique=True))
    roles = draw(st.lists(identifier, min_size=1, max_size=10, unique=True))
    permissions = draw(
        st.lists(identifier, min_size=1, max_size=8, unique=True)
    )
    state = RbacState.build(users=users, roles=roles, permissions=permissions)
    # Dense-ish random edges plus forced duplicates for interesting plans.
    for _ in range(draw(st.integers(min_value=0, max_value=20))):
        state.assign_user(
            draw(st.sampled_from(roles)), draw(st.sampled_from(users))
        )
    for _ in range(draw(st.integers(min_value=0, max_value=20))):
        state.assign_permission(
            draw(st.sampled_from(roles)), draw(st.sampled_from(permissions))
        )
    if len(roles) >= 2 and draw(st.booleans()):
        # Force a duplicate pair.
        source, target = roles[0], roles[1]
        for user_id in state.users_of_role(source):
            state.assign_user(target, user_id)
        for user_id in state.users_of_role(target) - state.users_of_role(
            source
        ):
            state.revoke_user(target, user_id)
    return state


class TestSafetyInvariant:
    @given(rbac_states())
    @settings(max_examples=60, deadline=None)
    def test_effective_permissions_never_change(self, state):
        before = state.effective_permission_map()
        plan = build_plan(analyze(state))
        cleaned = apply_plan(state, plan)  # raises on violation
        after = cleaned.effective_permission_map()
        for user_id, had in before.items():
            if cleaned.has_user(user_id):
                assert after[user_id] == had - (
                    had - frozenset(cleaned.permission_ids())
                )

    @given(rbac_states())
    @settings(max_examples=60, deadline=None)
    def test_reduction_metrics_never_negative(self, state):
        plan = build_plan(analyze(state))
        cleaned = apply_plan(state, plan)
        metrics = measure_reduction(state, cleaned)
        assert metrics.roles_removed >= 0
        assert metrics.edges_removed >= 0
        assert 0.0 <= metrics.role_reduction_fraction <= 1.0

    @given(rbac_states())
    @settings(max_examples=30, deadline=None)
    def test_cleanup_converges(self, state):
        """Applying plans repeatedly reaches a fixed point: eventually no
        actionable findings remain (the paper's periodic-run story)."""
        current = state
        for _round in range(6):
            plan = build_plan(analyze(current))
            if not plan.actions:
                break
            next_state = apply_plan(current, plan)
            # strictly decreasing entity count guarantees termination
            assert (
                next_state.n_roles + next_state.n_users
                + next_state.n_permissions
                < current.n_roles + current.n_users + current.n_permissions
            )
            current = next_state
        else:
            raise AssertionError("cleanup did not converge in 6 rounds")

    @given(rbac_states())
    @settings(max_examples=30, deadline=None)
    def test_post_clean_state_has_no_duplicate_findings(self, state):
        current = state
        for _round in range(6):
            plan = build_plan(analyze(current))
            if not plan.actions:
                break
            current = apply_plan(current, plan)
        counts = analyze(current).counts()
        assert counts["roles_same_users"] == 0
        assert counts["roles_same_permissions"] == 0
        assert counts["standalone_users"] == 0
        assert counts["standalone_permissions"] == 0
        assert counts["roles_without_users"] == 0
        assert counts["roles_without_permissions"] == 0
