"""Unit tests for the remediation planner."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.core.entities import EntityKind
from repro.core.state import RbacState
from repro.core.taxonomy import Axis
from repro.datagen import add_role_twin, add_standalone_user
from repro.remediation import (
    MergeRoles,
    PlannerOptions,
    RemoveNode,
    build_plan,
)


@pytest.fixture
def messy_state(paper_example) -> RbacState:
    add_standalone_user(paper_example, "ghost")
    return paper_example


class TestDefaults:
    def test_standalone_nodes_removed(self, messy_state):
        plan = build_plan(analyze(messy_state))
        removals = [a for a in plan if isinstance(a, RemoveNode)]
        removed_ids = {a.entity_id for a in removals}
        assert "ghost" in removed_ids
        assert "P01" in removed_ids  # standalone permission of Figure 1

    def test_disconnected_roles_removed(self, messy_state):
        plan = build_plan(analyze(messy_state))
        removed_roles = {
            a.entity_id
            for a in plan
            if isinstance(a, RemoveNode) and a.kind is EntityKind.ROLE
        }
        assert {"R02", "R03"} <= removed_roles

    def test_duplicates_merged_per_group(self, messy_state):
        plan = build_plan(analyze(messy_state))
        merges = [a for a in plan if isinstance(a, MergeRoles)]
        # R02/R04 share users but R02 was already removed (disconnected),
        # so only the permissions-axis pair (R04, R05) produces a merge.
        assert len(merges) == 1
        assert merges[0].keep_role_id == "R04"
        assert merges[0].remove_role_ids == ("R05",)
        assert merges[0].axis is Axis.PERMISSIONS

    def test_similar_roles_become_suggestions(self):
        state = RbacState.build(
            users=["u1", "u2", "u3"],
            roles=["a", "b"],
            permissions=["p1", "p2", "p3", "p4"],
            user_assignments=[
                ("a", "u1"), ("a", "u2"),
                ("b", "u1"), ("b", "u2"), ("b", "u3"),
            ],
            permission_assignments=[
                ("a", "p1"), ("a", "p2"),
                ("b", "p3"), ("b", "p4"),
            ],
        )
        plan = build_plan(analyze(state))
        assert not [a for a in plan if isinstance(a, MergeRoles)]
        assert any(
            set(s.role_ids) == {"a", "b"} for s in plan.suggestions
        )

    def test_each_role_touched_once(self, messy_state):
        # Make R04 a duplicate on both axes via a full twin: the planner
        # must not merge the same role twice.
        twin = add_role_twin(messy_state, "R04")
        plan = build_plan(analyze(messy_state))
        touched: list[str] = []
        for action in plan:
            if isinstance(action, MergeRoles):
                touched.append(action.keep_role_id)
                touched.extend(action.remove_role_ids)
            elif (
                isinstance(action, RemoveNode)
                and action.kind is EntityKind.ROLE
            ):
                touched.append(action.entity_id)
        assert len(touched) == len(set(touched))
        assert twin in touched

    def test_keeper_is_smallest_id(self):
        state = RbacState.build(
            users=["u1"],
            roles=["zz", "aa"],
            permissions=["p1"],
            user_assignments=[("zz", "u1"), ("aa", "u1")],
            permission_assignments=[("zz", "p1"), ("aa", "p1")],
        )
        plan = build_plan(analyze(state))
        merges = [a for a in plan if isinstance(a, MergeRoles)]
        assert merges[0].keep_role_id == "aa"

    def test_plan_deterministic(self, messy_state):
        report = analyze(messy_state)
        assert build_plan(report).to_dict() == build_plan(report).to_dict()


class TestOptions:
    def test_disable_standalone_user_removal(self, messy_state):
        options = PlannerOptions(remove_standalone_users=False)
        plan = build_plan(analyze(messy_state), options)
        assert not any(
            isinstance(a, RemoveNode) and a.kind is EntityKind.USER
            for a in plan
        )

    def test_disable_merging(self, messy_state):
        options = PlannerOptions(merge_duplicate_roles=False)
        plan = build_plan(analyze(messy_state), options)
        assert not any(isinstance(a, MergeRoles) for a in plan)

    def test_single_axis_merging(self, paper_example):
        options = PlannerOptions(
            remove_disconnected_roles=False,
            merge_axes=(Axis.USERS,),
        )
        plan = build_plan(analyze(paper_example), options)
        merges = [a for a in plan if isinstance(a, MergeRoles)]
        assert [m.axis for m in merges] == [Axis.USERS]

    def test_single_assignment_suggestions_opt_in(self, paper_example):
        plan_default = build_plan(analyze(paper_example))
        options = PlannerOptions(suggest_single_assignment_roles=True)
        plan_opted = build_plan(analyze(paper_example), options)
        assert len(plan_opted.suggestions) > len(plan_default.suggestions)
