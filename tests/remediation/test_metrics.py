"""Unit tests for reduction metrics."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.core.state import RbacState
from repro.remediation import apply_plan, build_plan, measure_reduction


class TestMetrics:
    def test_no_change(self, paper_example):
        metrics = measure_reduction(paper_example, paper_example.copy())
        assert metrics.roles_removed == 0
        assert metrics.role_reduction_fraction == 0.0
        assert metrics.edges_removed == 0

    def test_paper_example_reduction(self, paper_example):
        plan = build_plan(analyze(paper_example))
        cleaned = apply_plan(paper_example, plan)
        metrics = measure_reduction(paper_example, cleaned)
        assert metrics.roles_before == 5
        assert metrics.roles_after == 2
        assert metrics.roles_removed == 3
        assert metrics.role_reduction_fraction == pytest.approx(0.6)

    def test_empty_state_fraction_is_zero(self):
        metrics = measure_reduction(RbacState(), RbacState())
        assert metrics.role_reduction_fraction == 0.0

    def test_describe_mentions_counts(self, paper_example):
        plan = build_plan(analyze(paper_example))
        cleaned = apply_plan(paper_example, plan)
        text = measure_reduction(paper_example, cleaned).describe()
        assert "5 -> 2" in text
        assert "60.0%" in text


class TestPaperHeadline:
    def test_planted_org_reproduces_ten_percent(self):
        """§IV-B: consolidating same-user/same-permission groups removes
        ~10% of all roles.  The planted profile keeps the paper's
        proportions, so the headline must reproduce exactly."""
        from repro.core import AnalysisConfig, InefficiencyType
        from repro.datagen import OrgProfile, generate_org

        org = generate_org(OrgProfile.small(divisor=100, seed=3))
        report = analyze(org.state)
        potential = report.consolidation_potential()
        # pairs: (80 same-user + 20 same-perm) roles → 40 + 10 removable
        assert potential["removable_via_same_users"] == 40
        assert potential["removable_via_same_permissions"] == 10
        assert potential["fraction_of_roles"] == pytest.approx(0.10)
