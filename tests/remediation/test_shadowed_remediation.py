"""Tests for shadowed-role remediation (planner + apply + safety)."""

from __future__ import annotations

import pytest

from repro.core import AnalysisConfig, analyze
from repro.core.state import RbacState
from repro.exceptions import RemediationError
from repro.remediation import (
    PlannerOptions,
    RemediationPlan,
    RemoveShadowedRole,
    apply_plan,
    build_plan,
    run_to_fixed_point,
)


@pytest.fixture
def shadowed_state() -> RbacState:
    return RbacState.build(
        users=["a", "b"],
        roles=["big", "small"],
        permissions=["p", "q"],
        user_assignments=[("big", "a"), ("big", "b"), ("small", "a")],
        permission_assignments=[("big", "p"), ("big", "q"), ("small", "p")],
    )


class TestAction:
    def test_self_shadowing_rejected(self):
        with pytest.raises(ValueError):
            RemoveShadowedRole("r", "r")

    def test_describe(self):
        action = RemoveShadowedRole("small", "big")
        assert "shadowed by 'big'" in action.describe()

    def test_serialised_in_plan(self):
        plan = RemediationPlan(actions=[RemoveShadowedRole("small", "big")])
        assert plan.to_dict()["actions"][0] == {
            "action": "remove_shadowed_role",
            "role": "small",
            "shadowed_by": "big",
        }
        assert plan.n_role_removals == 1


class TestPlanner:
    def test_planned_from_extension_report(self, shadowed_state):
        report = analyze(shadowed_state, AnalysisConfig.with_extensions())
        plan = build_plan(report)
        shadowed = [
            a for a in plan if isinstance(a, RemoveShadowedRole)
        ]
        assert len(shadowed) == 1
        assert shadowed[0].role_id == "small"

    def test_opt_out(self, shadowed_state):
        report = analyze(shadowed_state, AnalysisConfig.with_extensions())
        plan = build_plan(
            report, PlannerOptions(remove_shadowed_roles=False)
        )
        assert not [a for a in plan if isinstance(a, RemoveShadowedRole)]

    def test_domination_chain_resolves_safely(self):
        # r1 ⊆ r2 ⊆ r3: r2 is both dominated (by r3) and a dominator (of
        # r1).  Actions are emitted in role order, so r1 is validated
        # against r2 *before* r2 itself is removed — both can go in one
        # round, and the loop converges to the maximal role alone.
        state = RbacState.build(
            users=["a", "b", "c"],
            roles=["r1", "r2", "r3"],
            permissions=["p1", "p2", "p3"],
            user_assignments=[
                ("r1", "a"),
                ("r2", "a"), ("r2", "b"),
                ("r3", "a"), ("r3", "b"), ("r3", "c"),
            ],
            permission_assignments=[
                ("r1", "p1"),
                ("r2", "p1"), ("r2", "p2"),
                ("r3", "p1"), ("r3", "p2"), ("r3", "p3"),
            ],
        )
        report = analyze(state, AnalysisConfig.with_extensions())
        plan = build_plan(report)
        shadowed = [a for a in plan if isinstance(a, RemoveShadowedRole)]
        assert {a.role_id for a in shadowed} == {"r1", "r2"}
        # r1 appears before r2, so its apply-time validation still sees r2
        positions = [a.role_id for a in shadowed]
        assert positions.index("r1") < positions.index("r2")
        cleaned = apply_plan(state, plan)
        assert cleaned.role_ids() == ["r3"]
        # and the loop is already at the fixed point afterwards
        result = run_to_fixed_point(
            state, config=AnalysisConfig.with_extensions()
        )
        assert result.converged
        assert result.final_state.role_ids() == ["r3"]


class TestApply:
    def test_removal_preserves_effective_access(self, shadowed_state):
        report = analyze(shadowed_state, AnalysisConfig.with_extensions())
        cleaned = apply_plan(shadowed_state, build_plan(report))
        assert not cleaned.has_role("small")
        for user_id in cleaned.user_ids():
            assert cleaned.effective_permissions(
                user_id
            ) == shadowed_state.effective_permissions(user_id)

    def test_stale_plan_rejected_on_user_drift(self, shadowed_state):
        plan = RemediationPlan(actions=[RemoveShadowedRole("small", "big")])
        shadowed_state.revoke_user("big", "a")  # breaks user domination
        with pytest.raises(RemediationError, match="user-dominated"):
            apply_plan(shadowed_state, plan)

    def test_stale_plan_rejected_on_permission_drift(self, shadowed_state):
        plan = RemediationPlan(actions=[RemoveShadowedRole("small", "big")])
        shadowed_state.revoke_permission("big", "p")
        with pytest.raises(RemediationError, match="permission-dominated"):
            apply_plan(shadowed_state, plan)

    def test_missing_roles_rejected(self, shadowed_state):
        plan = RemediationPlan(actions=[RemoveShadowedRole("ghost", "big")])
        with pytest.raises(RemediationError, match="no longer exists"):
            apply_plan(shadowed_state, plan)
