"""Unit tests for remediation action types and the plan container."""

from __future__ import annotations

import pytest

from repro.core.entities import EntityKind
from repro.core.taxonomy import Axis
from repro.remediation import (
    MergeRoles,
    RemediationPlan,
    RemoveNode,
    ReviewSuggestion,
)


class TestRemoveNode:
    def test_describe(self):
        action = RemoveNode(EntityKind.USER, "u1", "standalone user")
        assert "remove user 'u1'" in action.describe()
        assert "standalone user" in action.describe()


class TestMergeRoles:
    def test_needs_removals(self):
        with pytest.raises(ValueError):
            MergeRoles("keep", (), Axis.USERS)

    def test_keeper_cannot_be_removed(self):
        with pytest.raises(ValueError):
            MergeRoles("r1", ("r1", "r2"), Axis.USERS)

    def test_describe_mentions_axis(self):
        action = MergeRoles("r1", ("r2",), Axis.PERMISSIONS)
        assert "identical permissions" in action.describe()


class TestPlan:
    def _plan(self) -> RemediationPlan:
        return RemediationPlan(
            actions=[
                RemoveNode(EntityKind.USER, "u1", "standalone user"),
                MergeRoles("r1", ("r2", "r3"), Axis.USERS),
                RemoveNode(EntityKind.ROLE, "r9", "standalone role"),
            ],
            suggestions=[
                ReviewSuggestion("look at r5/r6", ("r5", "r6"), Axis.USERS)
            ],
        )

    def test_len_and_iter(self):
        plan = self._plan()
        assert len(plan) == 3
        assert list(plan) == plan.actions

    def test_n_role_removals(self):
        assert self._plan().n_role_removals == 3  # r2, r3 merged + r9

    def test_without_drops_indices(self):
        plan = self._plan().without(0, 2)
        assert len(plan) == 1
        assert isinstance(plan.actions[0], MergeRoles)
        assert len(plan.suggestions) == 1  # suggestions kept

    def test_to_dict_shapes(self):
        payload = self._plan().to_dict()
        assert payload["actions"][0] == {
            "action": "remove_node",
            "kind": "user",
            "entity_id": "u1",
            "reason": "standalone user",
        }
        assert payload["actions"][1] == {
            "action": "merge_roles",
            "keep": "r1",
            "remove": ["r2", "r3"],
            "axis": "users",
        }
        assert payload["suggestions"][0]["role_ids"] == ["r5", "r6"]

    def test_describe_lists_everything(self):
        text = self._plan().describe()
        assert "3 actions" in text
        assert "merge roles" in text
        assert "look at r5/r6" in text
