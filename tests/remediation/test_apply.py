"""Unit tests for plan application and its safety guarantees."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.core.entities import EntityKind
from repro.core.state import RbacState
from repro.core.taxonomy import Axis
from repro.exceptions import RemediationError
from repro.remediation import (
    MergeRoles,
    RemediationPlan,
    RemoveNode,
    apply_plan,
    build_plan,
)


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["u1", "u2"],
        roles=["r1", "r2", "r3"],
        permissions=["p1", "p2", "p3"],
        user_assignments=[
            ("r1", "u1"), ("r1", "u2"),
            ("r2", "u1"), ("r2", "u2"),
            ("r3", "u1"),
        ],
        permission_assignments=[
            ("r1", "p1"),
            ("r2", "p2"),
            ("r3", "p3"),
        ],
    )


class TestMergeSemantics:
    def test_merge_same_users_folds_permissions(self, state):
        plan = RemediationPlan(
            actions=[MergeRoles("r1", ("r2",), Axis.USERS)]
        )
        result = apply_plan(state, plan)
        assert not result.has_role("r2")
        assert result.permissions_of_role("r1") == {"p1", "p2"}
        # effective permissions unchanged
        assert result.effective_permissions("u1") == {"p1", "p2", "p3"}

    def test_merge_same_permissions_folds_users(self):
        state = RbacState.build(
            users=["u1", "u2"],
            roles=["a", "b"],
            permissions=["p1"],
            user_assignments=[("a", "u1"), ("b", "u2")],
            permission_assignments=[("a", "p1"), ("b", "p1")],
        )
        plan = RemediationPlan(
            actions=[MergeRoles("a", ("b",), Axis.PERMISSIONS)]
        )
        result = apply_plan(state, plan)
        assert result.users_of_role("a") == {"u1", "u2"}
        assert not result.has_role("b")

    def test_source_state_untouched(self, state):
        snapshot = state.copy()
        plan = RemediationPlan(actions=[MergeRoles("r1", ("r2",), Axis.USERS)])
        apply_plan(state, plan)
        assert state == snapshot


class TestStalenessChecks:
    def test_merge_with_drifted_group_rejected(self, state):
        plan = RemediationPlan(actions=[MergeRoles("r1", ("r3",), Axis.USERS)])
        with pytest.raises(RemediationError, match="no longer shares"):
            apply_plan(state, plan)

    def test_merge_with_missing_keeper_rejected(self, state):
        plan = RemediationPlan(
            actions=[MergeRoles("nope", ("r2",), Axis.USERS)]
        )
        with pytest.raises(RemediationError, match="keeper"):
            apply_plan(state, plan)

    def test_remove_user_with_roles_rejected(self, state):
        plan = RemediationPlan(
            actions=[RemoveNode(EntityKind.USER, "u1", "standalone user")]
        )
        with pytest.raises(RemediationError, match="stale"):
            apply_plan(state, plan)

    def test_remove_connected_role_rejected(self, state):
        plan = RemediationPlan(
            actions=[RemoveNode(EntityKind.ROLE, "r1", "standalone role")]
        )
        with pytest.raises(RemediationError, match="stale"):
            apply_plan(state, plan)

    def test_error_mentions_action_position(self, state):
        plan = RemediationPlan(
            actions=[
                MergeRoles("r1", ("r2",), Axis.USERS),
                MergeRoles("r1", ("r3",), Axis.USERS),
            ]
        )
        with pytest.raises(RemediationError, match="action #1"):
            apply_plan(state, plan)


class TestRemoveSemantics:
    def test_remove_standalone_nodes(self):
        state = RbacState.build(
            users=["ghost"], roles=["empty"], permissions=["unused"]
        )
        plan = RemediationPlan(
            actions=[
                RemoveNode(EntityKind.USER, "ghost", "standalone"),
                RemoveNode(EntityKind.ROLE, "empty", "standalone"),
                RemoveNode(EntityKind.PERMISSION, "unused", "standalone"),
            ]
        )
        result = apply_plan(state, plan)
        assert result.n_users == 0
        assert result.n_roles == 0
        assert result.n_permissions == 0

    def test_remove_disconnected_role_with_users(self):
        """A role with users but no permissions grants nothing: its
        removal passes the safety validation."""
        state = RbacState.build(
            users=["u1"],
            roles=["useless", "real"],
            permissions=["p1"],
            user_assignments=[("useless", "u1"), ("real", "u1")],
            permission_assignments=[("real", "p1")],
        )
        plan = RemediationPlan(
            actions=[RemoveNode(EntityKind.ROLE, "useless", "no permissions")]
        )
        result = apply_plan(state, plan)
        assert result.effective_permissions("u1") == {"p1"}


class TestEndToEnd:
    def test_full_cycle_on_paper_example(self, paper_example):
        report = analyze(paper_example)
        plan = build_plan(report)
        result = apply_plan(paper_example, plan)
        # R02/R03 removed, R05 merged into R04, P01 removed.
        assert result.role_ids() == ["R01", "R04"]
        assert not result.has_permission("P01")
        # users keep their effective permissions
        for user_id in result.user_ids():
            assert result.effective_permissions(
                user_id
            ) == paper_example.effective_permissions(user_id)

    def test_validation_can_be_disabled(self, paper_example):
        plan = build_plan(analyze(paper_example))
        result = apply_plan(paper_example, plan, validate_safety=False)
        assert result.n_roles == 2
