"""Unit tests for the fixed-point cleanup loop."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.core.state import RbacState
from repro.datagen import OrgProfile, generate_org
from repro.exceptions import RemediationError
from repro.remediation import run_to_fixed_point
from repro.remediation.planner import PlannerOptions


class TestConvergence:
    def test_clean_state_converges_immediately(self):
        state = RbacState.build(
            users=["u1"], roles=["r1"], permissions=["p1"],
            user_assignments=[("r1", "u1")],
            permission_assignments=[("r1", "p1")],
        )
        result = run_to_fixed_point(state)
        assert result.converged
        assert result.n_rounds == 0
        assert result.final_state == state

    def test_paper_example_converges(self, paper_example):
        result = run_to_fixed_point(paper_example)
        assert result.converged
        assert result.n_rounds >= 1
        assert result.final_state.n_roles == 2
        # input untouched
        assert paper_example.n_roles == 5

    def test_planted_org_round_history(self):
        org = generate_org(OrgProfile.small(divisor=200, seed=11))
        result = run_to_fixed_point(org.state)
        assert result.converged
        assert result.rounds[0].plan.actions
        assert result.reduction.roles_removed > 0
        # role counts strictly decrease per round
        counts = [r.roles_after for r in result.rounds]
        assert counts == sorted(counts, reverse=True)
        # the final state is truly a fixed point
        final_counts = analyze(result.final_state).counts()
        assert final_counts["roles_same_users"] == 0
        assert final_counts["roles_without_users"] == 0

    def test_max_rounds_exceeded_raises(self, paper_example):
        with pytest.raises(RemediationError, match="fixed point"):
            run_to_fixed_point(paper_example, max_rounds=0)

    def test_planner_options_respected(self, paper_example):
        options = PlannerOptions(
            remove_standalone_permissions=False,
            remove_disconnected_roles=False,
            merge_duplicate_roles=False,
            remove_standalone_users=False,
            remove_standalone_roles=False,
        )
        result = run_to_fixed_point(paper_example, planner_options=options)
        assert result.converged
        assert result.n_rounds == 0  # nothing is actionable

    def test_describe(self, paper_example):
        text = run_to_fixed_point(paper_example).describe()
        assert "converged" in text
        assert "round 1" in text
        assert "total:" in text
