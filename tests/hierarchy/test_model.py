"""Unit tests for the role-hierarchy model and flattening."""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.core.state import RbacState
from repro.exceptions import UnknownEntityError, ValidationError
from repro.hierarchy import RoleHierarchy, flatten


@pytest.fixture
def org() -> RbacState:
    """engineer < senior-engineer < principal, plus an unrelated auditor."""
    return RbacState.build(
        users=["eve", "sam", "pat", "quinn"],
        roles=["engineer", "senior-engineer", "principal", "auditor"],
        permissions=["code:read", "code:write", "deploy", "audit:read"],
        user_assignments=[
            ("engineer", "eve"),
            ("senior-engineer", "sam"),
            ("principal", "pat"),
            ("auditor", "quinn"),
        ],
        permission_assignments=[
            ("engineer", "code:read"),
            ("senior-engineer", "code:write"),
            ("principal", "deploy"),
            ("auditor", "audit:read"),
        ],
    )


@pytest.fixture
def chain() -> RoleHierarchy:
    return RoleHierarchy(
        [
            ("senior-engineer", "engineer"),
            ("principal", "senior-engineer"),
        ]
    )


class TestHierarchyStructure:
    def test_edges_deterministic(self, chain):
        assert list(chain.edges()) == [
            ("principal", "senior-engineer"),
            ("senior-engineer", "engineer"),
        ]
        assert chain.n_edges == 2

    def test_direct_vs_transitive(self, chain):
        assert chain.direct_juniors("principal") == {"senior-engineer"}
        assert chain.all_juniors("principal") == {
            "senior-engineer", "engineer",
        }
        assert chain.all_seniors("engineer") == {
            "senior-engineer", "principal",
        }

    def test_inherits_is_reflexive_transitive(self, chain):
        assert chain.inherits("principal", "principal")
        assert chain.inherits("principal", "engineer")
        assert not chain.inherits("engineer", "principal")

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError, match="cannot inherit itself"):
            RoleHierarchy([("a", "a")])

    def test_cycle_rejected(self):
        hierarchy = RoleHierarchy([("a", "b"), ("b", "c")])
        with pytest.raises(ValidationError, match="cycle"):
            hierarchy.add_inheritance("c", "a")

    def test_remove_edge(self, chain):
        chain.remove_inheritance("principal", "senior-engineer")
        assert chain.all_juniors("principal") == frozenset()
        chain.remove_inheritance("never", "existed")  # no-op

    def test_to_networkx_is_dag(self, chain):
        import networkx as nx

        graph = chain.to_networkx()
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.number_of_edges() == 2


class TestFlatten:
    def test_permissions_flow_up(self, org, chain):
        flat = flatten(org, chain)
        assert flat.permissions_of_role("principal") == {
            "code:read", "code:write", "deploy",
        }
        assert flat.permissions_of_role("senior-engineer") == {
            "code:read", "code:write",
        }
        assert flat.permissions_of_role("engineer") == {"code:read"}

    def test_users_flow_down(self, org, chain):
        flat = flatten(org, chain)
        assert flat.users_of_role("engineer") == {"eve", "sam", "pat"}
        assert flat.users_of_role("senior-engineer") == {"sam", "pat"}
        assert flat.users_of_role("principal") == {"pat"}

    def test_effective_permissions_match_rbac1(self, org, chain):
        flat = flatten(org, chain)
        assert flat.effective_permissions("pat") == {
            "code:read", "code:write", "deploy",
        }
        assert flat.effective_permissions("sam") == {
            "code:read", "code:write",
        }
        assert flat.effective_permissions("eve") == {"code:read"}
        assert flat.effective_permissions("quinn") == {"audit:read"}

    def test_original_untouched(self, org, chain):
        snapshot = org.copy()
        flatten(org, chain)
        assert org == snapshot

    def test_unknown_role_rejected(self, org):
        with pytest.raises(UnknownEntityError):
            flatten(org, RoleHierarchy([("ghost", "engineer")]))

    def test_empty_hierarchy_is_identity(self, org):
        assert flatten(org, RoleHierarchy()) == org


class TestDetectionThroughHierarchy:
    def test_hidden_duplicates_surface_after_flattening(self):
        """Two roles with different direct grants but identical effective
        access — invisible flat, found after flattening."""
        state = RbacState.build(
            users=["u1", "u2"],
            roles=["base", "variant-a", "variant-b"],
            permissions=["p1", "p2"],
            user_assignments=[
                ("variant-a", "u1"), ("variant-a", "u2"),
                ("variant-b", "u1"), ("variant-b", "u2"),
            ],
            permission_assignments=[
                ("base", "p1"),
                ("variant-a", "p2"),
                ("variant-b", "p1"), ("variant-b", "p2"),
            ],
        )
        hierarchy = RoleHierarchy([("variant-a", "base")])

        flat_counts = analyze(state).counts()
        assert flat_counts["roles_same_permissions"] == 0  # hidden

        flattened_counts = analyze(flatten(state, hierarchy)).counts()
        assert flattened_counts["roles_same_permissions"] == 2  # surfaced


class TestHierarchyJsonIO:
    def test_round_trip(self, chain, tmp_path):
        from repro.hierarchy import load_hierarchy_json, save_hierarchy_json

        path = tmp_path / "hierarchy.json"
        save_hierarchy_json(chain, path)
        restored = load_hierarchy_json(path)
        assert list(restored.edges()) == list(chain.edges())

    def test_bad_format_rejected(self, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.hierarchy import load_hierarchy_json

        path = tmp_path / "x.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(DataFormatError, match="repro-hierarchy"):
            load_hierarchy_json(path)

    def test_cyclic_document_rejected(self, tmp_path):
        import json

        from repro.exceptions import DataFormatError
        from repro.hierarchy import load_hierarchy_json

        path = tmp_path / "cyclic.json"
        path.write_text(json.dumps({
            "format": "repro-hierarchy", "version": 1,
            "edges": [["a", "b"], ["b", "a"]],
        }))
        with pytest.raises(DataFormatError, match="invalid hierarchy"):
            load_hierarchy_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        from repro.exceptions import DataFormatError
        from repro.hierarchy import load_hierarchy_json

        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(DataFormatError, match="invalid JSON"):
            load_hierarchy_json(path)
