"""Unit tests for hierarchy-specific inefficiency detection."""

from __future__ import annotations

import pytest

from repro.core.state import RbacState
from repro.hierarchy import (
    RoleHierarchy,
    analyze_hierarchy,
    find_redundant_edges,
    find_void_edges,
)


@pytest.fixture
def state() -> RbacState:
    return RbacState.build(
        users=["u"],
        roles=["a", "b", "c", "d"],
        permissions=["p1", "p2", "p3"],
        user_assignments=[("a", "u")],
        permission_assignments=[
            ("a", "p1"),
            ("b", "p2"),
            ("c", "p3"),
            # d has no permissions of its own
        ],
    )


class TestRedundantEdges:
    def test_transitive_edge_flagged(self):
        hierarchy = RoleHierarchy(
            [("a", "b"), ("b", "c"), ("a", "c")]  # a->c implied via b
        )
        findings = find_redundant_edges(hierarchy)
        assert [(f.senior, f.junior) for f in findings] == [("a", "c")]
        assert "implied through 'b'" in findings[0].message

    def test_reduced_dag_has_no_findings(self):
        hierarchy = RoleHierarchy([("a", "b"), ("b", "c")])
        assert find_redundant_edges(hierarchy) == []

    def test_diamond_is_not_redundant(self):
        # a->b, a->c, b->d, c->d: every edge is in the reduction.
        hierarchy = RoleHierarchy(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert find_redundant_edges(hierarchy) == []

    def test_longer_chains_detected(self):
        hierarchy = RoleHierarchy(
            [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]
        )
        findings = find_redundant_edges(hierarchy)
        assert [(f.senior, f.junior) for f in findings] == [("a", "d")]


class TestVoidEdges:
    def test_edge_to_permissionless_role_is_void(self, state):
        hierarchy = RoleHierarchy([("a", "d")])  # d grants nothing
        findings = find_void_edges(state, hierarchy)
        assert [(f.senior, f.junior) for f in findings] == [("a", "d")]

    def test_edge_adding_new_permission_not_void(self, state):
        hierarchy = RoleHierarchy([("a", "b")])
        assert find_void_edges(state, hierarchy) == []

    def test_edge_duplicating_own_grant_is_void(self):
        state = RbacState.build(
            roles=["senior", "junior"],
            permissions=["p"],
            permission_assignments=[("senior", "p"), ("junior", "p")],
        )
        hierarchy = RoleHierarchy([("senior", "junior")])
        findings = find_void_edges(state, hierarchy)
        assert [(f.senior, f.junior) for f in findings] == [
            ("senior", "junior")
        ]

    def test_edge_covered_by_sibling_subtree_is_void(self, state):
        # a->b and a->c both reach p2 if c also grants p2.
        state.assign_permission("c", "p2")
        hierarchy = RoleHierarchy([("a", "b"), ("a", "c")])
        findings = find_void_edges(state, hierarchy)
        assert [(f.senior, f.junior) for f in findings] == [("a", "b")]


class TestAnalyzeHierarchy:
    def test_redundant_reported_once(self, state):
        # a->c is redundant (via b) and also void; report only redundant.
        hierarchy = RoleHierarchy([("a", "b"), ("b", "c"), ("a", "c")])
        findings = analyze_hierarchy(state, hierarchy)
        kinds = [(f.kind, f.senior, f.junior) for f in findings]
        assert ("redundant_edge", "a", "c") in kinds
        assert ("void_edge", "a", "c") not in kinds

    def test_clean_hierarchy_no_findings(self, state):
        hierarchy = RoleHierarchy([("a", "b"), ("b", "c")])
        assert analyze_hierarchy(state, hierarchy) == []

    def test_findings_serialisable(self, state):
        import json

        hierarchy = RoleHierarchy([("a", "d")])
        payload = [f.to_dict() for f in analyze_hierarchy(state, hierarchy)]
        json.dumps(payload)
        assert payload[0]["kind"] == "void_edge"
