"""Property-based tests for role hierarchies."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.state import RbacState
from repro.exceptions import ValidationError
from repro.hierarchy import RoleHierarchy, find_redundant_edges, flatten

ROLES = [f"r{i}" for i in range(8)]
USERS = [f"u{i}" for i in range(6)]
PERMISSIONS = [f"p{i}" for i in range(6)]


@st.composite
def hierarchies(draw) -> RoleHierarchy:
    """Random DAGs built by only allowing edges high → low index."""
    hierarchy = RoleHierarchy()
    n_edges = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_edges):
        senior = draw(st.integers(min_value=1, max_value=len(ROLES) - 1))
        junior = draw(st.integers(min_value=0, max_value=senior - 1))
        hierarchy.add_inheritance(ROLES[senior], ROLES[junior])
    return hierarchy


@st.composite
def states(draw) -> RbacState:
    state = RbacState.build(
        users=USERS, roles=ROLES, permissions=PERMISSIONS
    )
    for _ in range(draw(st.integers(min_value=0, max_value=15))):
        state.assign_user(
            draw(st.sampled_from(ROLES)), draw(st.sampled_from(USERS))
        )
    for _ in range(draw(st.integers(min_value=0, max_value=15))):
        state.assign_permission(
            draw(st.sampled_from(ROLES)), draw(st.sampled_from(PERMISSIONS))
        )
    return state


class TestClosureProperties:
    @given(hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_closures_are_consistent(self, hierarchy):
        for role in ROLES:
            for junior in hierarchy.all_juniors(role):
                assert role in hierarchy.all_seniors(junior)
                assert hierarchy.inherits(role, junior)

    @given(hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_acyclic_by_construction(self, hierarchy):
        for role in ROLES:
            assert role not in hierarchy.all_juniors(role)

    @given(hierarchies(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_back_edge_always_rejected(self, hierarchy, data):
        edges = list(hierarchy.edges())
        assume(edges)
        senior, junior = data.draw(st.sampled_from(edges))
        with pytest_raises_validation():
            hierarchy.add_inheritance(junior, senior)


class TestFlattenProperties:
    @given(states(), hierarchies())
    @settings(max_examples=50, deadline=None)
    def test_flatten_matches_manual_closure(self, state, hierarchy):
        flat = flatten(state, hierarchy)
        for role in ROLES:
            expected_perms = set(state.permissions_of_role(role))
            for junior in hierarchy.all_juniors(role):
                expected_perms.update(state.permissions_of_role(junior))
            assert flat.permissions_of_role(role) == expected_perms
            expected_users = set(state.users_of_role(role))
            for senior in hierarchy.all_seniors(role):
                expected_users.update(state.users_of_role(senior))
            assert flat.users_of_role(role) == expected_users

    @given(states(), hierarchies())
    @settings(max_examples=30, deadline=None)
    def test_flatten_is_idempotent(self, state, hierarchy):
        once = flatten(state, hierarchy)
        twice = flatten(once, hierarchy)
        assert once == twice

    @given(states(), hierarchies())
    @settings(max_examples=30, deadline=None)
    def test_flatten_only_adds_access(self, state, hierarchy):
        flat = flatten(state, hierarchy)
        for user in USERS:
            assert state.effective_permissions(
                user
            ) <= flat.effective_permissions(user)

    @given(states(), hierarchies())
    @settings(max_examples=30, deadline=None)
    def test_redundant_edge_removal_preserves_flattening(
        self, state, hierarchy
    ):
        """Dropping a redundant edge never changes effective access —
        the justification for flagging it."""
        findings = find_redundant_edges(hierarchy)
        baseline = flatten(state, hierarchy)
        for finding in findings:
            hierarchy.remove_inheritance(finding.senior, finding.junior)
        assert flatten(state, hierarchy) == baseline


class pytest_raises_validation:
    """Tiny context manager to avoid importing pytest into strategies."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        assert exc_type is not None and issubclass(
            exc_type, ValidationError
        ), "expected ValidationError"
        return True
