"""Top-level exit-code conventions of the CLI entry point.

A long ``analyze``/``bench``/``serve`` run killed with Ctrl-C must exit
with the conventional 128+SIGINT code and no traceback; a reader that
goes away mid-pipe (``repro analyze ... | head``) must look like a
successful pipeline participant, not an error.
"""

from __future__ import annotations

import importlib

import pytest

# ``import repro.cli.main as x`` would bind the re-exported ``main``
# *function* (the package attribute shadows the submodule); resolve the
# module itself so handlers can be monkeypatched on it.
cli_main = importlib.import_module("repro.cli.main")
main = cli_main.main


def raising_handler(error: BaseException):
    def handler(args):
        raise error

    return handler


@pytest.fixture
def patched_stats_handler(monkeypatch):
    """Route ``repro stats`` to a stub handler raising on demand."""

    def install(error: BaseException):
        monkeypatch.setattr(cli_main, "_cmd_stats", raising_handler(error))

    return install


class TestExitCodes:
    def test_keyboard_interrupt_exits_130(self, patched_stats_handler, capsys):
        patched_stats_handler(KeyboardInterrupt())
        assert main(["stats", "ignored.json"]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_broken_pipe_exits_0(self, patched_stats_handler, capsys):
        patched_stats_handler(BrokenPipeError())
        assert main(["stats", "ignored.json"]) == 0
        assert "Traceback" not in capsys.readouterr().err

    def test_repro_error_exits_1(self, patched_stats_handler, capsys):
        from repro.exceptions import ReproError

        patched_stats_handler(ReproError("bad input"))
        assert main(["stats", "ignored.json"]) == 1
        assert "error: bad input" in capsys.readouterr().err

    def test_os_error_exits_1_not_0(self, patched_stats_handler, capsys):
        # BrokenPipeError is an OSError subclass: the order of the
        # except clauses matters, and plain OSErrors must still fail.
        patched_stats_handler(OSError("disk trouble"))
        assert main(["stats", "ignored.json"]) == 1
        assert "error: disk trouble" in capsys.readouterr().err
