"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.io import load_json, save_json


@pytest.fixture
def dataset_path(paper_example, tmp_path):
    path = tmp_path / "dataset.json"
    save_json(paper_example, path)
    return path


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_error_exit_code(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing-dir")]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_text_output(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "RBAC inefficiency report" in out
        assert "roles_same_users" in out

    def test_json_output(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["roles_same_users"] == 2

    def test_markdown_output(self, dataset_path, capsys):
        assert (
            main(["analyze", str(dataset_path), "--format", "markdown"]) == 0
        )
        assert "| Inefficiency | Count |" in capsys.readouterr().out

    def test_finder_option(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--finder", "dbscan"]) == 0

    def test_csv_directory_input(self, paper_example, tmp_path, capsys):
        from repro.io import save_csv

        save_csv(paper_example, tmp_path / "csvdir")
        assert main(["analyze", str(tmp_path / "csvdir")]) == 0

    def test_workers_and_block_rows_flags(self, dataset_path, capsys):
        serial = main(
            ["analyze", str(dataset_path), "--format", "json"]
        )
        serial_counts = json.loads(capsys.readouterr().out)["counts"]
        assert serial == 0
        assert (
            main(
                [
                    "analyze",
                    str(dataset_path),
                    "--workers",
                    "2",
                    "--block-rows",
                    "2",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        parallel_counts = json.loads(capsys.readouterr().out)["counts"]
        assert parallel_counts == serial_counts

    def test_workers_zero_means_all_cores(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--workers", "0"]) == 0
        assert "RBAC inefficiency report" in capsys.readouterr().out

    def test_invalid_block_rows_is_cli_error(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--block-rows", "0"]) == 1
        assert "block_rows" in capsys.readouterr().err

    def test_kernel_flag_results_identical(self, dataset_path, capsys):
        counts = {}
        for kernel in ("auto", "sparse", "bits"):
            assert (
                main(
                    [
                        "analyze",
                        str(dataset_path),
                        "--kernel",
                        kernel,
                        "--format",
                        "json",
                    ]
                )
                == 0
            )
            counts[kernel] = json.loads(capsys.readouterr().out)["counts"]
        assert counts["sparse"] == counts["auto"]
        assert counts["bits"] == counts["auto"]

    def test_invalid_kernel_is_argparse_error(self, dataset_path, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", str(dataset_path), "--kernel", "gpu"])
        assert "--kernel" in capsys.readouterr().err


class TestGenerate:
    def test_org_json(self, tmp_path, capsys):
        output = tmp_path / "org.json"
        assert (
            main(
                [
                    "generate", "org", str(output),
                    "--scale-divisor", "500", "--seed", "1",
                ]
            )
            == 0
        )
        state = load_json(output)
        assert state.n_roles == 100
        assert "wrote" in capsys.readouterr().out

    def test_departmental_csv(self, tmp_path, capsys):
        output = tmp_path / "dept"
        assert main(["generate", "departmental", str(output), "--csv"]) == 0
        from repro.io import load_csv

        assert load_csv(output).n_roles > 0


class TestPlan:
    def test_plan_text(self, dataset_path, capsys):
        assert main(["plan", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "remediation plan" in out
        assert "merge roles" in out

    def test_plan_json(self, dataset_path, capsys):
        assert main(["plan", str(dataset_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(a["action"] == "merge_roles" for a in payload["actions"])

    def test_plan_apply_writes_cleaned_dataset(
        self, dataset_path, tmp_path, capsys
    ):
        output = tmp_path / "cleaned.json"
        assert (
            main(["plan", str(dataset_path), "--apply", str(output)]) == 0
        )
        cleaned = load_json(output)
        assert cleaned.n_roles == 2
        assert "roles: 5 -> 2" in capsys.readouterr().out


class TestBench:
    def test_fig2_quick(self, capsys):
        assert (
            main(
                [
                    "bench", "--experiment", "fig2", "--scale", "0.05",
                    "--repeats", "1", "--methods", "cooccurrence",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fig2_users_sweep" in out

    def test_fig3_csv_output(self, capsys):
        assert (
            main(
                [
                    "bench", "--experiment", "fig3", "--scale", "0.05",
                    "--repeats", "1", "--methods", "cooccurrence,hash",
                    "--csv",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.startswith("roles,method,mean_seconds")

    def test_real_quick(self, capsys):
        assert (
            main(
                [
                    "bench", "--experiment", "real",
                    "--scale-divisor", "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "real-dataset experiment" in out
        assert "paper" in out


class TestDiffCommand:
    def test_diff_text(self, paper_example, tmp_path, capsys):
        from repro.remediation import apply_plan, build_plan
        from repro.core import analyze

        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        save_json(paper_example, old_path)
        cleaned = apply_plan(paper_example, build_plan(analyze(paper_example)))
        save_json(cleaned, new_path)
        assert main(["diff", str(old_path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "analysis delta" in out
        assert "resolved findings" in out

    def test_diff_json(self, dataset_path, capsys):
        assert main(["diff", str(dataset_path), str(dataset_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] == []
        assert payload["resolved"] == []


class TestAnonymizeCommand:
    def test_anonymize_json(self, dataset_path, tmp_path, capsys):
        output = tmp_path / "anon.json"
        assert (
            main(["anonymize", str(dataset_path), str(output), "--key", "k"])
            == 0
        )
        anon = load_json(output)
        assert anon.n_roles == 5
        assert not anon.has_role("R01")
        assert "wrote anonymised dataset" in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_text(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "dataset statistics" in out
        assert "users / role" in out

    def test_stats_json(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entities"]["roles"] == 5


class TestAnalyzeCsvFormat:
    def test_csv_findings(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "severity,type,axis,entity_kind,entity_ids,message"
        assert any("duplicate_roles" in line for line in lines)


class TestRenderCommand:
    def test_render_to_stdout(self, dataset_path, capsys):
        assert main(["render", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith('graph "rbac" {')
        assert '"role:R04"' in out
        assert "#f4cccc" in out  # standalone P01 highlighted

    def test_render_plain(self, dataset_path, capsys):
        assert main(["render", str(dataset_path), "--plain"]) == 0
        assert "#f4cccc" not in capsys.readouterr().out

    def test_render_to_file(self, dataset_path, tmp_path, capsys):
        output = tmp_path / "graph.dot"
        assert main(["render", str(dataset_path), str(output)]) == 0
        assert output.read_text().startswith("graph")
        assert "wrote DOT graph" in capsys.readouterr().out


class TestExtensionsFlag:
    @pytest.fixture
    def shadowed_dataset(self, tmp_path):
        from repro.core.state import RbacState

        state = RbacState.build(
            users=["a", "b"],
            roles=["big", "small"],
            permissions=["p", "q"],
            user_assignments=[("big", "a"), ("big", "b"), ("small", "a")],
            permission_assignments=[
                ("big", "p"), ("big", "q"), ("small", "p"),
            ],
        )
        path = tmp_path / "shadowed.json"
        save_json(state, path)
        return path

    def test_analyze_extensions(self, shadowed_dataset, capsys):
        assert (
            main(["analyze", str(shadowed_dataset), "--extensions",
                  "--format", "json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert any(
            f["type"] == "shadowed_role" for f in payload["findings"]
        )

    def test_analyze_without_extensions(self, shadowed_dataset, capsys):
        assert (
            main(["analyze", str(shadowed_dataset), "--format", "json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert not any(
            f["type"] == "shadowed_role" for f in payload["findings"]
        )

    def test_plan_extensions(self, shadowed_dataset, capsys):
        assert main(["plan", str(shadowed_dataset), "--extensions"]) == 0
        assert "shadowed by 'big'" in capsys.readouterr().out


class TestUsageCommand:
    @pytest.fixture
    def usage_files(self, tmp_path):
        from repro.core.state import RbacState
        from repro.usage import AccessLog, save_access_log_csv

        state = RbacState.build(
            users=["u1", "u2"],
            roles=["r1", "r2"],
            permissions=["p1", "p2"],
            user_assignments=[("r1", "u1"), ("r2", "u2")],
            permission_assignments=[("r1", "p1"), ("r2", "p2")],
        )
        dataset = tmp_path / "state.json"
        save_json(state, dataset)
        log = AccessLog()
        log.record("u1", "p1", timestamp=1.0)
        log_path = tmp_path / "log.csv"
        save_access_log_csv(log, log_path)
        return dataset, log_path

    def test_usage_text(self, usage_files, capsys):
        dataset, log_path = usage_files
        assert main(["usage", str(dataset), str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "usage analysis" in out
        assert "dormant roles:          1 of 2" in out

    def test_usage_json(self, usage_files, capsys):
        dataset, log_path = usage_files
        assert main(["usage", str(dataset), str(log_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dormant_roles"] == 1
        assert payload["events"] == 1


class TestHierarchyFlag:
    def test_analyze_flattens_through_hierarchy(self, tmp_path, capsys):
        from repro.core.state import RbacState
        from repro.hierarchy import RoleHierarchy, save_hierarchy_json

        state = RbacState.build(
            users=["u1", "u2"],
            roles=["base", "variant-a", "variant-b"],
            permissions=["p1", "p2"],
            user_assignments=[
                ("variant-a", "u1"), ("variant-a", "u2"),
                ("variant-b", "u1"), ("variant-b", "u2"),
            ],
            permission_assignments=[
                ("base", "p1"), ("variant-a", "p2"),
                ("variant-b", "p1"), ("variant-b", "p2"),
            ],
        )
        dataset = tmp_path / "state.json"
        save_json(state, dataset)
        hierarchy_path = tmp_path / "hierarchy.json"
        save_hierarchy_json(
            RoleHierarchy([("variant-a", "base")]), hierarchy_path
        )

        assert main(["analyze", str(dataset), "--format", "json"]) == 0
        flat = json.loads(capsys.readouterr().out)
        assert flat["counts"]["roles_same_permissions"] == 0

        assert (
            main([
                "analyze", str(dataset),
                "--hierarchy", str(hierarchy_path),
                "--format", "json",
            ])
            == 0
        )
        through = json.loads(capsys.readouterr().out)
        assert through["counts"]["roles_same_permissions"] == 2


class TestBenchDensity:
    def test_density_experiment(self, capsys):
        assert (
            main([
                "bench", "--experiment", "density", "--scale", "0.02",
                "--repeats", "1", "--methods", "cooccurrence",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "density_sweep" in out
        assert "300" in out  # densest point of the sweep


class TestObservabilityFlags:
    def test_trace_out_writes_valid_jsonl(self, dataset_path, tmp_path, capsys):
        from repro.obs import validate_trace_file

        trace = tmp_path / "trace.jsonl"
        assert (
            main(["analyze", str(dataset_path), "--trace-out", str(trace)]) == 0
        )
        summary = validate_trace_file(trace)
        assert summary["traces"] == 1
        assert summary["spans"] > 0

    def test_trace_out_parallel_run_validates(self, dataset_path, tmp_path, capsys):
        from repro.obs import validate_trace_file

        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "analyze",
                    str(dataset_path),
                    "--workers",
                    "2",
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        assert validate_trace_file(trace)["traces"] == 1

    def test_metrics_out_writes_counters_and_timings(
        self, dataset_path, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "analyze",
                    str(dataset_path),
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == 2
        assert payload["counters"]["matrix.ruam_nnz"] == 6
        assert "matrix_build" in payload["timings_seconds"]
        assert payload["total_seconds"] > 0
        # --metrics-out opts into the tracemalloc block counters.
        assert payload["counters"]["cooccurrence.block_peak_bytes"] > 0

    def test_log_level_emits_span_records(self, dataset_path, capsys, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.obs"):
            assert (
                main(["analyze", str(dataset_path), "--log-level", "info"]) == 0
            )
        messages = [r.getMessage() for r in caplog.records]
        assert any("engine.analyze" in m for m in messages)
        assert any("engine.matrix_build" in m for m in messages)

    def test_report_json_includes_metrics_and_config(self, dataset_path, capsys):
        assert main(["analyze", str(dataset_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["finder"] == "cooccurrence"
        assert payload["metrics"]["workers"]["mode"] == "serial"


class TestTraceCommand:
    @pytest.fixture
    def trace_path(self, dataset_path, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert (
            main(["analyze", str(dataset_path), "--trace-out", str(path)]) == 0
        )
        capsys.readouterr()
        return path

    def test_bare_trace_prints_help(self, capsys):
        assert main(["trace"]) == 2
        assert "summarize" in capsys.readouterr().out

    def test_summarize_text(self, trace_path, capsys):
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "traces: 1" in out
        assert "critical path:" in out
        assert "engine.analyze" in out

    def test_summarize_json_and_top(self, trace_path, capsys):
        assert (
            main(["trace", "summarize", str(trace_path), "--json", "--top", "3"])
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["traces"] == 1
        assert summary["orphan_spans"] == 0
        assert len(summary["slowest"]) == 3
        assert summary["per_trace"][0]["critical_path"][0]["name"] == (
            "engine.analyze"
        )

    def test_summarize_exit_1_on_orphans(self, trace_path, capsys):
        doctored = []
        for raw in trace_path.read_text().splitlines():
            event = json.loads(raw)
            if event.get("event") == "span" and event.get("span_id") == 2:
                event["parent_id"] = 999
            doctored.append(json.dumps(event))
        trace_path.write_text("\n".join(doctored) + "\n")
        assert main(["trace", "summarize", str(trace_path)]) == 1

    def test_flame_to_file(self, trace_path, tmp_path, capsys):
        out = tmp_path / "flame.collapsed"
        assert (
            main(["trace", "flame", str(trace_path), "-o", str(out)]) == 0
        )
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert weight.isdigit()
            assert stack.split(";")[0] == "engine.analyze"

    def test_flame_to_stdout(self, trace_path, capsys):
        assert main(["trace", "flame", str(trace_path)]) == 0
        assert "engine.analyze" in capsys.readouterr().out

    def test_diff(self, trace_path, dataset_path, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        assert (
            main(
                [
                    "analyze", str(dataset_path), "--finder", "dbscan",
                    "--trace-out", str(other),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["trace", "diff", str(trace_path), str(other), "--json"]) == 0
        )
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        # dbscan spans exist only on the after side.
        assert by_name["finder:dbscan"]["count_before"] == 0
        assert by_name["finder:dbscan"]["count_after"] >= 1

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeObservabilityFlags:
    def test_slo_and_tracez_flags_parse(self, dataset_path):
        from repro.cli.main import _build_parser as build_parser

        args = build_parser().parse_args(
            [
                "serve", str(dataset_path), "--slo-target", "0.5",
                "--slo-window", "50", "--slo-budget", "0.2",
                "--tracez-capacity", "16",
            ]
        )
        assert args.slo_target == 0.5
        assert args.slo_window == 50
        assert args.slo_budget == 0.2
        assert args.tracez_capacity == 16

    def test_slo_defaults_off(self, dataset_path):
        from repro.cli.main import _build_parser as build_parser

        args = build_parser().parse_args(["serve", str(dataset_path)])
        assert args.slo_target is None
