"""Tests for the ``repro work`` subcommand (queue worker attachment)."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.jobs import JobQueue


@pytest.fixture
def queue_path(tmp_path):
    path = tmp_path / "jobs.sqlite"
    queue = JobQueue(path)
    for n in range(3):
        queue.enqueue("sleep", {"seconds": 0, "n": n})
    queue.close()
    return path


class TestArguments:
    def test_workers_must_be_positive(self, queue_path, capsys):
        assert main(["work", str(queue_path), "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestSingleWorker:
    def test_drains_queue_and_reports_counts(self, queue_path, capsys):
        assert (
            main(
                [
                    "work", str(queue_path),
                    "--max-jobs", "3",
                    "--poll", "0.01",
                    "--idle-exit", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"attached to {queue_path}" in out
        assert "worker done: 3 completed, 0 failed" in out
        queue = JobQueue(queue_path)
        assert queue.counts_by_state()["done"] == 3
        queue.close()

    def test_idle_exit_on_empty_queue(self, tmp_path, capsys):
        path = tmp_path / "empty.sqlite"
        JobQueue(path).close()
        assert (
            main(
                ["work", str(path), "--poll", "0.01", "--idle-exit", "0.05"]
            )
            == 0
        )
        assert "0 completed" in capsys.readouterr().out

    def test_trace_out_writes_stitchable_traces(
        self, queue_path, tmp_path, capsys
    ):
        trace_file = tmp_path / "worker.jsonl"
        queue = JobQueue(queue_path)
        queue.enqueue("sleep", {"seconds": 0, "n": 99}, trace_id="e" * 32)
        queue.close()
        assert (
            main(
                [
                    "work", str(queue_path),
                    "--max-jobs", "4",
                    "--poll", "0.01",
                    "--idle-exit", "5",
                    "--trace-out", str(trace_file),
                ]
            )
            == 0
        )
        events = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
        ]
        spans = [e for e in events if e["event"] == "span"]
        assert {s["name"] for s in spans} == {"jobs.run"}
        # The enqueuer's trace id survives into the worker's trace file.
        assert "e" * 32 in {e.get("trace_id") for e in events}


class TestMultiWorker:
    def test_two_processes_drain_the_queue(self, queue_path, capsys):
        queue = JobQueue(queue_path)
        for n in range(3, 8):
            queue.enqueue("sleep", {"seconds": 0, "n": n})
        queue.close()
        assert (
            main(
                [
                    "work", str(queue_path),
                    "--workers", "2",
                    "--poll", "0.01",
                    "--idle-exit", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 workers attached" in out
        assert "pids:" in out
        queue = JobQueue(queue_path)
        assert queue.counts_by_state()["done"] == 8
        queue.close()
