"""Unit tests for the from-scratch HNSW index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import HNSWIndex
from repro.exceptions import ConfigurationError


class TestParameters:
    def test_dim_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=0)

    def test_m_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=4, m=1)

    def test_ef_construction_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HNSWIndex(dim=4, ef_construction=0)

    def test_wrong_vector_dim_rejected(self):
        index = HNSWIndex(dim=3)
        with pytest.raises(ConfigurationError):
            index.add([1.0, 2.0])

    def test_search_wrong_dim_rejected(self):
        index = HNSWIndex(dim=3)
        index.add([0.0, 0.0, 0.0])
        with pytest.raises(ConfigurationError):
            index.search([1.0], k=1)

    def test_k_must_be_positive(self):
        index = HNSWIndex(dim=2)
        index.add([0.0, 0.0])
        with pytest.raises(ConfigurationError):
            index.search([0.0, 0.0], k=0)


class TestBasicBehaviour:
    def test_empty_index_returns_nothing(self):
        index = HNSWIndex(dim=2)
        assert index.search([0.0, 0.0], k=3) == []
        assert len(index) == 0

    def test_single_point(self):
        index = HNSWIndex(dim=2)
        node = index.add([1.0, 1.0])
        hits = index.search([1.0, 1.0], k=1)
        assert hits == [(node, 0.0)]

    def test_ids_are_sequential(self):
        index = HNSWIndex(dim=1)
        ids = [index.add([float(i)]) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert len(index) == 5

    def test_add_items_bulk(self):
        index = HNSWIndex(dim=3)
        data = np.eye(3)
        assert index.add_items(data) == [0, 1, 2]

    def test_add_items_rejects_1d(self):
        index = HNSWIndex(dim=3)
        with pytest.raises(ConfigurationError):
            index.add_items(np.zeros(3))

    def test_exact_duplicate_found_at_distance_zero(self):
        index = HNSWIndex(dim=4, seed=1)
        index.add([1.0, 0.0, 1.0, 0.0])
        index.add([1.0, 0.0, 1.0, 0.0])
        hits = index.search([1.0, 0.0, 1.0, 0.0], k=2)
        assert {node for node, _ in hits} == {0, 1}
        assert all(distance == 0.0 for _, distance in hits)


class TestSearchQuality:
    def test_nearest_neighbor_exact_on_small_set(self):
        rng = np.random.default_rng(10)
        data = rng.random((50, 8))
        index = HNSWIndex(dim=8, metric="euclidean", seed=0)
        index.add_items(data)
        for qi in range(0, 50, 7):
            hits = index.search(data[qi], k=1)
            assert hits[0][0] == qi  # the point itself

    def test_results_sorted_by_distance(self):
        rng = np.random.default_rng(11)
        data = rng.random((80, 6))
        index = HNSWIndex(dim=6, metric="manhattan", seed=0)
        index.add_items(data)
        hits = index.search(rng.random(6), k=10)
        distances = [distance for _, distance in hits]
        assert distances == sorted(distances)

    def test_k_caps_result_count(self):
        index = HNSWIndex(dim=2, seed=0)
        index.add_items(np.random.default_rng(12).random((30, 2)))
        assert len(index.search([0.5, 0.5], k=7)) == 7

    def test_determinism_with_fixed_seed(self):
        rng = np.random.default_rng(13)
        data = rng.random((60, 5))
        hits = []
        for _ in range(2):
            index = HNSWIndex(dim=5, seed=42)
            index.add_items(data)
            hits.append(index.search(data[0], k=5))
        assert hits[0] == hits[1]


class TestRadiusSearch:
    def test_radius_filters_by_distance(self):
        data = np.array(
            [[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]], dtype=float
        )
        index = HNSWIndex(dim=2, metric="manhattan", seed=0)
        index.add_items(data)
        hits = index.radius_search([0.0, 0.0], radius=1.5)
        assert {node for node, _ in hits} == {0, 1}

    def test_radius_zero_finds_duplicates_only(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 1.0]])
        index = HNSWIndex(dim=2, metric="manhattan", seed=0)
        index.add_items(data)
        hits = index.radius_search([1.0, 1.0], radius=1e-6)
        assert {node for node, _ in hits} == {0, 1}


class TestStructure:
    def test_max_level_grows_with_size(self):
        index = HNSWIndex(dim=1, m=2, seed=0)
        for i in range(200):
            index.add([float(i)])
        # With m=2 level multiplier is 1/ln2; 200 points essentially
        # always produce at least one upper layer.
        assert index.max_level >= 1

    def test_degree_bounded_after_many_inserts(self):
        rng = np.random.default_rng(14)
        index = HNSWIndex(dim=4, m=4, ef_construction=16, seed=0)
        index.add_items(rng.random((150, 4)))
        for layer, links in enumerate(index._links):
            cap = index.m_max0 if layer == 0 else index.m
            for node, neighbors in links.items():
                assert len(neighbors) <= cap, (layer, node)

    def test_links_are_bidirectional_enough_for_search(self):
        # Weak structural check: every node on layer 0 is reachable from
        # the entry point (otherwise search could never find it).
        rng = np.random.default_rng(15)
        index = HNSWIndex(dim=3, m=4, ef_construction=32, seed=0)
        index.add_items(rng.random((100, 3)))
        adjacency = index._links[0]
        seen = {index._entry_point}
        frontier = [index._entry_point]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency.get(node, []):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == len(index)
