"""Recall tests: HNSW must be a *good* approximation on RBAC-like data.

The paper's argument for the approximate baseline is that periodic runs
converge: recall need not be 1.0, but must be high.  These tests pin a
lower bound on recall against the exact brute-force answer.
"""

from __future__ import annotations

import numpy as np

from repro.ann import HNSWIndex
from repro.cluster import BruteForceSearch


def _recall_at_k(data: np.ndarray, k: int, ef: int, seed: int) -> float:
    index = HNSWIndex(
        dim=data.shape[1],
        metric="manhattan",
        m=16,
        ef_construction=100,
        seed=seed,
    )
    index.add_items(data)
    brute = BruteForceSearch(data, metric="manhattan")
    hits_total = 0
    expected_total = 0
    for qi in range(0, len(data), 5):
        approx = {node for node, _ in index.search(data[qi], k=k, ef=ef)}
        distances = np.abs(data - data[qi]).sum(axis=1)
        exact = set(np.argsort(distances, kind="stable")[:k].tolist())
        # Compare by distance values to tolerate ties.
        exact_distances = sorted(distances[sorted(exact)])
        approx_distances = sorted(distances[sorted(approx)])
        hits_total += sum(
            1 for a, e in zip(approx_distances, exact_distances) if a <= e
        )
        expected_total += k
    assert brute.n_points == len(data)
    return hits_total / expected_total


class TestRecall:
    def test_high_recall_on_random_binary_data(self):
        rng = np.random.default_rng(16)
        data = (rng.random((300, 64)) < 0.15).astype(float)
        recall = _recall_at_k(data, k=5, ef=64, seed=0)
        assert recall >= 0.9

    def test_duplicate_groups_recovered(self):
        """On the paper's workload shape (planted duplicate clusters),
        radius-0 queries must recover almost all group members."""
        from repro.datagen import MatrixSpec, generate_matrix

        generated = generate_matrix(
            MatrixSpec(n_roles=200, n_cols=120, row_density=0.06, seed=17)
        )
        dense = generated.dense.astype(float)
        index = HNSWIndex(
            dim=dense.shape[1], metric="manhattan", ef_construction=64, seed=0
        )
        index.add_items(dense)
        found_pairs = 0
        expected_pairs = 0
        for group in generated.groups:
            members = set(group)
            for member in group:
                hits = {
                    node
                    for node, _ in index.radius_search(
                        dense[member], radius=1e-6, ef=64
                    )
                }
                expected_pairs += len(members) - 1
                found_pairs += len((hits & members) - {member})
        assert expected_pairs > 0
        assert found_pairs / expected_pairs >= 0.95

    def test_bigger_ef_does_not_reduce_recall(self):
        rng = np.random.default_rng(18)
        data = (rng.random((200, 32)) < 0.2).astype(float)
        low = _recall_at_k(data, k=5, ef=8, seed=3)
        high = _recall_at_k(data, k=5, ef=128, seed=3)
        assert high >= low - 0.05  # allow small noise, expect improvement
