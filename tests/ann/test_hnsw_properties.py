"""Property-based tests for HNSW invariants.

Approximate indexes may miss neighbours, but several properties must
hold unconditionally; these are the guarantees the group finder relies
on for *soundness* (it never invents duplicate groups).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ann import HNSWIndex


def point_sets():
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=40),
            st.integers(min_value=1, max_value=8),
        ),
        elements=st.floats(
            min_value=0.0, max_value=10.0, allow_nan=False
        ),
    )


def build(data: np.ndarray, seed: int = 0) -> HNSWIndex:
    index = HNSWIndex(
        dim=data.shape[1],
        metric="manhattan",
        m=4,
        ef_construction=16,
        seed=seed,
    )
    index.add_items(data)
    return index


class TestSearchInvariants:
    @given(point_sets(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_reported_distances_are_true_distances(self, data, draw):
        index = build(data)
        qi = draw.draw(st.integers(min_value=0, max_value=len(data) - 1))
        for node, distance in index.search(data[qi], k=5):
            true = float(np.abs(data[node] - data[qi]).sum())
            assert distance == true

    @given(point_sets(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_results_sorted_and_unique(self, data, draw):
        index = build(data)
        qi = draw.draw(st.integers(min_value=0, max_value=len(data) - 1))
        hits = index.search(data[qi], k=8)
        distances = [d for _, d in hits]
        nodes = [n for n, _ in hits]
        assert distances == sorted(distances)
        assert len(set(nodes)) == len(nodes)
        assert all(0 <= n < len(data) for n in nodes)

    @given(point_sets(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_radius_soundness(self, data, draw):
        """Everything a radius query returns genuinely lies inside the
        radius — the soundness half of the approximate trade-off."""
        index = build(data)
        qi = draw.draw(st.integers(min_value=0, max_value=len(data) - 1))
        radius = draw.draw(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
        )
        for node, distance in index.radius_search(data[qi], radius):
            assert distance <= radius
            true = float(np.abs(data[node] - data[qi]).sum())
            assert true <= radius

    @given(point_sets())
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_index(self, data):
        a = build(data, seed=7)
        b = build(data, seed=7)
        assert a._node_level == b._node_level
        assert a._links == b._links

    @given(point_sets(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_k_one_self_query_finds_a_zero_distance_point(self, data, draw):
        """Querying an indexed point at k=1 must return *some* point at
        distance 0 when duplicates exist, or the point itself."""
        index = build(data)
        qi = draw.draw(st.integers(min_value=0, max_value=len(data) - 1))
        hits = index.search(data[qi], k=1)
        assert hits, "non-empty index must return at least one hit"
        # The greedy descent always starts from a real node, so a
        # best-first search that touches qi's neighbourhood returns a
        # zero-distance hit whenever it terminates there; at minimum the
        # returned distance can never be negative.
        assert hits[0][1] >= 0.0
