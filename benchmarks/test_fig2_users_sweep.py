"""Figure 2 — duration vs number of users (roles fixed).

Paper setup: 1,000 roles, users swept 1,000 → 10,000, cluster proportion
0.2, max 10 identical roles per cluster, 5 runs per point.  Reported
shape: all three methods are nearly flat in the user count; approximate
clustering (HNSW) is slowest (index build dominates), exact clustering
(DBSCAN) mid, the custom co-occurrence algorithm fastest by an order of
magnitude.

The sweep runs at ``REPRO_BENCH_SCALE`` of paper sizes (see conftest);
the HNSW baseline only runs at the two smallest sizes because a
pure-Python index build at every point would dominate the suite without
changing the observed shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_FIXED, scaled, scaled_grid
from repro.core.grouping import make_group_finder

N_ROLES = scaled(PAPER_FIXED)
USER_GRID = scaled_grid()
HNSW_GRID = USER_GRID[:2]


@pytest.mark.benchmark(group="fig2-users-sweep")
@pytest.mark.parametrize("n_users", USER_GRID)
def test_custom_cooccurrence(benchmark, matrix_cache, n_users):
    generated = matrix_cache(N_ROLES, n_users)
    finder = make_group_finder("cooccurrence")
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=5,
        iterations=1,
    )
    assert groups == generated.groups  # exact: full ground truth
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="fig2-users-sweep")
@pytest.mark.parametrize("n_users", USER_GRID)
def test_exact_dbscan(benchmark, matrix_cache, n_users):
    generated = matrix_cache(N_ROLES, n_users)
    finder = make_group_finder("dbscan")
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups  # exact: full ground truth
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="fig2-users-sweep")
@pytest.mark.parametrize("n_users", HNSW_GRID)
def test_approximate_hnsw(benchmark, matrix_cache, n_users):
    generated = matrix_cache(N_ROLES, n_users)
    finder = make_group_finder("hnsw", ef_construction=32, ef_search=32)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=1,
        iterations=1,
    )
    # Approximate: sound (groups of true duplicates) but possibly
    # incomplete — the trade-off the paper evaluates.
    true_groups = {tuple(g) for g in generated.groups}
    for group in groups:
        assert any(set(group) <= set(t) for t in true_groups)
    benchmark.extra_info["n_groups"] = len(groups)
    benchmark.extra_info["recall_groups"] = (
        len(groups) / len(generated.groups) if generated.groups else 1.0
    )
