"""A8 — ablation: blocked co-occurrence kernel + parallel execution.

Not a paper experiment.  Quantifies the two scalability levers this
repository adds on top of the paper's custom algorithm:

* **Blocking** — the monolithic product materialises every stored entry
  of ``C = M @ Mᵀ`` at once; the row-blocked kernel computes
  ``M[block] @ Mᵀ`` one block at a time and keeps only the matched
  pairs, bounding peak memory by the densest single block.  Measured
  with ``tracemalloc`` (numpy/scipy allocations are traced).
* **Parallelism** — blocks, and independent (detector, axis) work items
  in the analysis engine, fan out over a process pool.  Wall-clock
  speedup requires real cores; the serial-vs-parallel comparisons
  therefore skip on single-core machines and assert a speedup wherever
  ``os.cpu_count() >= 2``.

Both levers are pure optimisations: every configuration must produce
identical groups/reports, which each test re-asserts.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from benchmarks.conftest import scaled
from repro.core.engine import AnalysisConfig, AnalysisEngine
from repro.core.grouping import make_group_finder
from repro.core.state import RbacState
from repro.datagen import MatrixSpec, generate_matrix

#: Dense-overlap workload: enough shared columns that the full product
#: carries millions of stored entries — the blocking worst/best case.
MEMORY_SPEC = MatrixSpec(
    n_roles=scaled(6000), n_cols=scaled(2000), row_density=0.15, seed=0
)

#: Larger workload for the serial-vs-parallel wall-clock comparison
#: (sized to dominate process-pool startup on a multi-core runner).
SPEEDUP_SPEC = MatrixSpec(
    n_roles=5000, n_cols=500, row_density=0.12, seed=1
)

MULTI_CORE = (os.cpu_count() or 1) >= 2


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _wall_clock(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Blocked vs monolithic: peak memory
# ----------------------------------------------------------------------
def test_blocked_kernel_bounds_peak_memory():
    generated = generate_matrix(MEMORY_SPEC)
    monolithic = make_group_finder("cooccurrence")
    blocked = make_group_finder("cooccurrence", block_rows=32)

    groups_monolithic = monolithic.find_groups(generated.matrix, 1)
    groups_blocked = blocked.find_groups(generated.matrix, 1)
    assert groups_blocked == groups_monolithic  # identical output first

    peak_monolithic = _peak_bytes(
        lambda: monolithic.find_groups(generated.matrix, 1)
    )
    peak_blocked = _peak_bytes(
        lambda: blocked.find_groups(generated.matrix, 1)
    )
    # The whole-product allocation dominates the monolithic peak; a
    # 32-row block should cut it by far more than this 40% bar.
    assert peak_blocked < 0.6 * peak_monolithic, (
        f"blocked peak {peak_blocked} not below 60% of "
        f"monolithic peak {peak_monolithic}"
    )


def _shadowed_state() -> RbacState:
    """Dense user overlap (the big product) + a small permission pool,
    so the shadowed detector's subset scan has real work on both axes."""
    ruam = generate_matrix(MEMORY_SPEC).matrix
    n_roles, n_users = ruam.shape
    n_permissions = 50
    return RbacState.build(
        users=[f"u{j}" for j in range(n_users)],
        roles=[f"r{i}" for i in range(n_roles)],
        permissions=[f"p{j}" for j in range(n_permissions)],
        user_assignments=[
            (f"r{i}", f"u{j}") for i, j in zip(*ruam.nonzero())
        ],
        permission_assignments=[
            (f"r{i}", f"p{i % n_permissions}") for i in range(n_roles)
        ],
    )


def test_workspace_blocked_scan_bounds_shadowed_peak_memory():
    """Shadowed detection inherits the blocking memory bound.

    The detector reads subset pairs from the workspace's blocked scan
    instead of materialising the full ``M @ Mᵀ`` product, so setting
    ``block_rows`` bounds its peak by the densest single block — same
    reports, fraction of the memory.
    """
    from repro.core.taxonomy import InefficiencyType

    state = _shadowed_state()
    shadowed_only = (InefficiencyType.SHADOWED_ROLE,)
    monolithic = AnalysisEngine(
        AnalysisConfig(enabled_types=shadowed_only)
    )
    blocked = AnalysisEngine(
        AnalysisConfig(enabled_types=shadowed_only, block_rows=32)
    )

    report_monolithic = monolithic.analyze(state)
    report_blocked = blocked.analyze(state)
    assert report_blocked.counts() == report_monolithic.counts()
    assert [f.entity_ids for f in report_blocked.findings] == [
        f.entity_ids for f in report_monolithic.findings
    ]

    peak_monolithic = _peak_bytes(lambda: monolithic.analyze(state))
    peak_blocked = _peak_bytes(lambda: blocked.analyze(state))
    assert peak_blocked < 0.6 * peak_monolithic, (
        f"blocked shadowed peak {peak_blocked} not below 60% of "
        f"monolithic peak {peak_monolithic}"
    )


@pytest.mark.benchmark(group="ablation-block-rows")
@pytest.mark.parametrize("block_rows", [None, 512, 64, 8])
def test_block_rows_wall_clock(benchmark, block_rows):
    """Throughput cost of blocking (None = monolithic baseline)."""
    generated = generate_matrix(MEMORY_SPEC)
    finder = make_group_finder("cooccurrence", block_rows=block_rows)
    groups = benchmark.pedantic(
        finder.find_groups, args=(generated.matrix, 1), rounds=3, iterations=1
    )
    assert groups == make_group_finder("cooccurrence").find_groups(
        generated.matrix, 1
    )
    benchmark.extra_info["block_rows"] = block_rows or "monolithic"


# ----------------------------------------------------------------------
# Serial vs parallel: wall clock
# ----------------------------------------------------------------------
@pytest.mark.skipif(not MULTI_CORE, reason="needs >= 2 cores for speedup")
def test_parallel_blocks_beat_serial_on_multicore():
    generated = generate_matrix(SPEEDUP_SPEC)
    serial = make_group_finder("cooccurrence", block_rows=256)
    parallel = make_group_finder(
        "cooccurrence", block_rows=256, n_workers=None
    )

    assert parallel.find_groups(generated.matrix, 1) == serial.find_groups(
        generated.matrix, 1
    )
    serial_seconds = min(
        _wall_clock(lambda: serial.find_groups(generated.matrix, 1))
        for _ in range(2)
    )
    parallel_seconds = min(
        _wall_clock(lambda: parallel.find_groups(generated.matrix, 1))
        for _ in range(2)
    )
    assert parallel_seconds < serial_seconds, (
        f"parallel {parallel_seconds:.3f}s not faster than "
        f"serial {serial_seconds:.3f}s on {os.cpu_count()} cores"
    )


def _dual_axis_state() -> RbacState:
    """A state whose RUAM *and* RPAM both carry heavy similarity work,
    so the engine's (detector × axis) items have comparable weight."""
    ruam = generate_matrix(
        MatrixSpec(n_roles=2500, n_cols=400, row_density=0.12, seed=2)
    ).matrix
    rpam = generate_matrix(
        MatrixSpec(n_roles=2500, n_cols=400, row_density=0.12, seed=3)
    ).matrix
    n_roles, n_users = ruam.shape
    n_permissions = rpam.shape[1]
    return RbacState.build(
        users=[f"u{j}" for j in range(n_users)],
        roles=[f"r{i}" for i in range(n_roles)],
        permissions=[f"p{j}" for j in range(n_permissions)],
        user_assignments=[
            (f"r{i}", f"u{j}")
            for i, j in zip(*ruam.nonzero())
        ],
        permission_assignments=[
            (f"r{i}", f"p{j}")
            for i, j in zip(*rpam.nonzero())
        ],
    )


@pytest.mark.skipif(not MULTI_CORE, reason="needs >= 2 cores for speedup")
def test_parallel_engine_beats_serial_on_multicore():
    state = _dual_axis_state()
    serial_engine = AnalysisEngine(AnalysisConfig())
    parallel_engine = AnalysisEngine(AnalysisConfig(n_workers=None))

    serial_report = serial_engine.analyze(state)
    parallel_report = parallel_engine.analyze(state)
    assert parallel_report.counts() == serial_report.counts()

    serial_seconds = min(
        _wall_clock(lambda: serial_engine.analyze(state)) for _ in range(2)
    )
    parallel_seconds = min(
        _wall_clock(lambda: parallel_engine.analyze(state)) for _ in range(2)
    )
    assert parallel_seconds < serial_seconds, (
        f"parallel {parallel_seconds:.3f}s not faster than "
        f"serial {serial_seconds:.3f}s on {os.cpu_count()} cores"
    )


def test_parallel_engine_reproduces_serial_report_everywhere():
    """Runs on every machine (single-core included): the parallel engine
    must reproduce the serial report bit for bit."""
    state = _dual_axis_state()
    serial = AnalysisEngine(AnalysisConfig()).analyze(state)
    parallel = AnalysisEngine(AnalysisConfig(n_workers=2)).analyze(state)
    assert parallel.counts() == serial.counts()
    assert [f.entity_ids for f in parallel.findings] == [
        f.entity_ids for f in serial.findings
    ]


# ----------------------------------------------------------------------
# Shared-memory vs pickled-initargs data plane: setup cost
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not MULTI_CORE, reason="data-plane setup cost needs a real fan-out"
)
def test_shm_data_plane_setup_beats_pickling():
    """Shipping the scan arrays through one shared-memory segment must
    beat re-pickling them into every worker.

    Isolates the setup stage the two planes differ on — array transfer —
    from the (identical) block compute: the pickled plane serialises and
    deserialises the full array tuple once per worker, the shm plane
    pays one copy into the segment plus per-worker attach (no copy).
    """
    import pickle

    import numpy as np
    import scipy.sparse as sp

    from repro.parallel import attach, publish

    # Sized so array volume (tens of MB), not per-segment syscall
    # overhead, dominates the comparison — the regime the shm plane is
    # built for.
    rng = np.random.default_rng(9)
    csr = sp.csr_matrix(
        (rng.random((3000, 4000)) < 0.15).astype(np.int64)
    )
    csr_t = csr.T.tocsr()
    norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
    workers = max(2, os.cpu_count() or 2)
    initargs = (csr, csr_t, norms, 1, False, False, None)
    arrays = {
        "m_data": csr.data, "m_indices": csr.indices,
        "m_indptr": csr.indptr, "t_data": csr_t.data,
        "t_indices": csr_t.indices, "t_indptr": csr_t.indptr,
        "norms": norms,
    }

    def pickled_setup():
        for _ in range(workers):
            pickle.loads(pickle.dumps(initargs))

    def shm_setup():
        with publish(arrays) as handle:
            for _ in range(workers):
                attach(pickle.loads(pickle.dumps(handle.manifest))).close()

    pickled_seconds = min(_wall_clock(pickled_setup) for _ in range(3))
    shm_seconds = min(_wall_clock(shm_setup) for _ in range(3))
    assert shm_seconds < pickled_seconds, (
        f"shm setup {shm_seconds:.4f}s not below pickled setup "
        f"{pickled_seconds:.4f}s for {workers} workers"
    )


@pytest.mark.skipif(not MULTI_CORE, reason="needs >= 2 cores for speedup")
def test_warm_pool_scan_beats_cold_pools():
    """Reusing one WorkerPool across scans must beat a spawn per scan."""
    import numpy as np

    from repro.core.grouping.cooccurrence import blocked_scan
    from repro.parallel import WorkerPool, use_pool

    generated = generate_matrix(SPEEDUP_SPEC)
    csr = generated.matrix.tocsr()
    norms = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
    scans_per_round = 3

    def cold_pools():
        for _ in range(scans_per_round):
            blocked_scan(
                csr, norms, k=1, block_rows=256, n_workers=2,
                kernel="sparse",
            )

    def warm_pool():
        with WorkerPool(2) as pool, use_pool(pool):
            for _ in range(scans_per_round):
                blocked_scan(
                    csr, norms, k=1, block_rows=256, n_workers=2,
                    kernel="sparse",
                )

    cold_seconds = min(_wall_clock(cold_pools) for _ in range(2))
    warm_seconds = min(_wall_clock(warm_pool) for _ in range(2))
    assert warm_seconds < cold_seconds, (
        f"warm pool {warm_seconds:.3f}s not below cold pools "
        f"{cold_seconds:.3f}s"
    )
