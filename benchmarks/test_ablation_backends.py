"""A1 — ablation: backend design choices (not a paper experiment).

Quantifies two design decisions DESIGN.md calls out:

* the custom co-occurrence algorithm vs the theoretically-minimal hash
  grouping for the exact-duplicate sub-problem (hashing wins there, but
  cannot handle similarity — the reason the paper built on co-occurrence
  counts);
* DBSCAN's neighbour-search backend: dense-row scans vs bit-packed
  XOR/popcount kernels (same algorithm and output, lower constant).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_FIXED, scaled
from repro.core.grouping import make_group_finder

N_ROLES = scaled(5000)
N_USERS = scaled(PAPER_FIXED)


@pytest.mark.benchmark(group="ablation-exact-duplicates")
@pytest.mark.parametrize("finder_name", ["cooccurrence", "hash", "dbscan"])
def test_exact_duplicate_backends(benchmark, matrix_cache, finder_name):
    generated = matrix_cache(N_ROLES, N_USERS)
    finder = make_group_finder(finder_name)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="ablation-dbscan-backend")
@pytest.mark.parametrize("backend", ["hamming", "bitpacked-hamming"])
def test_dbscan_neighbor_backends(benchmark, matrix_cache, backend):
    generated = matrix_cache(N_ROLES, N_USERS)
    finder = make_group_finder("dbscan", backend=backend)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups


@pytest.mark.benchmark(group="ablation-similarity")
@pytest.mark.parametrize("k", [1, 2])
@pytest.mark.parametrize("finder_name", ["cooccurrence", "dbscan"])
def test_similarity_threshold_cost(benchmark, matrix_cache, finder_name, k):
    """Similarity detection (type 5) costs: the custom algorithm's edge
    over DBSCAN must persist at k >= 1, where hashing is unavailable.

    At benchmark scale the generated rows are tiny (density x columns is
    only a few bits), so *accidental* distance-k pairs among filler rows
    are possible; the exact-correctness contract here is therefore
    containment of every planted group plus agreement between the two
    exact methods, not equality with the planted list (see
    ``GeneratedMatrix`` ground-truth notes).
    """
    generated = matrix_cache(N_ROLES, N_USERS, k)
    finder = make_group_finder(finder_name)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, k),
        rounds=3,
        iterations=1,
    )
    for planted in generated.groups:
        assert any(set(planted) <= set(found) for found in groups)
    reference = make_group_finder(
        "dbscan" if finder_name == "cooccurrence" else "cooccurrence"
    ).find_groups(generated.matrix, k)
    assert groups == reference
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="ablation-exact-duplicates")
def test_exact_duplicate_lsh(benchmark, matrix_cache):
    """The MinHash-LSH backend on the same k=0 workload (complete there)."""
    generated = matrix_cache(N_ROLES, N_USERS)
    finder = make_group_finder("lsh")
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups
    benchmark.extra_info["n_groups"] = len(groups)
