"""A6 — ablation: role mining vs consolidation cost (extension).

The paper's §II contrast, timed: FastMiner-style candidate generation +
greedy cover (quadratic-ish in distinct user profiles) vs the paper's
detect-and-consolidate loop (sparse co-occurrence, near-linear) on the
same departmental organisation.  Mining also rebuilds definitions from
scratch — the qualitative cost the example demonstrates — while being
substantially slower even at demo scale.
"""

from __future__ import annotations

import pytest

from repro.core import analyze
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.mining import greedy_role_cover, mine_candidate_roles
from repro.remediation import apply_plan, build_plan


@pytest.fixture(scope="module")
def org_state():
    return generate_departmental_org(
        DepartmentProfile(n_departments=6, n_users=300, seed=17)
    )


@pytest.mark.benchmark(group="ablation-mining")
def test_consolidation_pipeline(benchmark, org_state):
    def run():
        report = analyze(org_state)
        plan = build_plan(report)
        return apply_plan(org_state, plan)

    cleaned = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cleaned.n_roles < org_state.n_roles
    benchmark.extra_info["roles_after"] = cleaned.n_roles


@pytest.mark.benchmark(group="ablation-mining")
def test_mining_pipeline(benchmark, org_state):
    def run():
        candidates = mine_candidate_roles(org_state, max_candidates=200_000)
        return greedy_role_cover(org_state, candidates=candidates)

    cover = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cover.coverage == 1.0
    benchmark.extra_info["mined_roles"] = cover.n_roles
