"""A5 — ablation: sensitivity to matrix density (extension).

The custom algorithm's cost is proportional to the stored entries of the
co-occurrence product ``C = M·Mᵀ`` — roughly quadratic in the row
density — while the DBSCAN baseline's dense scans are density-agnostic.
This ablation sweeps the density at fixed shape and records both curves;
the custom algorithm dominates throughout the RBAC-realistic regime
(densities well below a few percent) and its advantage narrows as the
matrix fills, exactly the structural argument for why the paper's
approach fits its domain.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_FIXED, scaled
from repro.core.grouping import make_group_finder
from repro.datagen import MatrixSpec, generate_matrix

N_ROLES = scaled(5000)
N_COLS = scaled(PAPER_FIXED)
DENSITIES = (0.01, 0.05, 0.15, 0.30)


@pytest.fixture(scope="module")
def density_matrices():
    cache = {}
    for density in DENSITIES:
        cache[density] = generate_matrix(
            MatrixSpec(
                n_roles=N_ROLES,
                n_cols=N_COLS,
                cluster_proportion=0.2,
                max_cluster_size=10,
                row_density=density,
                seed=0,
            )
        )
    return cache


@pytest.mark.benchmark(group="ablation-density")
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("finder_name", ["cooccurrence", "dbscan"])
def test_density_sensitivity(benchmark, density_matrices, finder_name, density):
    generated = density_matrices[density]
    finder = make_group_finder(finder_name)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups
    benchmark.extra_info["density"] = density
    benchmark.extra_info["n_groups"] = len(groups)
