"""A2 — ablation: HNSW parameter sensitivity (not a paper experiment).

The paper uses library defaults for the approximate baseline.  This
ablation shows what its two main knobs buy on the RBAC workload:

* ``ef`` (beam width): recall rises with ef, query time rises with it;
* ``m`` (graph degree): build time rises with m.

Build and query phases are measured separately since the paper's
observed behaviour (slow at small datasets, competitive at large) hinges
on the build/query split.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.ann import HNSWIndex

N_POINTS = scaled(2000)
N_DIMS = 200
DENSITY = 0.05


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(23)
    data = (rng.random((N_POINTS, N_DIMS)) < DENSITY).astype(float)
    # plant duplicate pairs so radius-0 recall is measurable
    for i in range(0, N_POINTS // 10 * 2, 2):
        data[i + 1] = data[i]
    return data


@pytest.mark.benchmark(group="ablation-hnsw-build")
@pytest.mark.parametrize("m", [4, 16, 32])
def test_build_time_vs_m(benchmark, workload, m):
    def build():
        index = HNSWIndex(
            dim=workload.shape[1], metric="manhattan",
            m=m, ef_construction=32, seed=0,
        )
        index.add_items(workload)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(index) == len(workload)


@pytest.mark.benchmark(group="ablation-hnsw-query")
@pytest.mark.parametrize("ef", [8, 32, 128])
def test_query_time_and_recall_vs_ef(benchmark, workload, ef):
    index = HNSWIndex(
        dim=workload.shape[1], metric="manhattan",
        m=16, ef_construction=64, seed=0,
    )
    index.add_items(workload)
    queries = workload[: scaled(500)]

    def run_queries():
        found = 0
        for qi, query in enumerate(queries):
            hits = {n for n, _ in index.radius_search(query, 1e-6, ef=ef)}
            hits.discard(qi)
            found += bool(hits)
        return found

    found = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    # Recall over planted duplicate pairs within the queried prefix.
    n_pairs_queried = sum(
        1
        for i in range(0, min(len(queries), N_POINTS // 10 * 2), 2)
        if i + 1 < len(queries)
    )
    benchmark.extra_info["duplicates_found"] = found
    benchmark.extra_info["duplicates_planted"] = n_pairs_queried * 2
