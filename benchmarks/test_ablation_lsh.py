"""A7 — ablation: MinHash LSH parameters (extension).

Counterpart to A2 for the second approximate backend: signature length
drives build cost, and the band count moves the recall/candidate-noise
S-curve.  Completeness at k=0 is asserted throughout (it holds by
construction for any parameterisation).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_FIXED, scaled
from repro.core.grouping import make_group_finder

N_ROLES = scaled(5000)
N_USERS = scaled(PAPER_FIXED)


@pytest.mark.benchmark(group="ablation-lsh")
@pytest.mark.parametrize("n_hashes,n_bands", [(32, 8), (64, 16), (128, 32)])
def test_lsh_parameter_grid(benchmark, matrix_cache, n_hashes, n_bands):
    generated = matrix_cache(N_ROLES, N_USERS)
    finder = make_group_finder("lsh", n_hashes=n_hashes, n_bands=n_bands)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups  # complete at k=0 regardless
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="ablation-lsh-similarity")
@pytest.mark.parametrize("k", [1, 2])
def test_lsh_similarity_recall(benchmark, matrix_cache, k):
    """Recall on planted similar clusters at realistic overlap."""
    generated = matrix_cache(N_ROLES, N_USERS, k)
    finder = make_group_finder("lsh")
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, k),
        rounds=3,
        iterations=1,
    )
    exact = make_group_finder("cooccurrence").find_groups(
        generated.matrix, k
    )
    # soundness
    for group in groups:
        assert any(set(group) <= set(component) for component in exact)
    found = sum(len(g) for g in groups)
    truth = sum(len(g) for g in exact)
    benchmark.extra_info["recall_roles"] = found / truth if truth else 1.0
