"""Figure 3 — duration vs number of roles (users fixed).

Paper setup: 1,000 users, roles swept 1,000 → 10,000.  Reported shape:
every method grows with the role count; exact clustering grows fastest
(quadratic neighbour search), approximate clustering starts slower
(index-build constant) but overtakes exact at around 7,000 roles; the
custom co-occurrence algorithm stays 1-2 orders of magnitude below both
(paper: 0.13s at 1,000 roles, 2.27s at 10,000 vs 496s exact / 328s
approximate).

``test_shape_custom_beats_exact`` asserts the headline ranking
explicitly so a regression in the custom algorithm fails the suite
rather than just shifting numbers.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import PAPER_FIXED, scaled, scaled_grid
from repro.core.grouping import make_group_finder

N_USERS = scaled(PAPER_FIXED)
ROLE_GRID = scaled_grid()
HNSW_GRID = ROLE_GRID[:2]


@pytest.mark.benchmark(group="fig3-roles-sweep")
@pytest.mark.parametrize("n_roles", ROLE_GRID)
def test_custom_cooccurrence(benchmark, matrix_cache, n_roles):
    generated = matrix_cache(n_roles, N_USERS)
    finder = make_group_finder("cooccurrence")
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=5,
        iterations=1,
    )
    assert groups == generated.groups
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="fig3-roles-sweep")
@pytest.mark.parametrize("n_roles", ROLE_GRID)
def test_exact_dbscan(benchmark, matrix_cache, n_roles):
    generated = matrix_cache(n_roles, N_USERS)
    finder = make_group_finder("dbscan")
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=3,
        iterations=1,
    )
    assert groups == generated.groups
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="fig3-roles-sweep")
@pytest.mark.parametrize("n_roles", HNSW_GRID)
def test_approximate_hnsw(benchmark, matrix_cache, n_roles):
    generated = matrix_cache(n_roles, N_USERS)
    finder = make_group_finder("hnsw", ef_construction=32, ef_search=32)
    groups = benchmark.pedantic(
        finder.find_groups,
        args=(generated.matrix, 0),
        rounds=1,
        iterations=1,
    )
    true_groups = {tuple(g) for g in generated.groups}
    for group in groups:
        assert any(set(group) <= set(t) for t in true_groups)
    benchmark.extra_info["n_groups"] = len(groups)


@pytest.mark.benchmark(group="fig3-shape")
def test_shape_custom_beats_exact(benchmark, matrix_cache):
    """The paper's headline: at the top of the sweep the custom algorithm
    is at least an order of magnitude faster than exact clustering, and
    exact clustering's cost grows faster with the role count.  The timed
    region is the four-point comparison itself, so the assertion runs
    under ``--benchmark-only`` alongside the sweeps."""
    small, large = ROLE_GRID[0], ROLE_GRID[-1]

    def measure(finder_name: str, n_roles: int) -> float:
        generated = matrix_cache(n_roles, N_USERS)
        finder = make_group_finder(finder_name)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            finder.find_groups(generated.matrix, 0)
            best = min(best, time.perf_counter() - start)
        return best

    def compare() -> tuple[float, float, float, float]:
        return (
            measure("cooccurrence", large),
            measure("dbscan", large),
            measure("cooccurrence", small),
            measure("dbscan", small),
        )

    custom_large, exact_large, custom_small, exact_small = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    benchmark.extra_info["speedup_at_top"] = exact_large / max(
        custom_large, 1e-9
    )

    # Ranking at the top of the sweep (paper: ~219x; demand >= 5x to stay
    # robust on small CI machines).
    assert exact_large >= 5 * custom_large, (
        f"exact={exact_large:.4f}s custom={custom_large:.4f}s"
    )
    # Exact clustering scales worse than the custom algorithm.
    exact_growth = exact_large / max(exact_small, 1e-9)
    custom_growth = custom_large / max(custom_small, 1e-9)
    assert exact_growth > custom_growth, (
        f"exact growth {exact_growth:.1f}x vs custom {custom_growth:.1f}x"
    )
