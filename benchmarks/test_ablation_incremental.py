"""A4 — ablation: incremental auditing vs batch re-analysis (extension).

The paper's framework runs as a periodic batch.  The incremental auditor
(`repro.core.incremental`) keeps the same counts current under a
mutation stream.  This ablation quantifies the trade: processing N
mutations incrementally vs re-running the batch engine after each
mutation (the naive "always fresh" alternative an operator might reach
for), and the one-off cost of building the incremental indexes.
"""

from __future__ import annotations

import pytest

from repro.core import AnalysisConfig, analyze
from repro.core.incremental import IncrementalAuditor
from repro.datagen import OrgProfile, generate_org

N_MUTATIONS = 100


@pytest.fixture(scope="module")
def org_state():
    return generate_org(OrgProfile.small(divisor=100, seed=3)).state


def _mutation_plan(state, n: int):
    """A deterministic plan of (role, user) assign/revoke toggles."""
    roles = [r for r in state.role_ids() if state.users_of_role(r)]
    users = state.user_ids()
    plan = []
    for i in range(n):
        plan.append((roles[i % len(roles)], users[(i * 7) % len(users)]))
    return plan


@pytest.mark.benchmark(group="ablation-incremental")
def test_incremental_mutation_stream(benchmark, org_state):
    plan = _mutation_plan(org_state, N_MUTATIONS)

    def run():
        auditor = IncrementalAuditor(org_state)
        for role_id, user_id in plan:
            auditor.assign_user(role_id, user_id)
            auditor.revoke_user(role_id, user_id)
        return auditor.counts()

    counts = benchmark.pedantic(run, rounds=3, iterations=1)
    # toggles cancel out: final counts match the untouched state
    assert counts == analyze(org_state).counts()


@pytest.mark.benchmark(group="ablation-incremental")
def test_batch_reanalysis_per_mutation(benchmark, org_state):
    """The naive alternative, at 1/10 of the mutation count (it is that
    much slower); compare per-mutation costs across the two tests."""
    plan = _mutation_plan(org_state, max(1, N_MUTATIONS // 10))
    config = AnalysisConfig()

    def run():
        state = org_state.copy()
        last = None
        for role_id, user_id in plan:
            state.assign_user(role_id, user_id)
            last = analyze(state, config).counts()
            state.revoke_user(role_id, user_id)
        return last

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mutations"] = len(plan)


@pytest.mark.benchmark(group="ablation-incremental-build")
def test_incremental_index_build(benchmark, org_state):
    """One-off ingest cost of the incremental indexes."""
    auditor = benchmark.pedantic(
        IncrementalAuditor, args=(org_state,), rounds=3, iterations=1
    )
    assert auditor.state.n_roles == org_state.n_roles
