"""Shared configuration for the paper-reproduction benchmarks.

Every file in this directory regenerates one table or figure of the
paper's evaluation (§IV) — see DESIGN.md for the experiment index.

Scaling
-------
The paper sweeps 1,000-10,000 roles/users; a full-size sweep of the
pure-Python baselines takes hours, so the pytest benchmarks run the same
workloads at ``REPRO_BENCH_SCALE`` times the paper sizes (default 0.1 —
i.e. 100-1,000).  The *shape* — which method wins, growth rates, the
exact/approximate crossover — is what these benchmarks assert and what
EXPERIMENTS.md records.  Set ``REPRO_BENCH_SCALE=1.0`` (and plenty of
patience) for paper-size runs, or use ``repro bench --experiment fig2
--scale 1.0`` which prints the full series without pytest overhead.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen import MatrixSpec, generate_matrix

#: Fraction of the paper's sweep sizes the benchmarks run at.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

#: The paper's sweep grid (both figures): 1,000 → 10,000 step 1,000.
PAPER_GRID = list(range(1000, 10001, 1000))

#: The paper's fixed other-axis size.
PAPER_FIXED = 1000


def scaled(value: int) -> int:
    """A paper size scaled down to benchmark size (minimum 50)."""
    return max(50, int(round(value * BENCH_SCALE)))


def scaled_grid(step_subset: int = 1) -> list[int]:
    """The scaled sweep grid (optionally every Nth point)."""
    return sorted({scaled(v) for v in PAPER_GRID[::step_subset]})


@pytest.fixture(scope="session")
def matrix_cache():
    """Session-wide cache of generated workload matrices.

    Generation is excluded from every timed region; caching keeps the
    overall benchmark wall-clock reasonable.
    """
    cache: dict[tuple, object] = {}

    def get(n_roles: int, n_cols: int, differences: int = 0, seed: int = 0):
        key = (n_roles, n_cols, differences, seed)
        if key not in cache:
            cache[key] = generate_matrix(
                MatrixSpec(
                    n_roles=n_roles,
                    n_cols=n_cols,
                    cluster_proportion=0.2,
                    max_cluster_size=10,
                    differences=differences,
                    seed=seed,
                )
            )
        return cache[key]

    return get
