"""§IV-B — the real-organisation experiment (planted stand-in).

The paper runs the framework over a proprietary dataset (~90k users,
~350k permissions, ~50k roles) and reports one count per inefficiency
type plus two headlines: the full analysis finishes in ~2 minutes with
the custom algorithm (both baselines were halted after 24h), and
consolidating duplicate groups alone would remove ~10% of all roles.

Here the same experiment runs over the planted synthetic stand-in at
1/25 scale (3,600 users, 14,000 permissions, 2,000 roles) — large enough
that the analysis cost is dominated by the same sparse-matrix work as at
paper scale.  Counts are asserted against the planted ground truth, and
the table is printed for EXPERIMENTS.md.  A paper-scale run is
``repro bench --experiment real --scale-divisor 1``.
"""

from __future__ import annotations

import pytest

from repro.benchharness import render_real_dataset_table, run_real_dataset
from repro.core import AnalysisConfig, analyze
from repro.datagen import OrgProfile, PlantedCounts, generate_org

DIVISOR = 25


@pytest.fixture(scope="module")
def org():
    return generate_org(OrgProfile.small(divisor=DIVISOR, seed=3))


@pytest.mark.benchmark(group="real-dataset")
def test_full_analysis_custom_algorithm(benchmark, org):
    report = benchmark.pedantic(
        analyze,
        args=(org.state,),
        kwargs={"config": AnalysisConfig(finder="cooccurrence")},
        rounds=3,
        iterations=1,
    )
    assert report.counts() == org.expected_counts()
    for key, value in report.counts().items():
        benchmark.extra_info[key] = value


@pytest.mark.benchmark(group="real-dataset")
def test_linear_detectors_only(benchmark, org):
    """Types 1-3 alone: the paper claims these are linear-time; they
    should be a small fraction of the full analysis."""
    from repro.core import InefficiencyType

    config = AnalysisConfig(
        enabled_types=(
            InefficiencyType.STANDALONE_NODE,
            InefficiencyType.DISCONNECTED_ROLE,
            InefficiencyType.SINGLE_ASSIGNMENT_ROLE,
        )
    )
    report = benchmark.pedantic(
        analyze, args=(org.state,), kwargs={"config": config},
        rounds=3, iterations=1,
    )
    counts = report.counts()
    expected = org.expected_counts()
    for key in (
        "standalone_users", "standalone_permissions", "roles_without_users",
        "roles_without_permissions", "single_user_roles",
        "single_permission_roles",
    ):
        assert counts[key] == expected[key]


@pytest.mark.benchmark(group="real-dataset")
def test_print_table_and_consolidation_headline(benchmark, org, capsys):
    """Regenerates the §IV-B table (planted vs measured vs paper) and
    asserts the ~10% consolidation headline.  The timed region is the
    whole experiment: generate → analyse → plan → apply."""
    result = benchmark.pedantic(
        run_real_dataset,
        args=(OrgProfile.small(divisor=DIVISOR, seed=3),),
        kwargs={"finder": "cooccurrence"},
        rounds=1,
        iterations=1,
    )
    assert result.measured_counts == result.expected_counts
    fraction = result.consolidation["fraction_of_roles"]
    assert fraction == pytest.approx(0.10, abs=0.005)
    with capsys.disabled():
        print()
        print(
            render_real_dataset_table(
                result, paper_counts=PlantedCounts().as_dict()
            )
        )
