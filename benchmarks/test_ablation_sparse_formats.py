"""A3 — ablation: sparse-matrix format for the co-occurrence kernel.

The paper notes (§III-B) that sparse storage could further shrink
RUAM/RPAM but that "the type of sparse matrix should be chosen
considering other factors, such as conversion time, based on the
experimental evaluation".  This benchmark is that evaluation: it times
the ``M @ M.T`` product per format and the dense→format conversion,
confirming CSR/CSC as the only viable algebra formats (COO falls back to
CSR internally; LIL is catastrophically slower and excluded from the
timed grid — see ``tests/bitmatrix/test_formats.py``).
"""

from __future__ import annotations

import pytest
import scipy.sparse as sp

from benchmarks.conftest import PAPER_FIXED, scaled

N_ROLES = scaled(5000)
N_USERS = scaled(PAPER_FIXED)

FORMATS = ("csr", "csc", "coo")


@pytest.mark.benchmark(group="ablation-sparse-product")
@pytest.mark.parametrize("fmt", FORMATS)
def test_cooccurrence_product_per_format(benchmark, matrix_cache, fmt):
    generated = matrix_cache(N_ROLES, N_USERS)
    converted = getattr(generated.matrix, f"to{fmt}")()

    result = benchmark.pedantic(
        lambda: converted @ converted.T,
        rounds=5,
        iterations=1,
    )
    assert result.shape == (N_ROLES, N_ROLES)


@pytest.mark.benchmark(group="ablation-sparse-conversion")
@pytest.mark.parametrize("fmt", FORMATS)
def test_dense_to_format_conversion(benchmark, matrix_cache, fmt):
    generated = matrix_cache(N_ROLES, N_USERS)
    dense = generated.dense

    converted = benchmark.pedantic(
        lambda: getattr(sp, f"{fmt}_matrix")(dense),
        rounds=5,
        iterations=1,
    )
    assert converted.nnz == generated.matrix.nnz


@pytest.mark.benchmark(group="ablation-sparse-recommend")
def test_recommendation_helper(benchmark, matrix_cache):
    """The library's ``recommend_format`` helper end-to-end."""
    from repro.bitmatrix import recommend_format

    generated = matrix_cache(N_ROLES, N_USERS)
    choice = benchmark.pedantic(
        recommend_format,
        args=(generated.matrix,),
        kwargs={"repeats": 1},
        rounds=1,
        iterations=1,
    )
    assert choice in FORMATS
