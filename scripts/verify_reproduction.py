"""One-shot reproduction checklist.

Runs an assertion per paper claim (E1-E5 of EXPERIMENTS.md) at quick
scale and prints a ✔/✘ checklist.  Exit code 0 iff everything holds.

    python scripts/verify_reproduction.py [--deep]

``--deep`` additionally runs the E4/E5 experiment at 1/10 paper scale
(~1 minute) instead of 1/100.
"""

from __future__ import annotations

import argparse
import sys
import time


def check(label, fn):
    start = time.time()
    try:
        fn()
    except Exception as error:  # noqa: BLE001 - checklist boundary
        print(f"  ✘ {label}  ({error})")
        return False
    print(f"  ✔ {label}  ({time.time() - start:.1f}s)")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--deep", action="store_true")
    args = parser.parse_args()
    divisor = 10 if args.deep else 100

    from repro import analyze
    from repro.benchharness import run_real_dataset
    from repro.bitmatrix import cooccurrence
    from repro.core import AnalysisConfig, AssignmentMatrix
    from repro.core.grouping import make_group_finder
    from repro.datagen import MatrixSpec, OrgProfile, generate_matrix, generate_org

    results = []
    print("E1 — Figure 1 worked example")

    def e1():
        sys.path.insert(0, "examples")
        from quickstart import build_figure_1_example

        state = build_figure_1_example()
        counts = analyze(state).counts()
        assert counts["standalone_permissions"] == 1  # P01
        assert counts["roles_without_users"] == 1  # R03
        assert counts["roles_without_permissions"] == 1  # R02
        assert counts["single_user_roles"] == 2  # R01, R05
        assert counts["roles_same_users"] == 2  # R02+R04
        assert counts["roles_same_permissions"] == 2  # R04+R05
        matrix = cooccurrence(AssignmentMatrix.ruam(state).csr).toarray()
        assert matrix.tolist() == [
            [1, 0, 0, 0, 0], [0, 2, 0, 2, 0], [0, 0, 0, 0, 0],
            [0, 2, 0, 2, 0], [0, 0, 0, 0, 1],
        ]

    results.append(check("every Figure-1 inefficiency detected; C matches §III-C", e1))

    print("E2/E3 — method agreement and ranking on the §IV-A workload")

    def e23():
        generated = generate_matrix(
            MatrixSpec(n_roles=400, n_cols=200, seed=0)
        )
        custom = make_group_finder("cooccurrence")
        exact = make_group_finder("dbscan")
        assert custom.find_groups(generated.matrix, 0) == generated.groups
        assert exact.find_groups(generated.matrix, 0) == generated.groups
        t0 = time.time(); custom.find_groups(generated.matrix, 0)
        custom_s = time.time() - t0
        t0 = time.time(); exact.find_groups(generated.matrix, 0)
        exact_s = time.time() - t0
        assert exact_s > 2 * custom_s, (
            f"expected custom ≪ exact, got {custom_s:.4f}s vs {exact_s:.4f}s"
        )

    results.append(check("custom = exact on ground truth, and faster", e23))

    print(f"E4 — planted real-organisation counts (1/{divisor} scale)")
    real_holder = {}

    def e4():
        real = run_real_dataset(
            OrgProfile.small(divisor=divisor, seed=3), finder="cooccurrence"
        )
        real_holder["real"] = real
        assert real.measured_counts == real.expected_counts

    results.append(check("all ten planted counts recovered exactly", e4))

    print("E5 — the ~10% consolidation headline")

    def e5():
        real = real_holder["real"]
        fraction = real.consolidation["fraction_of_roles"]
        assert abs(fraction - 0.10) < 0.005, f"got {fraction:.3f}"

    results.append(check("duplicate-group consolidation ≈ 10% of roles", e5))

    print("Safety — remediation never changes effective access")

    def safety():
        from repro.datagen import DepartmentProfile, generate_departmental_org
        from repro.remediation import run_to_fixed_point

        state = generate_departmental_org(DepartmentProfile(seed=3))
        result = run_to_fixed_point(
            state, config=AnalysisConfig.with_extensions()
        )
        assert result.converged
        for user_id in result.final_state.user_ids():
            assert result.final_state.effective_permissions(
                user_id
            ) == state.effective_permissions(user_id)

    results.append(check("fixed-point cleanup provably access-preserving", safety))

    passed = sum(results)
    print(f"\n{passed}/{len(results)} reproduction checks passed")
    return 0 if passed == len(results) else 1


if __name__ == "__main__":
    sys.exit(main())
