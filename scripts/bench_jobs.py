#!/usr/bin/env python
"""Benchmark the job plane: enqueue/claim throughput and queue wait.

One JSON artifact (``BENCH_jobs.json`` at the repo root — checked in so
reviewers can see the numbers the queue design is justified by):

1. **Enqueue sweep** — distinct-spec submissions (one durable
   transaction each) and idempotent re-submissions (dedup hits) per
   second against one sqlite queue file.

2. **Drain sweep** — N pre-enqueued jobs drained by 1 / 2 / 4 claimer
   threads doing the full ``claim → complete`` transition pair (the
   queue-side cost of a job, with handler time zeroed out).  sqlite is
   a single-writer store, so the expectation the artifact documents is
   *not* linear scaling — it is that contention degrades gracefully
   (every job still completes exactly once, throughput stays the same
   order of magnitude) while the ``jobs.queue_wait_seconds`` histogram
   captures the p50/p99 a fleet of that size actually sees.

Usage::

    PYTHONPATH=src python scripts/bench_jobs.py [--quick]
        [--out BENCH_jobs.json]

``--quick`` shrinks job counts for CI smoke runs (the schema is
identical, the numbers are not meant to be quoted).
"""

from __future__ import annotations

import argparse
import json
import platform
import sqlite3
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.jobs import JobQueue  # noqa: E402
from repro.jobs.queue import QUEUE_WAIT_HISTOGRAM  # noqa: E402

SCHEMA_VERSION = 1


def bench_enqueue(quick: bool) -> dict:
    n_jobs = 200 if quick else 2000
    with tempfile.TemporaryDirectory() as tmp:
        queue = JobQueue(Path(tmp) / "jobs.sqlite")
        t0 = time.perf_counter()
        for n in range(n_jobs):
            queue.enqueue("sleep", {"n": n})
        fresh_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for n in range(n_jobs):
            queue.enqueue("sleep", {"n": n})  # same specs: dedup path
        dedup_s = time.perf_counter() - t0
        queue.close()
    result = {
        "jobs": n_jobs,
        "fresh_seconds": fresh_s,
        "fresh_per_second": n_jobs / fresh_s,
        "dedup_seconds": dedup_s,
        "dedup_per_second": n_jobs / dedup_s,
    }
    print(
        f"enqueue: fresh={result['fresh_per_second']:.0f}/s "
        f"dedup={result['dedup_per_second']:.0f}/s ({n_jobs} jobs)"
    )
    return result


def bench_drain(quick: bool) -> list[dict]:
    n_jobs = 100 if quick else 800
    results = []
    for n_workers in (1, 2, 4):
        with tempfile.TemporaryDirectory() as tmp:
            queue = JobQueue(Path(tmp) / "jobs.sqlite")
            for n in range(n_jobs):
                queue.enqueue("sleep", {"n": n})
            completed: list[str] = []
            lock = threading.Lock()

            def claimer(worker_id: str) -> None:
                while True:
                    record = queue.claim(worker_id)
                    if record is None:
                        return
                    if queue.complete(record.job_id, worker_id, {}):
                        with lock:
                            completed.append(record.job_id)

            threads = [
                threading.Thread(target=claimer, args=(f"w{i}",))
                for i in range(n_workers)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            seconds = time.perf_counter() - t0

            assert len(completed) == n_jobs, (n_workers, len(completed))
            assert len(set(completed)) == n_jobs  # exactly once each
            wait = queue.histogram_summaries()[QUEUE_WAIT_HISTOGRAM]
            queue.close()
        row = {
            "n_workers": n_workers,
            "jobs": n_jobs,
            "seconds": seconds,
            "jobs_per_second": n_jobs / seconds,
            "queue_wait_p50_seconds": wait["p50"],
            "queue_wait_p99_seconds": wait["p99"],
        }
        results.append(row)
        print(
            f"drain x{n_workers}: {row['jobs_per_second']:.0f} jobs/s "
            f"(wait p50={wait['p50'] * 1e3:.1f}ms "
            f"p99={wait['p99'] * 1e3:.1f}ms)"
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer jobs (CI smoke; schema identical)",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_jobs.json",
        help="output path (default: BENCH_jobs.json at repo root)",
    )
    args = parser.parse_args(argv)

    document = {
        "schema_version": SCHEMA_VERSION,
        "quick": args.quick,
        "environment": {
            "python": platform.python_version(),
            "sqlite": sqlite3.sqlite_version,
        },
        "enqueue": bench_enqueue(args.quick),
        "workers": bench_drain(args.quick),
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
