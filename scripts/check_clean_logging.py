#!/usr/bin/env python
"""Lint: library code must not print or reconfigure process logging.

Walks every module under ``src/repro/`` except ``cli/`` and fails when
it finds a call to ``print(...)`` or ``logging.basicConfig(...)``.
Output belongs to the CLI layer; the library communicates through
return values, exceptions, and the :mod:`repro.obs` recorder — a
library that writes to stdout or mutates the root logger's handlers is
unusable as an embedded component.

AST-based (not grep) so comments, docstrings, and words like
"blueprint" never false-positive.

Usage: ``python scripts/check_clean_logging.py [SRC_DIR]``
Exit code 0 when clean, 1 with one ``file:line`` diagnostic per hit.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages the lint must actually see modules from — a guard against
#: the walk silently missing a layer (e.g. after a package rename).
#: ``service`` matters most: a daemon that prints to stdout corrupts
#: nothing visibly but interleaves garbage into supervisor logs.
#: ``jobs`` is in the same boat — workers run under supervisors too.
REQUIRED_PACKAGES = ("core", "jobs", "obs", "parallel", "service")


def violations_in(path: Path) -> list[tuple[int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            found.append((node.lineno, "print() call"))
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "basicConfig"
            and isinstance(func.value, ast.Name)
            and func.value.id == "logging"
        ):
            found.append((node.lineno, "logging.basicConfig() call"))
    return found


def main(argv: list[str]) -> int:
    root = Path(argv[0]) if argv else Path("src/repro")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    status = 0
    checked = 0
    covered_packages: set[str] = set()
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if "cli" in parts:
            continue  # the CLI layer is allowed to print and configure logging
        checked += 1
        if len(parts) > 1:
            covered_packages.add(parts[0])
        for lineno, message in violations_in(path):
            print(f"{path}:{lineno}: {message}", file=sys.stderr)
            status = 1
    missing = [p for p in REQUIRED_PACKAGES if p not in covered_packages]
    if missing:
        print(
            f"error: lint walked no modules under {root} for required "
            f"package(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(
            f"clean: no print()/logging.basicConfig in {checked} modules "
            f"({len(covered_packages)} packages)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
