"""Run the paper experiments at a recordable scale and save the series.

Produces the measured data EXPERIMENTS.md reports:
  results/fig2.csv, results/fig3.csv, results/real.txt
"""

from __future__ import annotations

import pathlib
import time

from repro.benchharness import (
    render_real_dataset_table,
    render_series_csv,
    render_series_table,
    run_real_dataset,
    run_roles_sweep,
    run_users_sweep,
)
from repro.datagen import OrgProfile, PlantedCounts

OUT = pathlib.Path(__file__).resolve().parent.parent / "results"
OUT.mkdir(exist_ok=True)

SCALE = 0.2
SIZES = [int(n * SCALE) for n in range(1000, 10001, 1000)]
FIXED = int(1000 * SCALE)
METHODS = ("dbscan", "hnsw", "cooccurrence")

start = time.time()
print("fig2 ...", flush=True)
fig2 = run_users_sweep(SIZES, n_roles=FIXED, methods=METHODS, repeats=3)
(OUT / "fig2.csv").write_text(render_series_csv(fig2))
(OUT / "fig2.txt").write_text(render_series_table(fig2))
print(f"fig2 done in {time.time()-start:.0f}s", flush=True)

start = time.time()
print("fig3 ...", flush=True)
fig3 = run_roles_sweep(SIZES, n_users=FIXED, methods=METHODS, repeats=3)
(OUT / "fig3.csv").write_text(render_series_csv(fig3))
(OUT / "fig3.txt").write_text(render_series_table(fig3))
print(f"fig3 done in {time.time()-start:.0f}s", flush=True)

start = time.time()
print("real ...", flush=True)
real = run_real_dataset(OrgProfile.small(divisor=10, seed=3))
(OUT / "real.txt").write_text(
    render_real_dataset_table(real, paper_counts=PlantedCounts().as_dict())
)
print(f"real done in {time.time()-start:.0f}s", flush=True)
print("ALL DONE", flush=True)
