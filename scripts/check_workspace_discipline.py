#!/usr/bin/env python
"""Lint: co-occurrence data must be read through the workspace.

Walks every module under the checked roots and fails when it finds a
direct call to ``cooccurrence(...)`` (or any reference to
``bitmatrix.cooccurrence`` / an import of it).  Computing ``M·Mᵀ``
inline is exactly the drift this rule guards against: every consumer
that needs candidate pairs must go through
:class:`repro.core.workspace.AxisWorkspace` (``matched_pairs`` /
``subset_pairs``), so the product stays one blocked, memoised pass per
axis — recomputing it privately silently discards the memory bound and
the exactly-once guarantee asserted by the parity suite.

Two roots are checked by default:

* ``src/repro/core/detectors`` — the original rule: detectors are the
  natural place for this drift to creep in.
* ``src/repro/jobs`` — the job plane executes analyses in worker
  processes; a worker-side shortcut around the engine would bypass the
  workspace exactly where nobody is watching.

Every default root is *required*: a root that is missing, or walks zero
modules, fails the lint — so a package rename cannot silently drop a
layer out of coverage.

AST-based (not grep) so comments, docstrings, and the word
"co-occurrence" in prose never false-positive.

Usage: ``python scripts/check_workspace_discipline.py [DIR ...]``
Exit code 0 when clean, 1 with one ``file:line`` diagnostic per hit.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

BANNED = "cooccurrence"

#: Roots walked (and required to be non-empty) when none are given.
DEFAULT_ROOTS = (
    "src/repro/core/detectors",
    "src/repro/jobs",
)


def violations_in(path: Path) -> list[tuple[int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == BANNED:
                found.append((node.lineno, "direct cooccurrence() call"))
            elif isinstance(func, ast.Attribute) and func.attr == BANNED:
                found.append(
                    (node.lineno, "direct <module>.cooccurrence() call")
                )
        elif isinstance(node, ast.ImportFrom):
            if any(alias.name == BANNED for alias in node.names):
                found.append(
                    (
                        node.lineno,
                        f"import of {BANNED!r} from {node.module or '.'}",
                    )
                )
    return found


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] if argv else [
        Path(root) for root in DEFAULT_ROOTS
    ]
    status = 0
    checked = 0
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2
        walked = 0
        for path in sorted(root.rglob("*.py")):
            checked += 1
            walked += 1
            for lineno, message in violations_in(path):
                print(
                    f"{path}:{lineno}: {message} — candidate pairs must "
                    "come from the AxisWorkspace "
                    "(matched_pairs / subset_pairs)",
                    file=sys.stderr,
                )
                status = 1
        if walked == 0:
            # A required root with no modules means the walk is no
            # longer covering that layer — fail loudly, never silently.
            print(
                f"error: lint walked no modules under {root}",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print(
            "clean: no direct cooccurrence access in "
            f"{checked} modules across {len(roots)} roots"
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
