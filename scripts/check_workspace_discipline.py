#!/usr/bin/env python
"""Lint: detectors must read co-occurrence data through the workspace.

Walks every module under ``src/repro/core/detectors/`` and fails when it
finds a direct call to ``cooccurrence(...)`` (or any reference to
``bitmatrix.cooccurrence`` / an import of it).  Computing ``M·Mᵀ``
inline is exactly the drift this rule guards against: every detector
that needs candidate pairs must go through
:class:`repro.core.workspace.AxisWorkspace` (``matched_pairs`` /
``subset_pairs``), so the product stays one blocked, memoised pass per
axis — recomputing it privately silently discards the memory bound and
the exactly-once guarantee asserted by the parity suite.

AST-based (not grep) so comments, docstrings, and the word
"co-occurrence" in prose never false-positive.

Usage: ``python scripts/check_workspace_discipline.py [DETECTORS_DIR]``
Exit code 0 when clean, 1 with one ``file:line`` diagnostic per hit.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

BANNED = "cooccurrence"


def violations_in(path: Path) -> list[tuple[int, str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == BANNED:
                found.append((node.lineno, "direct cooccurrence() call"))
            elif isinstance(func, ast.Attribute) and func.attr == BANNED:
                found.append(
                    (node.lineno, "direct <module>.cooccurrence() call")
                )
        elif isinstance(node, ast.ImportFrom):
            if any(alias.name == BANNED for alias in node.names):
                found.append(
                    (
                        node.lineno,
                        f"import of {BANNED!r} from {node.module or '.'}",
                    )
                )
    return found


def main(argv: list[str]) -> int:
    root = Path(argv[0]) if argv else Path("src/repro/core/detectors")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    status = 0
    checked = 0
    for path in sorted(root.rglob("*.py")):
        checked += 1
        for lineno, message in violations_in(path):
            print(
                f"{path}:{lineno}: {message} — candidate pairs must come "
                "from the AxisWorkspace (matched_pairs / subset_pairs)",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print(
            "clean: no direct cooccurrence access in "
            f"{checked} detector modules"
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
