#!/usr/bin/env python
"""Validate JSONL trace files against the documented schema.

Thin CLI wrapper over :func:`repro.obs.validate_trace_file` (the real
implementation, shared with the test suite).  Used by CI's observability
smoke job against an actual ``repro analyze --trace-out`` run.

Accepts both schema versions: v1 (pre-order ``path``/``depth`` spans)
and v2 (adds ``trace_id`` on every event plus ``span_id``/``parent_id``
links, which are checked for integrity — unique pre-order IDs, parent
links resolving to an earlier span at the parent depth, no dangling
spans).  Failures print the offending line number and rule.

Usage: ``python scripts/validate_trace.py TRACE.jsonl [TRACE2.jsonl ...]``
Exit code 0 when every file conforms, 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import TraceSchemaError, validate_trace_file  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_trace.py TRACE.jsonl [...]", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            summary = validate_trace_file(path)
        except (TraceSchemaError, OSError) as error:
            print(f"{path}: INVALID — {error}", file=sys.stderr)
            status = 1
        else:
            print(
                f"{path}: ok ({summary['traces']} traces, "
                f"{summary['spans']} spans)"
            )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
