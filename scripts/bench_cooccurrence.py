#!/usr/bin/env python
"""Benchmark the co-occurrence kernels and the worker data planes.

Two sweeps, one JSON artifact (``BENCH_cooccurrence.json`` at the repo
root — checked in so reviewers can see the numbers the cost model and
the shared-memory fan-out are justified by):

1. **Serial kernel sweep** — ``blocked_scan`` with ``sparse``, ``bits``
   and ``auto`` over random matrices across a density ladder.  The
   expectation the artifact documents: sparse wins at low density, bits
   wins once matrices get dense, and auto tracks the winner (within
   dispatch noise) on both ends.

2. **Parallel data-plane sweep** — the same scan fanned over worker
   processes with the shared-memory plane (publish once, manifest-only
   tasks) versus the legacy pickled-``initargs`` plane (arrays
   re-serialised into every worker).  Setup cost is what differs, so
   the matrix is sized to make it visible.

Usage::

    PYTHONPATH=src python scripts/bench_cooccurrence.py [--quick]
        [--out BENCH_cooccurrence.json]

``--quick`` shrinks sizes/repeats for CI smoke runs (the schema is
identical, the numbers are not meant to be quoted).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import scipy.sparse as sp

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bitmatrix.packed import HAVE_HW_POPCOUNT, pack_csr_rows  # noqa: E402
from repro.core.grouping.cooccurrence import (  # noqa: E402
    _init_block_worker,
    _scan_of_block,
    blocked_scan,
)
from repro.core.grouping.kernels import plan_kernels  # noqa: E402
from repro.parallel import ParallelExecutor, WorkerPool, use_pool  # noqa: E402

SCHEMA_VERSION = 1


def _random_csr(n_rows: int, n_cols: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    dense = rng.random((n_rows, n_cols)) < density
    return sp.csr_matrix(dense.astype(np.int64))


def _norms(csr):
    return np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_serial_kernels(quick: bool) -> list[dict]:
    n_rows, n_cols = (200, 300) if quick else (600, 900)
    block_rows = 64
    repeats = 2 if quick else 3
    results = []
    for density in (0.02, 0.05, 0.15, 0.3, 0.5, 0.8):
        csr = _random_csr(n_rows, n_cols, density, seed=int(density * 1000))
        norms = _norms(csr)
        words = pack_csr_rows(csr)
        bounds = [(s, min(s + block_rows, n_rows))
                  for s in range(0, n_rows, block_rows)]
        plan = plan_kernels(csr, csr.T.tocsr(), bounds, "auto")
        row = {
            "n_rows": n_rows,
            "n_cols": n_cols,
            "density": density,
            "nnz": int(csr.nnz),
            "auto_plan_bits_blocks": plan.count("bits"),
            "auto_plan_total_blocks": len(plan),
            "seconds": {},
        }
        for kernel in ("sparse", "bits", "auto"):
            row["seconds"][kernel] = _best_of(
                repeats,
                lambda k=kernel: blocked_scan(
                    csr, norms, k=1, collect_subsets=True,
                    block_rows=block_rows, kernel=k, words=words,
                ),
            )
        results.append(row)
        print(
            f"density={density:>4}: sparse={row['seconds']['sparse']:.4f}s "
            f"bits={row['seconds']['bits']:.4f}s "
            f"auto={row['seconds']['auto']:.4f}s "
            f"(auto plan: {plan.count('bits')}/{len(plan)} bits blocks)"
        )
    return results


def bench_data_planes(quick: bool) -> dict:
    """Shared-memory versus pickled-``initargs`` fan-out setup cost.

    Measures one full parallel scan per plane over a matrix big enough
    for serialisation to matter, pinning the plane explicitly rather
    than relying on the automatic shm-first fallback order.
    """
    n_rows, n_cols = (400, 600) if quick else (1500, 2000)
    density = 0.05
    block_rows = max(32, n_rows // 16)
    workers = 2
    repeats = 2 if quick else 3
    csr = _random_csr(n_rows, n_cols, density, seed=7)
    csr_t = csr.T.tocsr()
    norms = _norms(csr)
    bounds = [(s, min(s + block_rows, n_rows))
              for s in range(0, n_rows, block_rows)]
    tasks = [(start, stop, "sparse") for start, stop in bounds]

    def pickled_plane():
        executor = ParallelExecutor(
            workers,
            initializer=_init_block_worker,
            initargs=(csr, csr_t, norms, 1, False, False, None),
        )
        return executor.map(_scan_of_block, tasks)

    def shm_plane():
        with WorkerPool(workers) as pool, use_pool(pool):
            return blocked_scan(
                csr, norms, k=1, block_rows=block_rows,
                n_workers=workers, kernel="sparse",
            )

    pickled = _best_of(repeats, pickled_plane)
    shm = _best_of(repeats, shm_plane)

    # Setup-cost microbenchmark: the planes differ in how the arrays
    # reach workers, so time exactly that, on a matrix big enough for
    # data volume (not fixed syscall overhead) to dominate.  The pickled
    # plane serialises the full initargs tuple once per worker and
    # deserialises it inside each; the shm plane copies the arrays into
    # one segment once and ships a few-hundred-byte manifest per task.
    import pickle

    from repro.parallel import attach, publish

    setup_rows, setup_cols = (800, 1200) if quick else (3000, 4000)
    big = _random_csr(setup_rows, setup_cols, 0.15, seed=8)
    big_t = big.T.tocsr()
    big_norms = _norms(big)
    initargs = (big, big_t, big_norms, 1, False, False, None)

    def pickled_setup():
        for _ in range(workers):
            pickle.loads(pickle.dumps(initargs))

    def shm_setup():
        with publish(
            {
                "m_data": big.data, "m_indices": big.indices,
                "m_indptr": big.indptr, "t_data": big_t.data,
                "t_indices": big_t.indices, "t_indptr": big_t.indptr,
                "norms": big_norms,
            }
        ) as handle:
            for _ in range(workers):
                segment = attach(
                    pickle.loads(pickle.dumps(handle.manifest))
                )
                segment.close()

    pickled_setup_s = _best_of(repeats, pickled_setup)
    shm_setup_s = _best_of(repeats, shm_setup)
    setup_bytes = int(
        big.data.nbytes + big.indices.nbytes + big.indptr.nbytes
        + big_t.data.nbytes + big_t.indices.nbytes + big_t.indptr.nbytes
        + big_norms.nbytes
    )

    def warm_pool_plane():
        # One spawn amortised over two scans — the engine/service shape.
        with WorkerPool(workers) as pool, use_pool(pool):
            for _ in range(2):
                blocked_scan(
                    csr, norms, k=1, block_rows=block_rows,
                    n_workers=workers, kernel="sparse",
                )

    warm = _best_of(repeats, warm_pool_plane) / 2
    payload_bytes = int(
        csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        + csr_t.data.nbytes + csr_t.indices.nbytes + csr_t.indptr.nbytes
        + norms.nbytes
    )
    result = {
        "n_rows": n_rows,
        "n_cols": n_cols,
        "density": density,
        "nnz": int(csr.nnz),
        "n_workers": workers,
        "n_blocks": len(bounds),
        "array_bytes": payload_bytes,
        "seconds": {
            "pickled_initargs": pickled,
            "shm_cold_pool": shm,
            "shm_warm_pool_per_scan": warm,
        },
        "setup_matrix": {
            "n_rows": setup_rows,
            "n_cols": setup_cols,
            "density": 0.15,
            "array_bytes": setup_bytes,
        },
        "setup_seconds": {
            "pickled_initargs": pickled_setup_s,
            "shm_publish_attach": shm_setup_s,
        },
    }
    print(
        f"data planes ({n_rows}x{n_cols}, {workers} workers): "
        f"pickled={pickled:.4f}s shm(cold)={shm:.4f}s "
        f"shm(warm, per scan)={warm:.4f}s"
    )
    print(
        f"setup cost ({setup_bytes / 1e6:.1f} MB of arrays, "
        f"{workers} workers): pickled={pickled_setup_s:.4f}s "
        f"shm={shm_setup_s:.4f}s"
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / fewer repeats (CI smoke; schema identical)",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_cooccurrence.json",
        help="output path (default: BENCH_cooccurrence.json at repo root)",
    )
    args = parser.parse_args(argv)

    document = {
        "schema_version": SCHEMA_VERSION,
        "quick": args.quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "hw_popcount": HAVE_HW_POPCOUNT,
        },
        "serial_kernels": bench_serial_kernels(args.quick),
        "data_planes": bench_data_planes(args.quick),
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
