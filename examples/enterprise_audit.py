"""Enterprise audit: the paper's §IV-B real-organisation experiment.

Generates the synthetic stand-in for the paper's proprietary dataset (a
scaled-down organisation with every inefficiency type planted in the
paper's proportions), runs the full analysis with the custom
co-occurrence algorithm, and prints the planted-vs-measured-vs-paper
table plus the consolidation headline.

Scale is controlled with ``--scale-divisor`` (default 50, i.e. 1/50 of
the paper's ~90k users / ~50k roles / ~350k permissions; pass 1 for the
full-size run, which takes a few minutes and a few GB of RAM).

Run with::

    python examples/enterprise_audit.py [--scale-divisor 50]
"""

from __future__ import annotations

import argparse

from repro.benchharness import render_real_dataset_table, run_real_dataset
from repro.datagen import OrgProfile, PlantedCounts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale-divisor", type=int, default=50)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    if args.scale_divisor == 1:
        profile = OrgProfile.paper_scale(seed=args.seed)
    else:
        profile = OrgProfile.small(divisor=args.scale_divisor, seed=args.seed)

    print(
        f"generating organisation: {profile.n_users} users, "
        f"{profile.n_roles} roles, {profile.n_permissions} permissions …"
    )
    result = run_real_dataset(profile, finder="cooccurrence")

    print()
    print(
        render_real_dataset_table(
            result, paper_counts=PlantedCounts().as_dict()
        )
    )

    print("\nper-detector timings:")
    for detector, seconds in result.detector_timings.items():
        print(f"  {detector:<26} {seconds:8.3f} s")

    mismatches = [
        metric
        for metric, expected, measured in result.count_rows()
        if expected != measured
    ]
    if mismatches:
        raise SystemExit(f"planted-vs-measured mismatch in: {mismatches}")
    print("\nall planted inefficiencies detected exactly ✔")


if __name__ == "__main__":
    main()
