"""Continuous analysis via the in-process service.

Boots an :class:`~repro.service.ServiceServer` on an ephemeral loopback
port, streams mutation batches at it over real HTTP (an IAM pipeline
would do the same from another process), polls the live inefficiency
counts after every batch, asks for a full cached report, and finally
fetches the background scheduler's latest report diff — the payload a
reviewer dashboard would poll.

Run with::

    python examples/continuous_service.py
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro import RbacState
from repro.core.engine import AnalysisConfig
from repro.service import AnalysisService, ServiceConfig, ServiceServer


def call(url: str, method: str = "GET", payload: dict | None = None) -> dict:
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=body, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def seed_state() -> RbacState:
    """A small org: two duplicate-ish engineering roles and one orphan."""
    return RbacState.build(
        users=[f"eng{i}" for i in range(6)] + ["auditor"],
        roles=["eng-read", "eng-write", "legacy-eng", "dormant"],
        permissions=["repo.read", "repo.write", "ci.run", "vault.admin"],
        user_assignments=[
            ("eng-read", "eng0"), ("eng-read", "eng1"), ("eng-read", "eng2"),
            ("eng-write", "eng0"), ("eng-write", "eng1"), ("eng-write", "eng2"),
            ("legacy-eng", "eng3"),
        ],
        permission_assignments=[
            ("eng-read", "repo.read"), ("eng-write", "repo.read"),
            ("eng-write", "repo.write"), ("eng-write", "ci.run"),
            ("legacy-eng", "repo.read"), ("dormant", "vault.admin"),
        ],
    )


#: Three days of IAM churn, batched the way a sync pipeline would send it.
MUTATION_BATCHES = [
    # Day 1: two hires land in engineering.
    [
        {"op": "add_user", "id": "eng6"},
        {"op": "add_user", "id": "eng7"},
        {"op": "assign_user", "role": "eng-read", "user": "eng6"},
        {"op": "assign_user", "role": "eng-read", "user": "eng7"},
    ],
    # Day 2: someone clones eng-write instead of reusing it.
    [
        {"op": "add_role", "id": "eng-write-copy"},
        {"op": "assign_user", "role": "eng-write-copy", "user": "eng0"},
        {"op": "assign_user", "role": "eng-write-copy", "user": "eng1"},
        {"op": "assign_user", "role": "eng-write-copy", "user": "eng2"},
        {"op": "assign_permission", "role": "eng-write-copy", "permission": "repo.read"},
        {"op": "assign_permission", "role": "eng-write-copy", "permission": "repo.write"},
        {"op": "assign_permission", "role": "eng-write-copy", "permission": "ci.run"},
    ],
    # Day 3: offboarding empties legacy-eng.
    [
        {"op": "revoke_user", "role": "legacy-eng", "user": "eng3"},
        {"op": "remove_user", "id": "eng3"},
    ],
]


def main() -> None:
    service = AnalysisService(
        seed_state(),
        ServiceConfig(
            # Refresh the full report after every couple of mutations so
            # this demo publishes diffs promptly; production deployments
            # use a larger trigger (the CLI default is 256).
            refresh_mutations=2,
            analysis=AnalysisConfig(similarity_threshold=1),
        ),
    )
    server = ServiceServer(service, port=0)
    server.start()
    base = server.url
    print(f"service listening on {base}\n")

    health = call(f"{base}/healthz")
    print(f"dataset: {health['dataset']}")

    for day, batch in enumerate(MUTATION_BATCHES, start=1):
        applied = call(
            f"{base}/v1/mutations", "POST", {"mutations": batch}
        )
        counts = call(f"{base}/v1/counts")["counts"]
        interesting = {k: v for k, v in counts.items() if v}
        print(f"day {day}: applied {applied['applied']} mutations "
              f"(seq {applied['mutation_seq']}) -> live counts {interesting}")

    # A full report: the first request computes, the repeat is served
    # from the fingerprint-keyed cache.
    first = call(f"{base}/v1/analyze", "POST", {})
    again = call(f"{base}/v1/analyze", "POST", {})
    print(f"\nfull report: {len(first['report']['findings'])} findings "
          f"(cache: {first['cache']} then {again['cache']})")

    # The background scheduler republishes after every refresh_mutations
    # mutations; wait for it to catch up with the stream, then show the
    # reviewer-facing diff.
    deadline = time.monotonic() + 30
    latest = call(f"{base}/v1/reports/latest")
    while (
        latest["mutation_seq"] < applied["mutation_seq"]
        and time.monotonic() < deadline
    ):
        time.sleep(0.1)
        latest = call(f"{base}/v1/reports/latest")
    print(f"\nscheduler report seq {latest['seq']} "
          f"(state seq {latest['mutation_seq']}):")
    diff = latest["diff"]
    if diff is not None:
        print(f"  new:        {len(diff['new'])} findings")
        print(f"  resolved:   {len(diff['resolved'])} findings")
        print(f"  persisting: {diff['persisting']} findings")

    metrics = call(f"{base}/metricz")
    print(f"\nservice counters: "
          f"{json.dumps(metrics['counters'], indent=2, sort_keys=True)}")

    server.stop()
    print("\ndrained cleanly")


if __name__ == "__main__":
    main()
