"""Quickstart: build the paper's Figure 1 example and analyse it.

Reconstructs the worked example from the paper — four users, five roles,
six permissions — runs the full five-type inefficiency analysis, and
prints the findings.  Every inefficiency the paper marks in Figure 1 is
detected:

* P01 is a standalone permission;
* R02 has users but no permissions, R03 has permissions but no users;
* R01 and R05 each have a single user;
* R02/R04 share the same users, R04/R05 the same permissions.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RbacState, analyze


def build_figure_1_example() -> RbacState:
    """The tripartite graph of Figure 1."""
    return RbacState.build(
        users=["U01", "U02", "U03", "U04"],
        roles=["R01", "R02", "R03", "R04", "R05"],
        permissions=["P01", "P02", "P03", "P04", "P05", "P06"],
        user_assignments=[
            ("R01", "U01"),
            ("R02", "U02"),
            ("R02", "U03"),
            ("R04", "U02"),
            ("R04", "U03"),
            ("R05", "U04"),
        ],
        permission_assignments=[
            ("R01", "P02"),
            ("R01", "P03"),
            ("R03", "P03"),
            ("R03", "P04"),
            ("R04", "P05"),
            ("R04", "P06"),
            ("R05", "P05"),
            ("R05", "P06"),
        ],
    )


def main() -> None:
    state = build_figure_1_example()
    print(f"built the Figure 1 example: {state}\n")

    report = analyze(state)
    print(report.to_text(max_findings=15))

    print("\nper-detector timings:")
    for detector, seconds in report.timings.items():
        print(f"  {detector:<26} {seconds * 1000:8.2f} ms")


if __name__ == "__main__":
    main()
