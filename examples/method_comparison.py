"""Method comparison: miniature versions of the paper's Figures 2 and 3.

Runs the three group-finding approaches — exact clustering (DBSCAN),
approximate clustering (HNSW), and the custom co-occurrence algorithm —
over the paper's synthetic workload (cluster proportion 0.2, at most 10
identical roles per cluster, 5 repetitions per point) and prints both
duration series.  Sizes default to 1/10 of the paper's 1,000-10,000
sweep so the script finishes in about a minute; pass ``--scale 1.0`` to
reproduce the full figures (hours: the baselines are pure Python).

Run with::

    python examples/method_comparison.py [--scale 0.1]
"""

from __future__ import annotations

import argparse

from repro.benchharness import (
    render_series_table,
    run_roles_sweep,
    run_users_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--skip-hnsw",
        action="store_true",
        help="skip the slow pure-Python approximate baseline",
    )
    args = parser.parse_args()

    sizes = sorted(
        {max(50, int(round(n * args.scale))) for n in range(1000, 10001, 3000)}
    )
    fixed = max(50, int(round(1000 * args.scale)))
    methods = (
        ("dbscan", "cooccurrence")
        if args.skip_hnsw
        else ("dbscan", "hnsw", "cooccurrence")
    )

    print("=== Figure 2 (duration vs users) ===")
    fig2 = run_users_sweep(
        sizes, n_roles=fixed, methods=methods, repeats=args.repeats
    )
    print(render_series_table(fig2))

    print("\n=== Figure 3 (duration vs roles) ===")
    fig3 = run_roles_sweep(
        sizes, n_users=fixed, methods=methods, repeats=args.repeats
    )
    print(render_series_table(fig3))

    custom = fig3.series("cooccurrence")[-1].stats.mean
    exact = fig3.series("dbscan")[-1].stats.mean
    print(
        f"\nat {fig3.series('dbscan')[-1].x} roles the custom algorithm is "
        f"{exact / max(custom, 1e-9):.0f}x faster than exact clustering"
    )


if __name__ == "__main__":
    main()
