"""Continuous monitoring: incremental detection between periodic audits.

The paper's framework runs as a periodic batch job.  Between runs, IAM
systems keep mutating — and each mutation touches exactly one role's
row, so inefficiency state can be kept current *incrementally*.  This
example simulates a quarter of IAM churn against an
:class:`~repro.core.incremental.IncrementalAuditor`:

* every mutation updates the duplicate buckets and similarity graph in
  time proportional to the change;
* at "quarter end" the incremental counts are cross-checked against a
  full batch analysis (they always agree — the test suite proves it);
* the two batch reports are diffed to produce the reviewer's delta.

Run with::

    python examples/continuous_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import analyze
from repro.core import Axis, IncrementalAuditor, diff_reports
from repro.datagen import DepartmentProfile, generate_departmental_org


def main() -> None:
    state = generate_departmental_org(DepartmentProfile(seed=21))
    print(f"initial organisation: {state}")

    opening_report = analyze(state)
    auditor = IncrementalAuditor(state)
    assert auditor.counts() == opening_report.counts()
    print(f"opening duplicate roles (users axis): "
          f"{auditor.counts()['roles_same_users']}")

    # --- a quarter of churn -------------------------------------------
    rng = np.random.default_rng(99)
    roles = auditor.state.role_ids()
    users = auditor.state.user_ids()
    events = 0

    # new joiners get existing roles
    for i in range(25):
        user_id = f"joiner-{i:03d}"
        auditor.add_user(user_id)
        auditor.assign_user(str(rng.choice(roles)), user_id)
        events += 2

    # a team clones a role instead of reusing it (classic drift)
    template = str(rng.choice(roles))
    auditor.add_role("q3-temp-access")
    for user_id in auditor.state.users_of_role(template):
        auditor.assign_user("q3-temp-access", user_id)
        events += 1
    for permission_id in auditor.state.permissions_of_role(template):
        auditor.assign_permission("q3-temp-access", permission_id)
        events += 1
    print(
        f"after cloning {template!r}: it now sits in duplicate groups "
        f"{[g for g in auditor.duplicate_groups(Axis.USERS) if template in g]}"
    )

    # leavers are revoked everywhere
    for user_id in list(users[:10]):
        auditor.remove_user(user_id)
        events += 1

    print(f"processed {events}+ mutation events incrementally")

    # --- quarter-end audit ----------------------------------------------
    closing_counts = auditor.counts()
    closing_report = analyze(auditor.state)
    assert closing_counts == closing_report.counts()
    print("incremental counts match a fresh batch analysis ✔\n")

    delta = diff_reports(opening_report, closing_report)
    print(delta.to_text(max_listed=5))


if __name__ == "__main__":
    main()
