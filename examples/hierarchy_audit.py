"""Hierarchy-aware audit: detection through role inheritance (RBAC1).

The paper analyses flat RBAC; real deployments add inheritance, which
*hides* exactly the inefficiencies the paper hunts — two roles can look
different on paper yet grant identical effective access once
inheritance resolves.  This example:

1. builds a small engineering ladder with inherited permissions;
2. shows that the flat analysis misses a duplicate pair;
3. flattens the hierarchy and re-runs the unchanged detector stack,
   surfacing the hidden duplicate;
4. audits the inheritance DAG itself for redundant and void edges.

Run with::

    python examples/hierarchy_audit.py
"""

from __future__ import annotations

from repro import RbacState, analyze
from repro.hierarchy import RoleHierarchy, analyze_hierarchy, flatten


def build_ladder() -> tuple[RbacState, RoleHierarchy]:
    state = RbacState.build(
        users=["ann", "ben", "cho", "dev"],
        roles=[
            "engineer",
            "senior",
            "principal",
            "legacy-senior",  # minted by another department
        ],
        permissions=[
            "code:read", "code:write", "deploy:staging", "deploy:prod",
        ],
        user_assignments=[
            ("engineer", "ann"),
            ("senior", "ben"),
            ("legacy-senior", "ben"),
            ("principal", "cho"),
            ("engineer", "dev"),
        ],
        permission_assignments=[
            ("engineer", "code:read"),
            ("senior", "code:write"),
            ("principal", "deploy:staging"),
            ("principal", "deploy:prod"),
            # legacy-senior grants directly what 'senior' grants through
            # inheritance — identical effective permissions, different shape
            ("legacy-senior", "code:read"),
            ("legacy-senior", "code:write"),
        ],
    )
    hierarchy = RoleHierarchy(
        [
            ("senior", "engineer"),
            ("principal", "senior"),
            ("principal", "engineer"),  # redundant: implied via senior
        ]
    )
    return state, hierarchy


def main() -> None:
    state, hierarchy = build_ladder()
    print(f"state: {state}")
    print(f"hierarchy: {hierarchy}\n")

    flat_counts = analyze(state).counts()
    print(
        "flat analysis sees "
        f"{flat_counts['roles_same_permissions']} roles sharing permissions "
        "(the duplicate hides behind inheritance)"
    )

    flattened = flatten(state, hierarchy)
    flattened_report = analyze(flattened)
    counts = flattened_report.counts()
    print(
        "after flattening: "
        f"{counts['roles_same_permissions']} roles share permissions —"
    )
    for finding in flattened_report.sorted_findings()[:3]:
        print(f"  [{finding.severity.value:>6}] {finding.message}")

    print("\ninheritance DAG audit:")
    for finding in analyze_hierarchy(state, hierarchy):
        print(f"  [{finding.kind}] {finding.message}")

    # --- the same story at organisation scale, generated ----------------
    from repro.datagen import HierarchicalOrgProfile, generate_hierarchical_org
    from repro.hierarchy import find_redundant_edges, find_void_edges

    org = generate_hierarchical_org(HierarchicalOrgProfile(seed=9))
    print(
        f"\ngenerated hierarchical organisation: {org.state} "
        f"({org.hierarchy.n_edges} inheritance edges)"
    )
    redundant = find_redundant_edges(org.hierarchy)
    void = find_void_edges(org.state, org.hierarchy)
    print(
        f"DAG lint: {len(redundant)} redundant edges "
        f"(planted {len(org.planted_redundant_edges)}), "
        f"{len(void)} void edges"
    )
    flattened_counts = analyze(flatten(org.state, org.hierarchy)).counts()
    flat_counts = analyze(org.state).counts()
    print(
        "hidden duplicates surfaced by flattening: "
        f"{flattened_counts['roles_same_permissions']} roles "
        f"(flat analysis saw {flat_counts['roles_same_permissions']})"
    )


if __name__ == "__main__":
    main()
