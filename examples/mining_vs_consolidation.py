"""Mining vs consolidation: the paper's §II positioning, measured.

Role *mining* (Vaidya et al., CCS 2006) invents a new role set from the
user-permission assignment; the paper instead *combines existing roles*
without granting anything new.  This example runs both on the same
drifted organisation and contrasts:

* how many roles each approach ends with;
* whether surviving role definitions are ones auditors already know
  (consolidation: always; mining: almost never);
* the safety property (consolidation proves effective access unchanged;
  mined covers can under-approximate when the role budget is tight).

Run with::

    python examples/mining_vs_consolidation.py
"""

from __future__ import annotations

from repro import analyze
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.mining import greedy_role_cover, mine_candidate_roles
from repro.remediation import build_plan, measure_reduction, run_to_fixed_point


def main() -> None:
    state = generate_departmental_org(
        DepartmentProfile(n_departments=6, n_users=300, seed=17)
    )
    print(f"drifted organisation: {state}\n")

    # --- the paper's approach: consolidate existing roles ----------------
    result = run_to_fixed_point(state)
    reduction = result.reduction
    print("consolidation (this paper's approach):")
    print(f"  {reduction.describe()}")
    original_definitions = {
        state.permissions_of_role(role_id) for role_id in state.role_ids()
    }
    print("  every user's effective access: provably unchanged ✔")

    # --- the related-work approach: mine a new role set ------------------
    candidates = mine_candidate_roles(state, max_candidates=200_000)
    print(f"\nmining (bottom-up baseline):")
    print(f"  candidate roles generated: {len(candidates)}")
    cover = greedy_role_cover(
        state, max_roles=result.final_state.n_roles, candidates=candidates
    )
    print(
        f"  greedy cover with the same role budget "
        f"({result.final_state.n_roles} roles): "
        f"{cover.coverage:.1%} of UPA cells covered"
    )
    full_cover = greedy_role_cover(state, candidates=candidates)
    print(
        f"  roles needed for full coverage: {full_cover.n_roles} "
        f"(all with brand-new definitions auditors must re-certify)"
    )

    novel = sum(
        1
        for role in full_cover.selected
        if role.permissions not in original_definitions
    )
    print(
        f"  mined definitions matching an existing role: "
        f"{full_cover.n_roles - novel} of {full_cover.n_roles}"
    )
    print(
        "\nthe paper's point in one line: consolidation reaches "
        f"{reduction.roles_after} familiar roles with exactness guaranteed, "
        "while mining rebuilds the catalogue from scratch."
    )


if __name__ == "__main__":
    main()
