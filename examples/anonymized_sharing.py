"""Anonymised dataset sharing — the workflow behind the paper's §IV-B.

The paper cannot publish its real dataset; it reports anonymised,
order-of-magnitude aggregates instead.  This example shows the same
workflow with the library: pseudonymise a dataset with a keyed HMAC
(structure preserved exactly, identities unlinkable without the key),
export it to JSON, and demonstrate that an external analyst working only
on the shared file reaches the *identical* findings.

Run with::

    python examples/anonymized_sharing.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import analyze
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.io import anonymize, load_json, save_json


def main() -> None:
    # --- inside the organisation -----------------------------------------
    internal = generate_departmental_org(DepartmentProfile(seed=12))
    internal_report = analyze(internal)
    print(f"internal dataset: {internal}")
    print("internal findings:")
    for key, value in internal_report.counts().items():
        print(f"  {key:<28} {value:>6}")

    shared = anonymize(internal, key="rotate-me-quarterly")
    sample = shared.role_ids()[0]
    print(f"\npseudonymised ids look like: {sample!r}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "shared-dataset.json"
        save_json(shared, path, indent=None)
        print(f"exported anonymised dataset ({path.stat().st_size} bytes)")

        # --- at the external analyst -------------------------------------
        received = load_json(path)
        external_report = analyze(received)

    assert external_report.counts() == internal_report.counts()
    print(
        "\nexternal analyst reproduces every count exactly — structure "
        "is fully preserved, identities are not ✔"
    )

    # Same key → same pseudonyms (stable across quarterly exports);
    # different key → unlinkable.
    again = anonymize(internal, key="rotate-me-quarterly")
    rekeyed = anonymize(internal, key="next-quarter")
    assert set(again.role_ids()) == set(shared.role_ids())
    assert set(rekeyed.role_ids()) != set(shared.role_ids())
    print("pseudonyms are stable per key and unlinkable across keys ✔")


if __name__ == "__main__":
    main()
