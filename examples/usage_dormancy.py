"""Usage-driven dormancy: least-privilege signals from access logs.

The paper's related work (D'Antoni et al.) refines policies from access
logs rather than regenerating them.  This example joins the Role Diet
structural analysis with a (synthetic) access log:

1. generate a department-shaped organisation and a 90-day access log
   where a third of granted access is never exercised;
2. find dormant memberships, never-exercised grants, and fully dormant
   roles;
3. cross-reference with the structural findings: a role that is BOTH
   structurally redundant and observed-dormant is the safest possible
   cleanup candidate.

Run with::

    python examples/usage_dormancy.py
"""

from __future__ import annotations

from repro import analyze
from repro.core import InefficiencyType
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.usage import UsageAnalysis, generate_access_log


def main() -> None:
    state = generate_departmental_org(DepartmentProfile(seed=31))
    print(f"organisation: {state}")

    # One department was decommissioned mid-quarter: its people moved on
    # but their roles were never cleaned up — the classic source of the
    # paper's "decommissioned assets" findings, seen through logs.
    decommissioned = {
        user_id
        for user_id in state.user_ids()
        if state.get_user(user_id).attributes.get("department") == "dept-05"
    }
    raw_log = generate_access_log(
        state, exercise_rate=0.66, duration=90 * 86_400.0, seed=31
    )
    from repro.usage import AccessLog

    log = AccessLog(
        event for event in raw_log if event.user_id not in decommissioned
    )
    print(
        f"observed {len(log)} access events over 90 days "
        f"({len(raw_log) - len(log)} events removed with the "
        f"decommissioned department)\n"
    )

    usage = UsageAnalysis(state, log)
    print(usage.to_text(max_listed=5))

    # --- cross-reference with structural findings ----------------------
    report = analyze(state)
    duplicate_roles = {
        role_id
        for finding in report.of_type(InefficiencyType.DUPLICATE_ROLES)
        for role_id in finding.entity_ids
    }
    dormant = set(usage.dormant_roles)
    both = sorted(duplicate_roles & dormant)

    print("\ncross-reference:")
    print(f"  structurally duplicate roles: {len(duplicate_roles)}")
    print(f"  observed-dormant roles:       {len(dormant)}")
    print(f"  both (safest cleanup first):  {len(both)}")
    for role_id in both[:5]:
        print(f"    - {role_id}")

    # memberships that are dormant *and* whose role is a duplicate are
    # the least controversial revocations an administrator can make
    easy_wins = [
        (role_id, user_id)
        for role_id, user_id in usage.dormant_memberships
        if role_id in duplicate_roles
    ]
    print(
        f"\n{len(easy_wins)} dormant memberships sit on duplicate roles — "
        "review queue sorted."
    )


if __name__ == "__main__":
    main()
