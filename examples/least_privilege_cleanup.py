"""Least-privilege cleanup: the paper's §IV-B future work, implemented.

The paper reports 21,000 single-permission roles in its real dataset and
notes that "the approach for consolidating roles related to [that]
inefficiency still needs to be developed."  The shadowed-role extension
(`InefficiencyType.SHADOWED_ROLE`) is the provably-safe core of such an
approach: a role whose users AND permissions are both subsets of another
role's can be deleted without changing anyone's effective access.

This example builds an organisation where teams minted narrow one-off
roles alongside their broader team roles (the classic source of
single-permission bloat), detects the shadowed ones, applies the
cleanup, and proves the safety property explicitly.

Run with::

    python examples/least_privilege_cleanup.py
"""

from __future__ import annotations

import numpy as np

from repro import RbacState, analyze
from repro.core import AnalysisConfig, InefficiencyType
from repro.remediation import build_plan, run_to_fixed_point


def build_bloated_org(seed: int = 5) -> RbacState:
    """Teams with broad roles plus narrow one-off roles inside them."""
    rng = np.random.default_rng(seed)
    state = RbacState()
    for i in range(120):
        state.add_user(f"user-{i:03d}")
    for i in range(60):
        state.add_permission(f"perm-{i:03d}")

    for team in range(6):
        members = [f"user-{i:03d}" for i in range(team * 20, team * 20 + 20)]
        grants = [f"perm-{i:03d}" for i in range(team * 10, team * 10 + 10)]
        team_role = f"team-{team}"
        state.add_role(team_role)
        for user_id in members:
            state.assign_user(team_role, user_id)
        for permission_id in grants:
            state.assign_permission(team_role, permission_id)

        # narrow one-off roles: a few team members, one team permission —
        # fully shadowed by the team role.
        for one_off in range(3):
            role_id = f"team-{team}-oneoff-{one_off}"
            state.add_role(role_id)
            for user_id in rng.choice(members, size=3, replace=False):
                state.assign_user(role_id, str(user_id))
            state.assign_permission(role_id, str(rng.choice(grants)))
    return state


def main() -> None:
    state = build_bloated_org()
    print(f"organisation with one-off role bloat: {state}\n")

    config = AnalysisConfig.with_extensions()
    report = analyze(state, config)
    shadowed = report.of_type(InefficiencyType.SHADOWED_ROLE)
    single_permission = report.counts()["single_permission_roles"]
    print(f"single-permission roles:   {single_permission}")
    print(f"shadowed roles detected:   {len(shadowed)}")
    for finding in shadowed[:4]:
        print(f"  {finding.message}")
    print("  …\n")

    plan = build_plan(report)
    print(f"plan: {len(plan.actions)} actions "
          f"({plan.n_role_removals} role removals)")

    result = run_to_fixed_point(state, config=config)
    print(result.describe())

    # the safety property, spelled out
    for user_id in result.final_state.user_ids():
        assert result.final_state.effective_permissions(
            user_id
        ) == state.effective_permissions(user_id)
    print("\nno user gained or lost a single permission ✔")

    after = analyze(result.final_state, config)
    print(
        "single-permission roles after cleanup: "
        f"{after.counts()['single_permission_roles']}"
    )


if __name__ == "__main__":
    main()
