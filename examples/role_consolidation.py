"""Role consolidation: detect → plan → review → apply → verify.

The paper insists inefficiencies "must not be fixed automatically"; this
example shows the intended administrator loop on a department-shaped
organisation with organic role drift:

1. analyse the dataset;
2. build a remediation plan (actions + review suggestions);
3. *review* the plan — here we drop one action, standing in for an
   administrator rejecting a merge;
4. apply the rest, with the built-in safety proof that no user's
   effective permissions changed;
5. re-analyse and iterate until a fixed point (the paper's "run
   periodically, results converge" story).

Run with::

    python examples/role_consolidation.py
"""

from __future__ import annotations

from repro import analyze
from repro.datagen import DepartmentProfile, generate_departmental_org
from repro.remediation import apply_plan, build_plan, measure_reduction


def main() -> None:
    state = generate_departmental_org(DepartmentProfile(seed=7))
    print(f"generated drifting organisation: {state}\n")

    original = state
    for round_number in range(1, 10):
        report = analyze(state)
        plan = build_plan(report)
        if not plan.actions:
            print(f"round {round_number}: nothing actionable left — done")
            break

        print(
            f"round {round_number}: {len(plan.actions)} proposed actions, "
            f"{len(plan.suggestions)} suggestions for manual review"
        )
        for action in plan.actions[:5]:
            print(f"    {action.describe()}")
        if len(plan.actions) > 5:
            print(f"    … and {len(plan.actions) - 5} more")

        if round_number == 1 and plan.actions:
            # The administrator rejects the first action of round 1.
            rejected = plan.actions[0]
            plan = plan.without(0)
            print(f"  administrator rejected: {rejected.describe()}")

        # apply_plan validates that effective permissions are unchanged
        # and raises SafetyViolationError otherwise.
        state = apply_plan(state, plan)
        print(f"  applied — now {state.n_roles} roles\n")

    metrics = measure_reduction(original, state)
    print(f"\ntotal reduction: {metrics.describe()}")

    # The safety invariant, spelled out:
    for user_id in state.user_ids():
        before = original.effective_permissions(user_id)
        after = state.effective_permissions(user_id)
        assert after == before, f"effective access changed for {user_id}"
    print("verified: no surviving user gained or lost any permission ✔")


if __name__ == "__main__":
    main()
