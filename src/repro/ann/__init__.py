"""From-scratch approximate-nearest-neighbour substrate.

The paper's *approximate clustering* baseline builds a Hierarchical
Navigable Small World (HNSW) index (Malkov & Yashunin, 2018) over the role
vectors — via the ``datasketch`` library — and queries it once per role.
``datasketch`` is not installable offline, so :mod:`repro.ann.hnsw`
implements the published algorithm directly:

* multi-layer proximity graph with geometric level sampling;
* greedy descent through upper layers, ef-bounded best-first ("beam")
  search at the target layer;
* Algorithm-4 neighbour selection heuristic with bidirectional linking and
  degree pruning on insert.

The implementation preserves the performance *shape* the paper measures:
a large index-construction constant, amortised by fast queries as the
number of points grows, with recall that may be below 1.
"""

from repro.ann.hnsw import HNSWIndex

__all__ = ["HNSWIndex"]
