"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2018).

A pure-Python/numpy implementation of the HNSW approximate nearest
neighbour index.  The structure is a stack of proximity graphs: every point
lives on layer 0; each point additionally appears on higher layers with
geometrically decaying probability.  Search descends greedily from the top
layer entry point, then runs an ``ef``-bounded best-first search on layer 0.

Algorithm numbers in comments refer to the paper:

* Algorithm 1 — ``add`` (insert)
* Algorithm 2 — ``_search_layer`` (ef-bounded layer search)
* Algorithm 4 — ``_select_neighbors_heuristic``
* Algorithm 5 — ``search`` (k-NN query)
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Sequence

import numpy as np
import numpy.typing as npt

from repro.cluster.distances import DistanceFn, resolve_metric
from repro.exceptions import ConfigurationError


class HNSWIndex:
    """An HNSW approximate nearest-neighbour index.

    Parameters
    ----------
    dim:
        Dimensionality of indexed vectors.
    metric:
        Metric name (see :data:`repro.cluster.distances.METRICS`) or a
        callable ``f(block, query) -> distances``.
    m:
        Target out-degree on layers above 0 (the paper's ``M``).  Layer 0
        allows ``2 * m`` links, as recommended.
    ef_construction:
        Beam width used while inserting points.
    seed:
        Seed for the level-sampling RNG; fixing it makes index construction
        deterministic.
    """

    def __init__(
        self,
        dim: int,
        metric: str | DistanceFn = "manhattan",
        m: int = 16,
        ef_construction: int = 200,
        seed: int | None = 0,
    ) -> None:
        if dim <= 0:
            raise ConfigurationError(f"dim must be positive, got {dim}")
        if m < 2:
            raise ConfigurationError(f"m must be >= 2, got {m}")
        if ef_construction < 1:
            raise ConfigurationError(
                f"ef_construction must be >= 1, got {ef_construction}"
            )
        self.dim = int(dim)
        self.m = int(m)
        self.m_max0 = 2 * self.m
        self.ef_construction = int(ef_construction)
        self._metric = resolve_metric(metric)
        self._level_mult = 1.0 / math.log(self.m)
        self._rng = random.Random(seed)

        self._vectors: list[npt.NDArray[np.float64]] = []
        # _links[level][node] -> list of neighbour ids; one dict per level.
        self._links: list[dict[int, list[int]]] = []
        self._node_level: list[int] = []
        self._entry_point: int | None = None

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def max_level(self) -> int:
        """Highest layer currently in use (-1 when empty)."""
        return len(self._links) - 1

    # ------------------------------------------------------------------
    # Distance helpers
    # ------------------------------------------------------------------
    def _distance(self, query: npt.NDArray[np.float64], node: int) -> float:
        block = self._vectors[node][None, :]
        return float(self._metric(block, query)[0])

    def _distances(
        self, query: npt.NDArray[np.float64], nodes: Sequence[int]
    ) -> npt.NDArray[np.float64]:
        block = np.stack([self._vectors[node] for node in nodes])
        return self._metric(block, query)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, vector: npt.ArrayLike) -> int:
        """Insert a vector; returns its integer id (Algorithm 1)."""
        point = np.asarray(vector, dtype=np.float64).ravel()
        if point.shape != (self.dim,):
            raise ConfigurationError(
                f"expected vector of dim {self.dim}, got shape {point.shape}"
            )
        node = len(self._vectors)
        self._vectors.append(point)
        level = self._sample_level()
        self._node_level.append(level)
        while len(self._links) <= level:
            self._links.append({})
        for layer in range(level + 1):
            self._links[layer][node] = []

        if self._entry_point is None:
            self._entry_point = node
            return node

        entry = self._entry_point
        entry_level = self._node_level[entry]

        # Phase 1: greedy descent through layers above the insertion level.
        current = entry
        for layer in range(entry_level, level, -1):
            current = self._greedy_closest(point, current, layer)

        # Phase 2: ef-bounded search + linking on each layer <= level.
        for layer in range(min(level, entry_level), -1, -1):
            candidates = self._search_layer(
                point, [current], self.ef_construction, layer
            )
            m_max = self.m_max0 if layer == 0 else self.m
            neighbors = self._select_neighbors_heuristic(
                point, candidates, self.m
            )
            self._links[layer][node] = list(neighbors)
            for neighbor in neighbors:
                self._link(neighbor, node, layer, m_max)
            if candidates:
                current = min(candidates, key=lambda pair: pair[0])[1]

        if level > entry_level:
            self._entry_point = node
        return node

    def add_items(self, data: npt.ArrayLike) -> list[int]:
        """Insert every row of a 2-D array; returns the assigned ids."""
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"expected 2-D data, got ndim={matrix.ndim}"
            )
        return [self.add(row) for row in matrix]

    def _sample_level(self) -> int:
        # Geometric level distribution: floor(-ln(U) * mult).
        uniform = self._rng.random()
        while uniform <= 0.0:  # pragma: no cover - astronomically unlikely
            uniform = self._rng.random()
        return int(-math.log(uniform) * self._level_mult)

    def _link(self, node: int, new_neighbor: int, layer: int, m_max: int) -> None:
        """Add a back-link and prune the node's degree to ``m_max``."""
        links = self._links[layer][node]
        links.append(new_neighbor)
        if len(links) <= m_max:
            return
        point = self._vectors[node]
        distances = self._distances(point, links)
        pairs = sorted(zip(distances.tolist(), links))
        kept = self._select_neighbors_heuristic(point, pairs, m_max)
        self._links[layer][node] = list(kept)

    def _select_neighbors_heuristic(
        self,
        point: npt.NDArray[np.float64],
        candidates: list[tuple[float, int]],
        count: int,
    ) -> list[int]:
        """Algorithm 4: pick diverse close neighbours.

        A candidate is kept only if it is closer to the query point than to
        any already-kept neighbour; this spreads links across clusters and
        is what gives HNSW graphs their navigability.  Discarded candidates
        backfill remaining slots by distance.
        """
        ordered = sorted(candidates)
        kept: list[int] = []
        discarded: list[int] = []
        for distance, candidate in ordered:
            if len(kept) >= count:
                break
            if not kept:
                kept.append(candidate)
                continue
            to_kept = self._distances(self._vectors[candidate], kept)
            if distance <= float(to_kept.min()):
                kept.append(candidate)
            else:
                discarded.append(candidate)
        for candidate in discarded:
            if len(kept) >= count:
                break
            kept.append(candidate)
        return kept

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _greedy_closest(
        self, query: npt.NDArray[np.float64], start: int, layer: int
    ) -> int:
        """Greedy walk on one layer to a local minimum of distance."""
        current = start
        current_distance = self._distance(query, current)
        improved = True
        while improved:
            improved = False
            neighbors = self._links[layer].get(current, [])
            if not neighbors:
                break
            distances = self._distances(query, neighbors)
            best = int(np.argmin(distances))
            if distances[best] < current_distance:
                current = neighbors[best]
                current_distance = float(distances[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: npt.NDArray[np.float64],
        entry_points: Sequence[int],
        ef: int,
        layer: int,
    ) -> list[tuple[float, int]]:
        """Algorithm 2: best-first search with a beam of size ``ef``.

        Returns up to ``ef`` (distance, node) pairs, unsorted.
        """
        visited = set(entry_points)
        candidates: list[tuple[float, int]] = []  # min-heap by distance
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        for entry in entry_points:
            distance = self._distance(query, entry)
            heapq.heappush(candidates, (distance, entry))
            heapq.heappush(results, (-distance, entry))

        while candidates:
            distance, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if distance > worst and len(results) >= ef:
                break
            neighbors = [
                n for n in self._links[layer].get(node, []) if n not in visited
            ]
            if not neighbors:
                continue
            visited.update(neighbors)
            neighbor_distances = self._distances(query, neighbors)
            for neighbor_distance, neighbor in zip(
                neighbor_distances.tolist(), neighbors
            ):
                worst = -results[0][0]
                if len(results) < ef or neighbor_distance < worst:
                    heapq.heappush(candidates, (neighbor_distance, neighbor))
                    heapq.heappush(results, (-neighbor_distance, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)

        return [(-negated, node) for negated, node in results]

    def search(
        self, vector: npt.ArrayLike, k: int = 10, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """Algorithm 5: return up to ``k`` (node_id, distance) pairs.

        ``ef`` defaults to ``max(ef_construction, k)``; larger values trade
        speed for recall.
        """
        if self._entry_point is None:
            return []
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        query = np.asarray(vector, dtype=np.float64).ravel()
        if query.shape != (self.dim,):
            raise ConfigurationError(
                f"expected vector of dim {self.dim}, got shape {query.shape}"
            )
        beam_width = max(ef if ef is not None else self.ef_construction, k)

        current = self._entry_point
        for layer in range(self._node_level[current], 0, -1):
            current = self._greedy_closest(query, current, layer)
        found = self._search_layer(query, [current], beam_width, 0)
        found.sort()
        return [(node, distance) for distance, node in found[:k]]

    def radius_search(
        self, vector: npt.ArrayLike, radius: float, ef: int | None = None
    ) -> list[tuple[int, float]]:
        """All indexed points within ``radius`` of ``vector`` (approximate).

        Implemented as a k-NN query with ``k = ef`` followed by a distance
        filter, matching how the paper's baseline uses the index to collect
        same/similar roles.  Points may be missed if the beam is too small.
        """
        beam_width = ef if ef is not None else self.ef_construction
        hits = self.search(vector, k=beam_width, ef=beam_width)
        return [(node, distance) for node, distance in hits if distance <= radius]
