"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ValidationError(ReproError):
    """An entity, state, or matrix failed an internal consistency check."""


class UnknownEntityError(ReproError, KeyError):
    """An operation referenced a user, role, or permission that is absent."""

    def __init__(self, kind: str, identifier: str) -> None:
        self.kind = kind
        self.identifier = identifier
        super().__init__(f"unknown {kind}: {identifier!r}")


class DuplicateEntityError(ReproError):
    """An entity with the same identifier was added twice."""

    def __init__(self, kind: str, identifier: str) -> None:
        self.kind = kind
        self.identifier = identifier
        super().__init__(f"duplicate {kind}: {identifier!r}")


class ConfigurationError(ReproError):
    """Invalid parameters were passed to an algorithm or generator."""


class DataFormatError(ReproError):
    """A dataset file could not be parsed into an RBAC state."""


class RemediationError(ReproError):
    """A remediation plan is invalid or cannot be applied safely."""


class SafetyViolationError(RemediationError):
    """Applying a plan would change the effective permissions of a user.

    The remediation subsystem guarantees that consolidating roles never
    grants a user a permission they did not already have (and never takes
    one away).  This error signals that a proposed plan breaks that
    invariant and therefore must not be applied.
    """
