"""Role hierarchies (RBAC1) — detection through inheritance.

The paper analyses flat RBAC (RBAC0): roles relate to users and
permissions only.  Real deployments often add *hierarchy* (RBAC1,
Sandhu et al. 1996): a senior role inherits the permissions of its
juniors, and a user assigned to the senior role transitively acts with
the juniors' permissions.

Hierarchy hides exactly the inefficiencies the paper hunts: two roles
may look different on their direct assignments yet grant identical
effective access once inheritance is resolved.  This package makes the
flat detectors hierarchy-aware by **flattening**:

* :class:`~repro.hierarchy.model.RoleHierarchy` — the inheritance DAG
  (senior → junior edges), with cycle rejection;
* :func:`~repro.hierarchy.model.flatten` — materialise inheritance into
  a plain :class:`~repro.core.state.RbacState` the whole detection stack
  (engine, group finders, remediation planner) runs on unchanged;
* :mod:`~repro.hierarchy.inefficiencies` — hierarchy-specific findings:
  redundant (transitive) inheritance edges and void edges that inherit
  nothing new.
"""

from repro.hierarchy.model import (
    RoleHierarchy,
    flatten,
    load_hierarchy_json,
    save_hierarchy_json,
)
from repro.hierarchy.inefficiencies import (
    HierarchyFinding,
    find_redundant_edges,
    find_void_edges,
    analyze_hierarchy,
)

__all__ = [
    "RoleHierarchy",
    "flatten",
    "load_hierarchy_json",
    "save_hierarchy_json",
    "HierarchyFinding",
    "find_redundant_edges",
    "find_void_edges",
    "analyze_hierarchy",
]
