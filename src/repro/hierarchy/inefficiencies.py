"""Hierarchy-specific inefficiencies.

Two kinds of dead weight accumulate in inheritance DAGs, analogous to
the flat-RBAC rot the paper catalogues:

* **redundant edges** — a direct edge ``senior → junior`` that is also
  implied transitively through another path; removing it changes no
  effective access (it is exactly the transitive-reduction complement);
* **void edges** — a direct edge through which the senior inherits no
  *new* permission: every permission reachable through the junior is
  already granted directly to the senior or through its other juniors.
  The edge is pure maintenance burden.

As everywhere in this library, findings are advisory; nothing is
auto-removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.state import RbacState
from repro.hierarchy.model import RoleHierarchy


@dataclass(frozen=True)
class HierarchyFinding:
    """One advisory finding about the inheritance DAG."""

    kind: str  # "redundant_edge" | "void_edge"
    senior: str
    junior: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "senior": self.senior,
            "junior": self.junior,
            "message": self.message,
        }


def find_redundant_edges(
    hierarchy: RoleHierarchy,
) -> list[HierarchyFinding]:
    """Direct edges also implied transitively (safe to drop).

    An edge ``(s, j)`` is redundant iff ``j`` is still reachable from
    ``s`` after removing that one edge — equivalently, iff it is not in
    the DAG's transitive reduction.
    """
    findings = []
    for senior, junior in hierarchy.edges():
        for middleman in hierarchy.direct_juniors(senior):
            if middleman != junior and hierarchy.inherits(middleman, junior):
                findings.append(
                    HierarchyFinding(
                        kind="redundant_edge",
                        senior=senior,
                        junior=junior,
                        message=(
                            f"inheritance {senior!r} -> {junior!r} is "
                            f"already implied through {middleman!r}"
                        ),
                    )
                )
                break
    return findings


def find_void_edges(
    state: RbacState, hierarchy: RoleHierarchy
) -> list[HierarchyFinding]:
    """Direct edges that contribute no new permission to the senior."""
    findings = []
    for senior, junior in hierarchy.edges():
        # Permissions the senior would keep without this edge: its own
        # grants plus everything through its other direct juniors.
        kept: set[str] = set(state.permissions_of_role(senior))
        for other in hierarchy.direct_juniors(senior):
            if other == junior:
                continue
            kept.update(state.permissions_of_role(other))
            for transitive in hierarchy.all_juniors(other):
                kept.update(state.permissions_of_role(transitive))

        gained: set[str] = set(state.permissions_of_role(junior))
        for transitive in hierarchy.all_juniors(junior):
            gained.update(state.permissions_of_role(transitive))

        if gained <= kept:
            findings.append(
                HierarchyFinding(
                    kind="void_edge",
                    senior=senior,
                    junior=junior,
                    message=(
                        f"inheritance {senior!r} -> {junior!r} grants "
                        "nothing the senior does not already have"
                    ),
                )
            )
    return findings


def analyze_hierarchy(
    state: RbacState, hierarchy: RoleHierarchy
) -> list[HierarchyFinding]:
    """All hierarchy findings, redundant edges first.

    A redundant edge is reported once even when it is also void (the
    transitive path already explains it).
    """
    redundant = find_redundant_edges(hierarchy)
    redundant_pairs = {(f.senior, f.junior) for f in redundant}
    void = [
        f
        for f in find_void_edges(state, hierarchy)
        if (f.senior, f.junior) not in redundant_pairs
    ]
    return redundant + void
