"""The role-inheritance DAG and state flattening.

Semantics follow RBAC96 (Sandhu et al., 1996): for an edge
``senior → junior``,

* the senior role *inherits permissions*: its effective permission set
  is its own grants plus every (transitive) junior's grants;
* user membership flows the other way: a user assigned to the senior
  role is effectively a member of every (transitive) junior role.

``flatten`` materialises both closures into an ordinary
:class:`~repro.core.state.RbacState`, so the entire flat-RBAC toolchain
(detectors, group finders, remediation, statistics) applies unchanged —
detection "sees through" the hierarchy.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.state import RbacState
from repro.exceptions import UnknownEntityError, ValidationError


class RoleHierarchy:
    """An acyclic senior → junior inheritance relation over role ids.

    The hierarchy is independent of any particular state; bind it to one
    with :func:`flatten` (which validates that every referenced role
    exists there).  Adding an edge that would create a cycle raises
    :class:`ValidationError` immediately — a cyclic "hierarchy" would
    make every member role grant the union of the cycle, which is never
    intended.
    """

    def __init__(
        self, edges: Iterable[tuple[str, str]] = ()
    ) -> None:
        self._juniors: dict[str, set[str]] = {}
        self._seniors: dict[str, set[str]] = {}
        for senior, junior in edges:
            self.add_inheritance(senior, junior)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_inheritance(self, senior: str, junior: str) -> None:
        """Declare that ``senior`` inherits from ``junior``.

        Raises :class:`ValidationError` on self-loops or cycles.
        """
        if senior == junior:
            raise ValidationError(f"role {senior!r} cannot inherit itself")
        if self.inherits(junior, senior):
            raise ValidationError(
                f"edge {senior!r} -> {junior!r} would create a cycle"
            )
        self._juniors.setdefault(senior, set()).add(junior)
        self._seniors.setdefault(junior, set()).add(senior)

    def remove_inheritance(self, senior: str, junior: str) -> None:
        """Remove a direct edge (no-op if absent)."""
        self._juniors.get(senior, set()).discard(junior)
        self._seniors.get(junior, set()).discard(senior)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return sum(len(juniors) for juniors in self._juniors.values())

    def edges(self) -> Iterator[tuple[str, str]]:
        """All direct (senior, junior) edges, deterministic order."""
        for senior in sorted(self._juniors):
            for junior in sorted(self._juniors[senior]):
                yield (senior, junior)

    def roles(self) -> set[str]:
        """Every role id mentioned by at least one edge."""
        mentioned = set(self._juniors) | set(self._seniors)
        return mentioned

    def direct_juniors(self, role_id: str) -> frozenset[str]:
        return frozenset(self._juniors.get(role_id, set()))

    def direct_seniors(self, role_id: str) -> frozenset[str]:
        return frozenset(self._seniors.get(role_id, set()))

    def all_juniors(self, role_id: str) -> frozenset[str]:
        """Transitive juniors of ``role_id`` (excluding itself)."""
        return self._closure(role_id, self._juniors)

    def all_seniors(self, role_id: str) -> frozenset[str]:
        """Transitive seniors of ``role_id`` (excluding itself)."""
        return self._closure(role_id, self._seniors)

    def inherits(self, senior: str, junior: str) -> bool:
        """Whether ``senior`` (transitively) inherits from ``junior``."""
        return junior in self.all_juniors(senior) or senior == junior

    @staticmethod
    def _closure(
        start: str, adjacency: dict[str, set[str]]
    ) -> frozenset[str]:
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return frozenset(seen)

    def to_networkx(self):
        """The inheritance DAG as a ``networkx.DiGraph`` (senior→junior)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.roles())
        graph.add_edges_from(self.edges())
        return graph

    def __repr__(self) -> str:
        return (
            f"RoleHierarchy(roles={len(self.roles())}, "
            f"edges={self.n_edges})"
        )


def save_hierarchy_json(hierarchy: RoleHierarchy, path) -> None:
    """Write a hierarchy as JSON: ``{"edges": [[senior, junior], …]}``."""
    import json
    from pathlib import Path

    document = {"format": "repro-hierarchy", "version": 1,
                "edges": [list(edge) for edge in hierarchy.edges()]}
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_hierarchy_json(path) -> RoleHierarchy:
    """Read a hierarchy written by :func:`save_hierarchy_json`."""
    import json
    from pathlib import Path

    from repro.exceptions import DataFormatError

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise DataFormatError(f"invalid JSON: {error}") from error
    if (
        not isinstance(document, dict)
        or document.get("format") != "repro-hierarchy"
    ):
        raise DataFormatError("not a repro-hierarchy document")
    if document.get("version") != 1:
        raise DataFormatError(
            f"unsupported hierarchy version: {document.get('version')!r}"
        )
    try:
        edges = [
            (str(senior), str(junior))
            for senior, junior in document.get("edges", [])
        ]
        return RoleHierarchy(edges)
    except (TypeError, ValueError) as error:
        raise DataFormatError(f"malformed hierarchy edges: {error}") from error
    except ValidationError as error:
        raise DataFormatError(f"invalid hierarchy: {error}") from error


def flatten(state: RbacState, hierarchy: RoleHierarchy) -> RbacState:
    """Materialise inheritance into a flat state.

    The result has the same entities as ``state``; each role's user set
    additionally contains the users of all its (transitive) seniors, and
    each role's permission set additionally contains the permissions of
    all its (transitive) juniors.  A user's effective permissions in the
    returned state equal their RBAC1 effective permissions in
    ``(state, hierarchy)``.

    Raises :class:`UnknownEntityError` if the hierarchy references a
    role absent from the state.
    """
    for role_id in hierarchy.roles():
        if not state.has_role(role_id):
            raise UnknownEntityError("role", role_id)

    flat = state.copy()
    for role_id in state.role_ids():
        for junior in hierarchy.all_juniors(role_id):
            for permission_id in state.permissions_of_role(junior):
                flat.assign_permission(role_id, permission_id)
        for senior in hierarchy.all_seniors(role_id):
            for user_id in state.users_of_role(senior):
                flat.assign_user(role_id, user_id)
    return flat
