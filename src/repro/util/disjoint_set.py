"""Disjoint-set (union-find) over dense integer indices.

Used to turn pairwise "same/similar" relations into role groups.  For
exact duplicates the relation is an equivalence, so the components are
the true groups; for the ≤k-similarity relation the components implement
the chaining semantics shared by DBSCAN and the custom algorithm (see
``repro.cluster.dbscan``).
"""

from __future__ import annotations


class DisjointSet:
    """Union-find with path compression and union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint components (singletons included)."""
        return self._n_components

    def find(self, x: int) -> int:
        """Root of ``x``'s component (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they already
        shared a component.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def groups(self, min_size: int = 2) -> list[list[int]]:
        """Components with at least ``min_size`` members.

        Members are sorted ascending; groups ordered by smallest member —
        the canonical ordering shared by all group finders.
        """
        by_root: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            by_root.setdefault(self.find(x), []).append(x)
        result = [
            sorted(members)
            for members in by_root.values()
            if len(members) >= min_size
        ]
        result.sort(key=lambda members: members[0])
        return result
