"""Small shared utilities (disjoint sets, deterministic RNG helpers)."""

from repro.util.disjoint_set import DisjointSet

__all__ = ["DisjointSet"]
