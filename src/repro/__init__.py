"""repro — IAM Role Diet: detection of RBAC data inefficiencies.

A reproduction of *"IAM Role Diet: A Scalable Approach to Detecting RBAC
Data Inefficiencies"* (Moratore, Barbaro, Zhauniarovich — DSN-S 2025).

Quickstart
----------
>>> from repro import RbacState, analyze
>>> state = RbacState.build(
...     users=["u1", "u2"],
...     roles=["r1", "r2"],
...     permissions=["p1"],
...     user_assignments=[("r1", "u1"), ("r2", "u1")],
...     permission_assignments=[("r1", "p1"), ("r2", "p1")],
... )
>>> report = analyze(state)
>>> report.counts()["roles_same_users"]
2

See :mod:`repro.core` for the data model and detectors,
:mod:`repro.datagen` for synthetic datasets, :mod:`repro.remediation` for
consolidation planning, and :mod:`repro.benchharness` for the paper's
experiments.
"""

from repro.core import (
    AnalysisConfig,
    AnalysisEngine,
    AssignmentMatrix,
    Axis,
    Finding,
    InefficiencyType,
    Permission,
    RbacState,
    Report,
    Role,
    RoleGroup,
    Severity,
    User,
    analyze,
)
from repro.exceptions import (
    ConfigurationError,
    DataFormatError,
    DuplicateEntityError,
    RemediationError,
    ReproError,
    SafetyViolationError,
    UnknownEntityError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisEngine",
    "AssignmentMatrix",
    "Axis",
    "ConfigurationError",
    "DataFormatError",
    "DuplicateEntityError",
    "Finding",
    "InefficiencyType",
    "Permission",
    "RbacState",
    "RemediationError",
    "Report",
    "ReproError",
    "Role",
    "RoleGroup",
    "SafetyViolationError",
    "Severity",
    "UnknownEntityError",
    "User",
    "ValidationError",
    "analyze",
    "__version__",
]
