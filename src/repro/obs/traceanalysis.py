"""Offline analysis of JSONL trace files (the ``repro trace`` CLI core).

Loads files written by :class:`repro.obs.JsonlTraceSink` — both schema
v1 (``path``/``depth`` pre-order) and v2 (``span_id``/``parent_id``
links) — back into :class:`~repro.obs.spans.Span` trees and derives:

* :func:`summarize_traces` — per-trace span counts, critical path
  (greedy descent into the child that *ends* last), per-span-name
  aggregates, and the top-N slowest spans;
* :func:`collapsed_stacks` — ``name;child;leaf <self_usec>`` lines in
  the collapsed-stack format consumed by flamegraph.pl and speedscope;
* :func:`diff_traces` — per-span-name (count, total, self) deltas
  between two files, for before/after comparisons.

Self-time is a span's duration minus the sum of its children's
durations, clamped at zero: spans grafted from worker processes keep a
worker-local timebase, so children recorded concurrently can sum to
more than the parent's wall-clock duration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import ReproError
from repro.obs.spans import Span, span_count

__all__ = [
    "TraceAnalysisError",
    "LoadedTrace",
    "load_trace_file",
    "summarize_traces",
    "collapsed_stacks",
    "diff_traces",
    "format_summary",
    "format_diff",
]


class TraceAnalysisError(ReproError):
    """A trace file cannot be loaded for analysis."""


@dataclass
class LoadedTrace:
    """One reconstructed trace: the span tree plus file-level identity."""

    index: int
    trace_id: str
    root: Span
    #: Span lines whose ``parent_id`` did not resolve (schema v2 only).
    #: Non-empty means the file is corrupt or truncated; the loader
    #: keeps going so the rest of the trace is still inspectable.
    orphans: list[int] = field(default_factory=list)

    @property
    def spans(self) -> int:
        return span_count(self.root)

    @property
    def duration(self) -> float:
        return self.root.duration


def _span_from_event(event: dict[str, Any]) -> Span:
    return Span(
        name=event.get("name", "?"),
        start=float(event.get("start_s", 0.0)),
        duration=float(event.get("duration_s", 0.0)),
        attributes=dict(event.get("attributes", {})),
        counters=dict(event.get("counters", {})),
    )


def load_trace_file(path: str | Path) -> list[LoadedTrace]:
    """Reconstruct every trace in a JSONL file into span trees.

    Schema v2 traces are linked by ``parent_id``; v1 traces (no IDs)
    fall back to the pre-order depth stack.  Unresolvable parents are
    collected per trace in :attr:`LoadedTrace.orphans` (the offending
    ``span_id``), and such spans are attached to the root so they stay
    visible.
    """
    traces: list[LoadedTrace] = []
    current: LoadedTrace | None = None
    by_id: dict[int, Span] = {}
    depth_stack: list[Span] = []
    source = Path(path)
    try:
        lines: Iterable[str] = source.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise TraceAnalysisError(f"cannot read {source}: {error}") from error

    for line_no, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError as error:
            raise TraceAnalysisError(
                f"{source}: line {line_no}: not valid JSON ({error.msg})"
            ) from error
        if not isinstance(event, dict):
            raise TraceAnalysisError(
                f"{source}: line {line_no}: event is not a JSON object"
            )
        kind = event.get("event")
        if kind == "trace_start":
            index = int(event.get("trace", len(traces)))
            current = LoadedTrace(
                index=index,
                trace_id=str(event.get("trace_id") or f"trace-{index}"),
                root=Span(name=str(event.get("name", "?"))),
            )
            by_id = {}
            depth_stack = []
        elif kind == "span":
            if current is None:
                raise TraceAnalysisError(
                    f"{source}: line {line_no}: span outside any trace"
                )
            span = _span_from_event(event)
            depth = int(event.get("depth", 0))
            span_id = event.get("span_id")
            parent_id = event.get("parent_id")
            if depth == 0:
                # The root span line *is* the trace root: replace the
                # placeholder created at trace_start.
                span.trace_id = current.trace_id
                current.root = span
                depth_stack = [span]
            elif isinstance(span_id, int) and isinstance(parent_id, int):
                parent = by_id.get(parent_id)
                if parent is None:
                    current.orphans.append(span_id)
                    current.root.children.append(span)
                else:
                    parent.children.append(span)
                del depth_stack[depth:]
                depth_stack.append(span)
            else:
                # Schema v1: pre-order depth stack.
                del depth_stack[depth:]
                if not depth_stack:
                    raise TraceAnalysisError(
                        f"{source}: line {line_no}: depth {depth} has no parent"
                    )
                depth_stack[-1].children.append(span)
                depth_stack.append(span)
            if isinstance(span_id, int):
                by_id[span_id] = span
        elif kind == "trace_end":
            if current is None:
                raise TraceAnalysisError(
                    f"{source}: line {line_no}: trace_end without trace_start"
                )
            traces.append(current)
            current = None
        elif kind is None:
            raise TraceAnalysisError(
                f"{source}: line {line_no}: missing 'event' field"
            )
        # Unknown event kinds are skipped: analysis tolerates forward-
        # compatible additions that validation would flag.

    if current is not None:
        traces.append(current)
    if not traces:
        raise TraceAnalysisError(f"{source}: file contains no traces")
    return traces


# ----------------------------------------------------------------------
# Derived views
# ----------------------------------------------------------------------
def _self_time(span: Span) -> float:
    return max(0.0, span.duration - sum(c.duration for c in span.children))


def _critical_path(root: Span) -> list[dict[str, Any]]:
    """Greedy walk from the root into the child that ends last."""
    path: list[dict[str, Any]] = []
    span = root
    while True:
        path.append(
            {
                "name": span.name,
                "duration_s": span.duration,
                "self_s": _self_time(span),
            }
        )
        if not span.children:
            return path
        span = max(span.children, key=lambda c: (c.start + c.duration, c.start))


def summarize_traces(
    traces: list[LoadedTrace], top: int = 10
) -> dict[str, Any]:
    """Aggregate view of a trace file (see module docstring)."""
    by_name: dict[str, dict[str, Any]] = {}
    slowest: list[dict[str, Any]] = []
    trace_rows: list[dict[str, Any]] = []
    orphan_total = 0
    for trace in traces:
        orphan_total += len(trace.orphans)
        trace_rows.append(
            {
                "trace_id": trace.trace_id,
                "name": trace.root.name,
                "spans": trace.spans,
                "duration_s": trace.duration,
                "orphans": len(trace.orphans),
                "critical_path": _critical_path(trace.root),
            }
        )
        for path, _depth, span in trace.root.walk():
            stats = by_name.setdefault(
                span.name,
                {"name": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0,
                 "max_s": 0.0},
            )
            stats["count"] += 1
            stats["total_s"] += span.duration
            stats["self_s"] += _self_time(span)
            stats["max_s"] = max(stats["max_s"], span.duration)
            slowest.append(
                {
                    "trace_id": trace.trace_id,
                    "path": path,
                    "duration_s": span.duration,
                    "self_s": _self_time(span),
                }
            )
    slowest.sort(key=lambda row: row["duration_s"], reverse=True)
    names = sorted(
        by_name.values(), key=lambda row: row["total_s"], reverse=True
    )
    return {
        "traces": len(traces),
        "spans": sum(t.spans for t in traces),
        "orphan_spans": orphan_total,
        "total_duration_s": sum(t.duration for t in traces),
        "per_trace": trace_rows,
        "by_name": names,
        "slowest": slowest[:top],
    }


def collapsed_stacks(traces: list[LoadedTrace]) -> list[str]:
    """Collapsed-stack lines: ``root;child;leaf <self_time_usec>``.

    The weight is *self* time in integer microseconds, so the flame
    graph's total width equals (approximately) the traces' wall clock
    and every frame's width is the time spent in exactly that frame.
    Zero-weight frames are kept when they have no children (so leaves
    faster than 1µs still appear) and dropped otherwise.
    """
    stacks: dict[str, int] = {}
    for trace in traces:
        for path, _depth, span in trace.root.walk():
            weight = int(round(_self_time(span) * 1e6))
            if weight == 0 and span.children:
                continue
            stack = path.replace("/", ";")
            stacks[stack] = stacks.get(stack, 0) + weight
    return [f"{stack} {weight}" for stack, weight in sorted(stacks.items())]


def diff_traces(
    before: list[LoadedTrace], after: list[LoadedTrace]
) -> list[dict[str, Any]]:
    """Per-span-name deltas between two trace files.

    Rows are sorted by ``|total_delta_s|`` descending so regressions
    surface first; names present on only one side show zeros for the
    other.
    """

    def fold(traces: list[LoadedTrace]) -> dict[str, dict[str, float]]:
        acc: dict[str, dict[str, float]] = {}
        for trace in traces:
            for _path, _depth, span in trace.root.walk():
                row = acc.setdefault(
                    span.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
                )
                row["count"] += 1
                row["total_s"] += span.duration
                row["self_s"] += _self_time(span)
        return acc

    a, b = fold(before), fold(after)
    rows = []
    for name in sorted(set(a) | set(b)):
        left = a.get(name, {"count": 0, "total_s": 0.0, "self_s": 0.0})
        right = b.get(name, {"count": 0, "total_s": 0.0, "self_s": 0.0})
        rows.append(
            {
                "name": name,
                "count_before": int(left["count"]),
                "count_after": int(right["count"]),
                "count_delta": int(right["count"] - left["count"]),
                "total_before_s": left["total_s"],
                "total_after_s": right["total_s"],
                "total_delta_s": right["total_s"] - left["total_s"],
                "self_delta_s": right["self_s"] - left["self_s"],
            }
        )
    rows.sort(key=lambda row: abs(row["total_delta_s"]), reverse=True)
    return rows


# ----------------------------------------------------------------------
# Text rendering (used by the CLI)
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.3f}ms"


def format_summary(summary: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_traces` output."""
    lines = [
        f"traces: {summary['traces']}  spans: {summary['spans']}  "
        f"orphans: {summary['orphan_spans']}  "
        f"total: {_fmt_s(summary['total_duration_s'])}",
        "",
    ]
    for row in summary["per_trace"]:
        lines.append(
            f"trace {row['trace_id']}  {row['name']}  "
            f"spans={row['spans']}  {_fmt_s(row['duration_s'])}"
            + (f"  ORPHANS={row['orphans']}" if row["orphans"] else "")
        )
        crumbs = " > ".join(
            f"{step['name']} {_fmt_s(step['duration_s'])}"
            for step in row["critical_path"]
        )
        lines.append(f"  critical path: {crumbs}")
    lines.append("")
    lines.append(
        f"{'span name':<40} {'count':>7} {'total':>12} {'self':>12} {'max':>12}"
    )
    for row in summary["by_name"]:
        lines.append(
            f"{row['name']:<40} {row['count']:>7} "
            f"{_fmt_s(row['total_s']):>12} {_fmt_s(row['self_s']):>12} "
            f"{_fmt_s(row['max_s']):>12}"
        )
    lines.append("")
    lines.append("slowest spans:")
    for row in summary["slowest"]:
        lines.append(
            f"  {_fmt_s(row['duration_s']):>12}  {row['path']}  "
            f"[{row['trace_id']}]"
        )
    return "\n".join(lines)


def format_diff(rows: list[dict[str, Any]]) -> str:
    """Human-readable rendering of :func:`diff_traces` output."""
    lines = [
        f"{'span name':<40} {'count':>11} {'total before':>13} "
        f"{'total after':>13} {'delta':>12}"
    ]
    for row in rows:
        counts = f"{row['count_before']}→{row['count_after']}"
        delta = row["total_delta_s"]
        sign = "+" if delta >= 0 else "-"
        lines.append(
            f"{row['name']:<40} {counts:>11} "
            f"{_fmt_s(row['total_before_s']):>13} "
            f"{_fmt_s(row['total_after_s']):>13} "
            f"{sign}{_fmt_s(abs(delta)):>11}"
        )
    return "\n".join(lines)
