"""Validation of JSONL trace files against the documented schema.

The JSONL layout written by :class:`repro.obs.JsonlTraceSink` is a
stable interface (docs/OBSERVABILITY.md); CI runs this validator against
a real ``repro analyze --trace-out`` run so schema drift fails loudly.

The checks are structural *and* semantic: event ordering per trace,
required fields and types per event kind, pre-order consistency of
``path``/``depth``, and that each ``trace_end``'s ``counter_totals`` and
``spans`` equal what its ``span`` lines actually add up to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import ReproError

__all__ = ["TraceSchemaError", "validate_trace_lines", "validate_trace_file"]

_NUMBER = (int, float)


class TraceSchemaError(ReproError):
    """A trace file does not conform to the documented JSONL schema."""


def _fail(line_no: int, message: str) -> None:
    raise TraceSchemaError(f"line {line_no}: {message}")


def _require(event: dict[str, Any], line_no: int, field: str, kinds: Any) -> Any:
    if field not in event:
        _fail(line_no, f"missing field {field!r}")
    value = event[field]
    if not isinstance(value, kinds) or isinstance(value, bool):
        _fail(line_no, f"field {field!r} has wrong type {type(value).__name__}")
    return value


def _check_counters(mapping: Any, line_no: int, field: str) -> dict[str, Any]:
    if not isinstance(mapping, dict):
        _fail(line_no, f"{field} must be an object")
    for key, value in mapping.items():
        if not isinstance(key, str):
            _fail(line_no, f"{field} key {key!r} is not a string")
        if not isinstance(value, _NUMBER) or isinstance(value, bool):
            _fail(line_no, f"{field}[{key!r}] is not a number")
    return mapping


def validate_trace_lines(lines: Iterable[str]) -> dict[str, int]:
    """Validate an iterable of JSONL lines; return summary statistics.

    Returns ``{"traces": T, "spans": S}`` on success and raises
    :class:`TraceSchemaError` (with a line number) on the first
    violation.
    """
    open_trace: int | None = None
    seen_span_for_trace = False
    expected_depth_ok = False
    totals: dict[str, float] = {}
    span_lines = 0
    traces = 0
    total_spans = 0
    last_depth = -1

    for line_no, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError as error:
            _fail(line_no, f"not valid JSON ({error.msg})")
        if not isinstance(event, dict):
            _fail(line_no, "event is not a JSON object")
        kind = _require(event, line_no, "event", str)

        if kind == "trace_start":
            if open_trace is not None:
                _fail(line_no, "trace_start while a trace is open")
            schema = _require(event, line_no, "schema", int)
            if schema != 1:
                _fail(line_no, f"unsupported schema version {schema}")
            open_trace = _require(event, line_no, "trace", int)
            _require(event, line_no, "name", str)
            seen_span_for_trace = False
            totals = {}
            span_lines = 0
            last_depth = -1
        elif kind == "span":
            if open_trace is None:
                _fail(line_no, "span outside any trace")
            if _require(event, line_no, "trace", int) != open_trace:
                _fail(line_no, "span trace id does not match open trace")
            name = _require(event, line_no, "name", str)
            path = _require(event, line_no, "path", str)
            depth = _require(event, line_no, "depth", int)
            if depth < 0:
                _fail(line_no, "depth must be >= 0")
            if not seen_span_for_trace and depth != 0:
                _fail(line_no, "first span of a trace must have depth 0")
            if seen_span_for_trace and depth > last_depth + 1:
                _fail(line_no, "pre-order depth may increase by at most 1")
            segments = path.split("/")
            if len(segments) != depth + 1 or segments[-1] != name:
                _fail(line_no, "path does not match name/depth")
            for field in ("start_s", "duration_s"):
                value = _require(event, line_no, field, _NUMBER)
                if value < 0:
                    _fail(line_no, f"{field} must be >= 0")
            if not isinstance(event.get("attributes"), dict):
                _fail(line_no, "attributes must be an object")
            for key, value in _check_counters(
                event.get("counters"), line_no, "counters"
            ).items():
                totals[key] = totals.get(key, 0) + value
            seen_span_for_trace = True
            last_depth = depth
            span_lines += 1
        elif kind == "trace_end":
            if open_trace is None:
                _fail(line_no, "trace_end without trace_start")
            if _require(event, line_no, "trace", int) != open_trace:
                _fail(line_no, "trace_end trace id does not match open trace")
            spans = _require(event, line_no, "spans", int)
            if spans != span_lines:
                _fail(
                    line_no,
                    f"trace_end reports {spans} spans but {span_lines} "
                    "span lines were seen",
                )
            declared = _check_counters(
                event.get("counter_totals"), line_no, "counter_totals"
            )
            if dict(declared) != dict(totals):
                _fail(line_no, "counter_totals do not match summed span counters")
            traces += 1
            total_spans += span_lines
            open_trace = None
        else:
            _fail(line_no, f"unknown event kind {kind!r}")

    if open_trace is not None:
        raise TraceSchemaError("file ended with an unterminated trace")
    if traces == 0:
        raise TraceSchemaError("file contains no traces")
    return {"traces": traces, "spans": total_spans}


def validate_trace_file(path: str | Path) -> dict[str, int]:
    """Validate one JSONL trace file (see :func:`validate_trace_lines`)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return validate_trace_lines(handle)
