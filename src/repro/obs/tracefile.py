"""Validation of JSONL trace files against the documented schema.

The JSONL layout written by :class:`repro.obs.JsonlTraceSink` is a
stable interface (docs/OBSERVABILITY.md); CI runs this validator against
a real ``repro analyze --trace-out`` run so schema drift fails loudly.

Two schema versions are accepted, dispatched per trace on the
``trace_start`` line's ``schema`` field:

* **v1** — the original layout: ``path``/``depth`` pre-order spans.
* **v2** — adds correlation IDs: ``trace_id`` on every event, and
  ``span_id`` / ``parent_id`` on span lines.  v2 checks everything v1
  checks *plus* ID integrity: span IDs are the unique pre-order
  positions, every ``parent_id`` resolves to an earlier span of the
  same trace at the parent depth, the root (and only the root) has a
  null parent, and ``trace_id`` is consistent across the trace — i.e.
  no dangling spans.

The checks are structural *and* semantic: event ordering per trace,
required fields and types per event kind, pre-order consistency of
``path``/``depth``, and that each ``trace_end``'s ``counter_totals`` and
``spans`` equal what its ``span`` lines actually add up to.  Every
failure carries the offending line number.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import ReproError

__all__ = ["TraceSchemaError", "validate_trace_lines", "validate_trace_file"]

_NUMBER = (int, float)
_SUPPORTED_SCHEMAS = (1, 2)


class TraceSchemaError(ReproError):
    """A trace file does not conform to the documented JSONL schema."""


def _fail(line_no: int, message: str) -> None:
    raise TraceSchemaError(f"line {line_no}: {message}")


def _require(event: dict[str, Any], line_no: int, field: str, kinds: Any) -> Any:
    if field not in event:
        _fail(line_no, f"missing field {field!r}")
    value = event[field]
    if not isinstance(value, kinds) or isinstance(value, bool):
        _fail(line_no, f"field {field!r} has wrong type {type(value).__name__}")
    return value


def _check_counters(mapping: Any, line_no: int, field: str) -> dict[str, Any]:
    if not isinstance(mapping, dict):
        _fail(line_no, f"{field} must be an object")
    for key, value in mapping.items():
        if not isinstance(key, str):
            _fail(line_no, f"{field} key {key!r} is not a string")
        if not isinstance(value, _NUMBER) or isinstance(value, bool):
            _fail(line_no, f"{field}[{key!r}] is not a number")
    return mapping


class _TraceState:
    """Per-trace accumulator reset on every ``trace_start``."""

    __slots__ = (
        "index", "schema", "trace_id", "totals", "span_lines", "last_depth",
        "seen_span", "span_depths",
    )

    def __init__(self, index: int, schema: int, trace_id: str | None) -> None:
        self.index = index
        self.schema = schema
        self.trace_id = trace_id
        self.totals: dict[str, float] = {}
        self.span_lines = 0
        self.last_depth = -1
        self.seen_span = False
        #: ``span_id -> depth`` for every span seen so far (v2 only);
        #: parent links must resolve into this map.
        self.span_depths: dict[int, int] = {}


def validate_trace_lines(lines: Iterable[str]) -> dict[str, int]:
    """Validate an iterable of JSONL lines; return summary statistics.

    Returns ``{"traces": T, "spans": S}`` on success and raises
    :class:`TraceSchemaError` (with a line number and a specific
    message) on the first violation.
    """
    state: _TraceState | None = None
    traces = 0
    total_spans = 0

    for line_no, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError as error:
            _fail(line_no, f"not valid JSON ({error.msg})")
        if not isinstance(event, dict):
            _fail(line_no, "event is not a JSON object")
        kind = _require(event, line_no, "event", str)

        if kind == "trace_start":
            if state is not None:
                _fail(line_no, "trace_start while a trace is open")
            schema = _require(event, line_no, "schema", int)
            if schema not in _SUPPORTED_SCHEMAS:
                _fail(line_no, f"unsupported schema version {schema}")
            index = _require(event, line_no, "trace", int)
            _require(event, line_no, "name", str)
            trace_id = None
            if schema >= 2:
                trace_id = _require(event, line_no, "trace_id", str)
                if not trace_id:
                    _fail(line_no, "trace_id must be a non-empty string")
            state = _TraceState(index, schema, trace_id)
        elif kind == "span":
            if state is None:
                _fail(line_no, "span outside any trace")
            if _require(event, line_no, "trace", int) != state.index:
                _fail(line_no, "span trace id does not match open trace")
            name = _require(event, line_no, "name", str)
            path = _require(event, line_no, "path", str)
            depth = _require(event, line_no, "depth", int)
            if depth < 0:
                _fail(line_no, "depth must be >= 0")
            if not state.seen_span and depth != 0:
                _fail(line_no, "first span of a trace must have depth 0")
            if state.seen_span and depth > state.last_depth + 1:
                _fail(line_no, "pre-order depth may increase by at most 1")
            segments = path.split("/")
            if len(segments) != depth + 1 or segments[-1] != name:
                _fail(line_no, "path does not match name/depth")
            for field in ("start_s", "duration_s"):
                value = _require(event, line_no, field, _NUMBER)
                if value < 0:
                    _fail(line_no, f"{field} must be >= 0")
            if not isinstance(event.get("attributes"), dict):
                _fail(line_no, "attributes must be an object")
            for key, value in _check_counters(
                event.get("counters"), line_no, "counters"
            ).items():
                state.totals[key] = state.totals.get(key, 0) + value
            if state.schema >= 2:
                _check_span_ids(event, line_no, state, depth)
            state.seen_span = True
            state.last_depth = depth
            state.span_lines += 1
        elif kind == "trace_end":
            if state is None:
                _fail(line_no, "trace_end without trace_start")
            if _require(event, line_no, "trace", int) != state.index:
                _fail(line_no, "trace_end trace id does not match open trace")
            if state.schema >= 2:
                trace_id = _require(event, line_no, "trace_id", str)
                if trace_id != state.trace_id:
                    _fail(
                        line_no,
                        f"trace_end trace_id {trace_id!r} does not match "
                        f"trace_start trace_id {state.trace_id!r}",
                    )
            spans = _require(event, line_no, "spans", int)
            if spans != state.span_lines:
                _fail(
                    line_no,
                    f"trace_end reports {spans} spans but {state.span_lines} "
                    "span lines were seen",
                )
            declared = _check_counters(
                event.get("counter_totals"), line_no, "counter_totals"
            )
            if dict(declared) != dict(state.totals):
                _fail(line_no, "counter_totals do not match summed span counters")
            traces += 1
            total_spans += state.span_lines
            state = None
        else:
            _fail(line_no, f"unknown event kind {kind!r}")

    if state is not None:
        raise TraceSchemaError("file ended with an unterminated trace")
    if traces == 0:
        raise TraceSchemaError("file contains no traces")
    return {"traces": traces, "spans": total_spans}


def _check_span_ids(
    event: dict[str, Any], line_no: int, state: _TraceState, depth: int
) -> None:
    """Schema-v2 ID integrity for one span line."""
    trace_id = _require(event, line_no, "trace_id", str)
    if trace_id != state.trace_id:
        _fail(
            line_no,
            f"span trace_id {trace_id!r} does not match trace_start "
            f"trace_id {state.trace_id!r}",
        )
    span_id = _require(event, line_no, "span_id", int)
    if span_id != state.span_lines:
        _fail(
            line_no,
            f"span_id {span_id} is not the pre-order position "
            f"{state.span_lines}",
        )
    if "parent_id" not in event:
        _fail(line_no, "missing field 'parent_id'")
    parent_id = event["parent_id"]
    if depth == 0:
        if parent_id is not None:
            _fail(line_no, "root span must have parent_id null")
    else:
        if not isinstance(parent_id, int) or isinstance(parent_id, bool):
            _fail(line_no, "parent_id must be an integer for non-root spans")
        parent_depth = state.span_depths.get(parent_id)
        if parent_depth is None:
            _fail(
                line_no,
                f"dangling span: parent_id {parent_id} does not resolve "
                "to an earlier span of this trace",
            )
        if parent_depth != depth - 1:
            _fail(
                line_no,
                f"parent_id {parent_id} has depth {parent_depth}, "
                f"expected {depth - 1}",
            )
    state.span_depths[span_id] = depth


def validate_trace_file(path: str | Path) -> dict[str, int]:
    """Validate one JSONL trace file (see :func:`validate_trace_lines`)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return validate_trace_lines(handle)
