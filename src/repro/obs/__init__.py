"""Observability: spans, counters, and pluggable trace/metrics sinks.

The paper's claim is *scalability*, so the reproduction's performance
must be explainable: which stage took the time, over how much data, and
how the work was partitioned.  This package provides the (stdlib-only)
instrumentation layer used across the detection pipeline:

* :class:`Span` — a named, timed tree node carrying attributes and
  additive counters (:mod:`repro.obs.spans`);
* :class:`Recorder` / :data:`NULL_RECORDER` — the write API, installed
  per-context with :func:`use_recorder` and read with
  :func:`current_recorder`; the null recorder makes instrumented
  library code free when nobody is observing
  (:mod:`repro.obs.recorder`);
* :class:`InMemorySink`, :class:`LoggingSink`, :class:`JsonlTraceSink`
  — where completed traces go (:mod:`repro.obs.sinks`);
* :func:`validate_trace_file` — schema validation for emitted JSONL
  traces (:mod:`repro.obs.tracefile`), run in CI.

See ``docs/OBSERVABILITY.md`` for the span hierarchy, the JSONL event
schema, and overhead notes.
"""

from repro.obs.recorder import (
    ARTIFACT_BYTES,
    ARTIFACT_HITS,
    ARTIFACT_MISSES,
    COOCCURRENCE_PASSES,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current_recorder,
    use_recorder,
)
from repro.obs.sinks import (
    TRACE_SCHEMA_VERSION,
    InMemorySink,
    JsonlTraceSink,
    LoggingSink,
    Sink,
)
from repro.obs.spans import Span, counter_totals, span_count, tree_signature
from repro.obs.tracefile import (
    TraceSchemaError,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "Span",
    "counter_totals",
    "span_count",
    "tree_signature",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "use_recorder",
    "ARTIFACT_HITS",
    "ARTIFACT_MISSES",
    "ARTIFACT_BYTES",
    "COOCCURRENCE_PASSES",
    "Sink",
    "InMemorySink",
    "LoggingSink",
    "JsonlTraceSink",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "validate_trace_file",
    "validate_trace_lines",
]
