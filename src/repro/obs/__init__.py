"""Observability: spans, counters, and pluggable trace/metrics sinks.

The paper's claim is *scalability*, so the reproduction's performance
must be explainable: which stage took the time, over how much data, and
how the work was partitioned.  This package provides the (stdlib-only)
instrumentation layer used across the detection pipeline:

* :class:`Span` — a named, timed tree node carrying attributes and
  additive counters (:mod:`repro.obs.spans`);
* :class:`Recorder` / :data:`NULL_RECORDER` — the write API, installed
  per-context with :func:`use_recorder` and read with
  :func:`current_recorder`; the null recorder makes instrumented
  library code free when nobody is observing
  (:mod:`repro.obs.recorder`);
* :class:`MetricRegistry` / :class:`Histogram` / :class:`Counter` /
  :class:`Gauge` — typed aggregate metrics with deterministic,
  mergeable log-bucketed histograms (:mod:`repro.obs.metrics`);
* :class:`InMemorySink`, :class:`LoggingSink`, :class:`JsonlTraceSink`
  — where completed traces go (:mod:`repro.obs.sinks`);
* :func:`validate_trace_file` — schema validation (v1 and v2) for
  emitted JSONL traces (:mod:`repro.obs.tracefile`), run in CI;
* :func:`load_trace_file` / :func:`summarize_traces` /
  :func:`collapsed_stacks` / :func:`diff_traces` — offline trace
  analysis behind the ``repro trace`` CLI
  (:mod:`repro.obs.traceanalysis`).

See ``docs/OBSERVABILITY.md`` for the span hierarchy, the JSONL event
schema, and overhead notes.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_bound,
)
from repro.obs.recorder import (
    ARTIFACT_BYTES,
    ARTIFACT_HITS,
    ARTIFACT_MISSES,
    COOCCURRENCE_PASSES,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current_recorder,
    new_trace_id,
    use_recorder,
)
from repro.obs.sinks import (
    TRACE_SCHEMA_VERSION,
    InMemorySink,
    JsonlTraceSink,
    LoggingSink,
    Sink,
)
from repro.obs.spans import Span, counter_totals, span_count, tree_signature
from repro.obs.traceanalysis import (
    LoadedTrace,
    TraceAnalysisError,
    collapsed_stacks,
    diff_traces,
    load_trace_file,
    summarize_traces,
)
from repro.obs.tracefile import (
    TraceSchemaError,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "Span",
    "counter_totals",
    "span_count",
    "tree_signature",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "bucket_bound",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "new_trace_id",
    "use_recorder",
    "ARTIFACT_HITS",
    "ARTIFACT_MISSES",
    "ARTIFACT_BYTES",
    "COOCCURRENCE_PASSES",
    "Sink",
    "InMemorySink",
    "LoggingSink",
    "JsonlTraceSink",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "validate_trace_file",
    "validate_trace_lines",
    "LoadedTrace",
    "TraceAnalysisError",
    "load_trace_file",
    "summarize_traces",
    "collapsed_stacks",
    "diff_traces",
]
