"""Recorders: the write API of the observability layer.

Two implementations share one interface:

* :class:`Recorder` — collects a span tree in memory and hands every
  completed *trace* (top-level span) to its sinks.  Span bookkeeping is
  a few dict/list operations per span, cheap enough to leave on for
  every engine run (it is what populates ``Report.timings`` and
  ``Report.metrics``).
* :class:`NullRecorder` — the module default.  Every operation is a
  no-op on shared singletons: no allocation, no timing calls.  Library
  code instrumented with ``current_recorder()`` therefore costs nothing
  unless a caller has installed a real recorder.

The *current* recorder is tracked with a :class:`contextvars.ContextVar`
so deep call stacks (the co-occurrence kernel, the DBSCAN expansion
loop) need no recorder parameter threading::

    recorder = Recorder(sinks=[JsonlTraceSink("trace.jsonl")])
    with use_recorder(recorder):
        report = engine.analyze(state)

Worker processes do not inherit the context variable; instead each
worker task records into a fresh local :class:`Recorder` and returns the
serialised trace fragment, which the parent grafts into its own tree in
deterministic (partition) order — see ``repro.core.engine`` and
``repro.core.grouping.cooccurrence``.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from repro.obs.metrics import MetricRegistry
from repro.obs.spans import Span, counter_totals, span_count

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "use_recorder",
    "new_trace_id",
    "ARTIFACT_HITS",
    "ARTIFACT_MISSES",
    "ARTIFACT_BYTES",
    "COOCCURRENCE_PASSES",
]

#: Key under which a worker fragment payload carries its metric-registry
#: fragment (histogram buckets, counters).  Lives alongside the span
#: tree's own keys in :meth:`Recorder.export_fragment` payloads;
#: :meth:`Span.from_dict` ignores it and :meth:`Recorder.graft` merges
#: it into the parent's registry.
FRAGMENT_METRICS_KEY = "metrics"


def new_trace_id() -> str:
    """A fresh 32-hex-character trace correlation ID."""
    return uuid.uuid4().hex

#: Counter names for the shared analysis workspace (see
#: :mod:`repro.core.workspace`).  An *artifact* is one memoised derived
#: structure (nonempty submatrix, co-occurrence pairs, MinHash
#: signatures, ...); every access records exactly one hit or miss, and
#: misses additionally record the bytes materialised, so
#: ``Report.metrics["counters"]`` exposes the cache behaviour of a run.
ARTIFACT_HITS = "workspace.artifact_hits"
ARTIFACT_MISSES = "workspace.artifact_misses"
ARTIFACT_BYTES = "workspace.artifact_bytes"
#: Incremented once per blocked co-occurrence pass — the acceptance
#: criterion "the co-occurrence product is computed exactly once per
#: axis per analyze()" is asserted against this counter's total.
COOCCURRENCE_PASSES = "workspace.cooccurrence_passes"


class _NullSpan(Span):
    """Shared, inert span handed out by the null recorder.

    Mutations are discarded so a single instance can be reused by every
    call site; it also acts as its own (re-entrant) context manager.
    """

    def __init__(self) -> None:
        super().__init__(name="null")

    def add(self, counter: str, value: int | float = 1) -> None:
        pass

    def annotate(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


class NullRecorder:
    """No-op recorder: the zero-overhead default (see module docstring)."""

    enabled: bool = False
    measure_memory: bool = False
    #: Mirrors :attr:`Recorder.trace_id` so callers can read it blindly.
    trace_id: str | None = None

    def __init__(self) -> None:
        self._null_span = _NullSpan()
        self.traces: list[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return self._null_span

    def add(self, counter: str, value: int | float = 1) -> None:
        pass

    def observe(self, name: str, value: int | float) -> None:
        pass

    def graft(
        self, payload: dict[str, Any], fragment: int | None = None
    ) -> None:
        pass

    def counter_totals(self) -> dict[str, int | float]:
        return {}

    def span_count(self) -> int:
        return 0


#: Process-wide shared no-op recorder.
NULL_RECORDER = NullRecorder()

_CURRENT: ContextVar["Recorder | NullRecorder"] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def current_recorder() -> "Recorder | NullRecorder":
    """The recorder installed for the current context (null by default)."""
    return _CURRENT.get()


@contextmanager
def use_recorder(recorder: "Recorder | NullRecorder") -> Iterator["Recorder | NullRecorder"]:
    """Install ``recorder`` as the current recorder for the ``with`` body."""
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)


class _SpanContext:
    """Context manager opening/closing one span on a recorder's stack."""

    __slots__ = ("_recorder", "_span", "_t0")

    def __init__(self, recorder: "Recorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = self._recorder._open(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._recorder._close(self._span, self._t0)
        return False


class Recorder:
    """Collects span trees and forwards completed traces to sinks.

    Parameters
    ----------
    sinks:
        Objects with an ``emit(root_span)`` method (see
        :mod:`repro.obs.sinks`).  Each is called once per completed
        trace, i.e. whenever a top-level span closes.  With no sinks the
        recorder still collects the tree in memory (``traces``) — that
        is how the engine derives ``Report.timings`` / ``Report.metrics``.
    measure_memory:
        Opt into ``tracemalloc``-based per-block peak-memory counters in
        the co-occurrence kernel.  Off by default: ``tracemalloc``
        tracing slows allocation-heavy code and resets the interpreter's
        global peak marker, which would corrupt concurrent external
        measurements (e.g. the memory-ablation benchmarks).
    registry:
        The :class:`~repro.obs.metrics.MetricRegistry` receiving
        histogram observations (:meth:`observe`).  A private registry is
        created when omitted; pass a shared one to aggregate several
        recorders (the service does this per process, not per request).
    trace_id:
        Fixed correlation ID stamped on every trace this recorder
        completes (the service passes the request's ``X-Trace-Id``).
        When ``None`` each completed trace gets a fresh generated ID.
    """

    enabled: bool = True

    def __init__(
        self,
        sinks: Any = (),
        measure_memory: bool = False,
        registry: MetricRegistry | None = None,
        trace_id: str | None = None,
    ) -> None:
        self._sinks = list(sinks)
        self.measure_memory = bool(measure_memory)
        self.registry = registry if registry is not None else MetricRegistry()
        self._trace_id = trace_id
        self._stack: list[Span] = []
        self._origin = 0.0
        #: Completed top-level spans, oldest first.
        self.traces: list[Span] = []

    @property
    def trace_id(self) -> str | None:
        """The fixed correlation ID stamped on completed traces.

        ``None`` when the recorder generates a fresh ID per trace.  The
        service reads this to propagate a request's ``X-Trace-Id`` into
        enqueued job records, so worker-side traces stitch into the
        request's tree.
        """
        return self._trace_id

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span as a context manager; yields the live :class:`Span`."""
        return _SpanContext(self, Span(name=name, attributes=attributes))

    def add(self, counter: str, value: int | float = 1) -> None:
        """Increment a counter on the innermost *open* span.

        Lets instrumented code that does not own a span handle (the
        workspace's artifact accessors, called from arbitrary depths)
        attribute counters to whatever region is currently recording.
        Outside any open span the increment is dropped — there is no
        trace to attach it to.
        """
        if self._stack:
            self._stack[-1].add(counter, value)

    def observe(self, name: str, value: int | float) -> None:
        """Record one observation into the registry histogram ``name``.

        Histograms complement span counters with *distributions*: the
        per-block kernel timings, published segment sizes, request
        latencies.  Fragments recorded by worker-local recorders travel
        back inside :meth:`export_fragment` payloads and merge
        deterministically in :meth:`graft`.
        """
        self.registry.observe(name, value)

    def _open(self, span: Span) -> float:
        now = time.perf_counter()
        if not self._stack:
            self._origin = now
        span.start = now - self._origin
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        return now

    def _close(self, span: Span, t0: float) -> None:
        span.duration = time.perf_counter() - t0
        popped = self._stack.pop()
        assert popped is span, "span close out of order"
        if not self._stack:
            self._finish_trace(span)

    def _finish_trace(self, root: Span) -> None:
        if root.trace_id is None:
            root.trace_id = self._trace_id or new_trace_id()
        self.traces.append(root)
        for sink in self._sinks:
            sink.emit(root)

    def export_fragment(self) -> dict[str, Any]:
        """Serialise the latest completed trace plus metric fragments.

        The payload a worker process ships back to the parent: the span
        tree (:meth:`Span.to_dict`) with the worker-local registry's
        histograms/counters embedded under ``"metrics"``.  The parent's
        :meth:`graft` reattaches the tree and merges the metrics, so a
        parallel run's merged registry equals the serial run's.
        """
        payload = self.traces[-1].to_dict()
        payload.pop("trace_id", None)  # fragments join the parent's trace
        fragment = self.registry.to_fragment()
        if fragment["counters"] or fragment["histograms"]:
            payload[FRAGMENT_METRICS_KEY] = fragment
        return payload

    def graft(
        self, payload: dict[str, Any], fragment: int | None = None
    ) -> Span:
        """Attach a serialised trace fragment under the current span.

        Worker processes return their local trace as a plain dict
        (:meth:`export_fragment`); grafting in partition order keeps the
        merged tree deterministic.  A registry fragment embedded in the
        payload is merged into this recorder's registry.  ``fragment``
        (the partition index) is stamped on the grafted root's
        attributes so stitched trees record where each piece came from.
        Outside any open span the fragment becomes a trace of its own.
        """
        metrics = payload.get(FRAGMENT_METRICS_KEY)
        if metrics is not None:
            payload = {
                key: value
                for key, value in payload.items()
                if key != FRAGMENT_METRICS_KEY
            }
            self.registry.merge_fragment(metrics)
        span = Span.from_dict(payload)
        if fragment is not None:
            span.attributes.setdefault("fragment", fragment)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._finish_trace(span)
        return span

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def counter_totals(self) -> dict[str, int | float]:
        """Summed counters over every completed trace (sorted keys)."""
        totals: dict[str, int | float] = {}
        for root in self.traces:
            for key, value in counter_totals(root).items():
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def span_count(self) -> int:
        """Total spans over every completed trace."""
        return sum(span_count(root) for root in self.traces)
