"""Trace sinks: where completed traces go.

A sink is any object with ``emit(root_span)``; a recorder calls it once
per completed trace (top-level span).  Three stdlib-only implementations
are provided:

* :class:`InMemorySink` — keeps the span trees; for tests and embedding.
* :class:`LoggingSink` — one ``logging`` record per span on the
  ``repro.obs`` logger (handlers/levels are the caller's business; the
  library never calls ``logging.basicConfig``).
* :class:`JsonlTraceSink` — streams trace events as JSON Lines with the
  stable schema documented in ``docs/OBSERVABILITY.md`` (one
  ``trace_start`` line, one ``span`` line per span in deterministic
  pre-order, one ``trace_end`` line with counter totals).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import IO, Any, Protocol

from repro.obs.spans import Span, counter_totals, span_count

__all__ = [
    "Sink",
    "InMemorySink",
    "LoggingSink",
    "JsonlTraceSink",
    "TRACE_SCHEMA_VERSION",
]

#: Version stamped on every ``trace_start`` event; bump on breaking
#: changes to the JSONL layout.
#:
#: Version 2 adds end-to-end correlation: ``trace_id`` on every event,
#: plus ``span_id`` / ``parent_id`` on span lines so a flat file
#: reconstructs into the exact span tree (including fragments grafted
#: from worker processes) without relying on line order.
TRACE_SCHEMA_VERSION = 2


class Sink(Protocol):
    """Anything that can receive a completed trace."""

    def emit(self, root: Span) -> None: ...


class InMemorySink:
    """Collects completed traces in a list (primarily for tests)."""

    def __init__(self) -> None:
        self.traces: list[Span] = []

    def emit(self, root: Span) -> None:
        self.traces.append(root)


class LoggingSink:
    """Logs one record per span via the stdlib ``logging`` module.

    Parameters
    ----------
    logger:
        Target logger (default: ``logging.getLogger("repro.obs")``).
    level:
        Level for every span record (default ``logging.INFO``).
    """

    def __init__(
        self, logger: logging.Logger | None = None, level: int = logging.INFO
    ) -> None:
        self._logger = logger if logger is not None else logging.getLogger("repro.obs")
        self._level = level

    def emit(self, root: Span) -> None:
        for path, depth, span in root.walk():
            self._logger.log(
                self._level,
                "span %s duration=%.6fs%s%s",
                path,
                span.duration,
                f" attrs={span.attributes}" if span.attributes else "",
                f" counters={span.counters}" if span.counters else "",
            )


class JsonlTraceSink:
    """Writes trace events as JSON Lines (schema in docs/OBSERVABILITY.md).

    Parameters
    ----------
    target:
        Output file path (opened lazily, truncating) or an open
        text-mode file-like object (not closed by :meth:`close`).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._file: IO[str] | None = None
        else:
            self._path = None
            self._file = target
        self._trace_index = 0

    def _out(self) -> IO[str]:
        if self._file is None:
            assert self._path is not None
            self._file = self._path.open("w", encoding="utf-8")
        return self._file

    def _write(self, event: dict[str, Any]) -> None:
        self._out().write(json.dumps(event, sort_keys=True) + "\n")

    def emit(self, root: Span) -> None:
        index = self._trace_index
        self._trace_index += 1
        # Deterministic span IDs: the pre-order position within the
        # trace.  Worker fragments are grafted into the tree before a
        # trace completes, so numbering the merged tree here gives every
        # span — local or worker-recorded — a resolvable parent link.
        trace_id = root.trace_id or f"trace-{index}"
        self._write(
            {
                "event": "trace_start",
                "schema": TRACE_SCHEMA_VERSION,
                "trace": index,
                "trace_id": trace_id,
                "name": root.name,
            }
        )
        parent_of_depth: list[int] = []
        for span_id, (path, depth, span) in enumerate(root.walk()):
            parent_id = parent_of_depth[depth - 1] if depth > 0 else None
            del parent_of_depth[depth:]
            parent_of_depth.append(span_id)
            self._write(
                {
                    "event": "span",
                    "trace": index,
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "path": path,
                    "name": span.name,
                    "depth": depth,
                    "start_s": span.start,
                    "duration_s": span.duration,
                    "attributes": span.attributes,
                    "counters": span.counters,
                }
            )
        self._write(
            {
                "event": "trace_end",
                "trace": index,
                "trace_id": trace_id,
                "spans": span_count(root),
                "counter_totals": counter_totals(root),
            }
        )
        self._out().flush()

    def close(self) -> None:
        """Close the underlying file if this sink opened it."""
        if self._path is not None and self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
