"""Spans: the unit of structured observability.

A :class:`Span` is one named, timed region of work — building the
assignment matrices, running one detector, multiplying one co-occurrence
block.  Spans nest, forming a tree per *trace* (one trace per top-level
region, e.g. one ``engine.analyze`` call), and carry two kinds of
payload:

* **attributes** — small, write-once facts about the region (axis name,
  block bounds, worker counts);
* **counters** — additive numeric measurements (nnz, candidate pairs,
  neighbour queries).  Counters aggregate by summation over a subtree,
  which is what makes serial and parallel runs comparable: the same
  work yields the same counter totals no matter how it was partitioned.

Spans are plain mutable objects while recording and serialise to plain
dicts (``to_dict`` / ``from_dict``) so worker processes can ship their
trace fragments back to the parent for deterministic merging.

Timebase: ``start`` is measured in seconds relative to the root span of
the trace the span belongs to (``time.perf_counter`` differences).
Spans grafted from worker processes keep their *worker-local* timebase —
their durations are meaningful, their starts are only comparable within
the same worker fragment.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["Span", "counter_totals", "span_count", "tree_signature"]


class Span:
    """One named, timed region of work in a trace tree.

    Instances are created by a recorder (see
    :mod:`repro.obs.recorder`); user code receives them from
    ``recorder.span(...)`` context managers and mutates them through
    :meth:`add` and :meth:`annotate`.
    """

    __slots__ = (
        "name", "start", "duration", "attributes", "counters", "children",
        "trace_id",
    )

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        duration: float = 0.0,
        attributes: dict[str, Any] | None = None,
        counters: dict[str, int | float] | None = None,
        children: list["Span"] | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.attributes: dict[str, Any] = attributes if attributes is not None else {}
        self.counters: dict[str, int | float] = (
            counters if counters is not None else {}
        )
        self.children: list[Span] = children if children is not None else []
        #: Correlation ID of the trace this span roots (set by the
        #: recorder on every completed top-level span; ``None`` on
        #: non-root spans — children inherit it implicitly via the tree).
        self.trace_id = trace_id

    # ------------------------------------------------------------------
    # Mutation (while recording)
    # ------------------------------------------------------------------
    def add(self, counter: str, value: int | float = 1) -> None:
        """Increment an additive counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes (small write-once facts) to this span."""
        self.attributes.update(attributes)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def walk(self, path: str = "", depth: int = 0) -> Iterator[tuple[str, int, "Span"]]:
        """Yield ``(path, depth, span)`` in deterministic pre-order.

        ``path`` is the ``/``-joined span names from the root down to
        (and including) this span.
        """
        here = f"{path}/{self.name}" if path else self.name
        yield here, depth, self
        for child in self.children:
            yield from child.walk(here, depth + 1)

    # ------------------------------------------------------------------
    # Serialisation (cross-process + sinks)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON-able; see docs/OBSERVABILITY.md)."""
        payload = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            start=payload.get("start", 0.0),
            duration=payload.get("duration", 0.0),
            attributes=dict(payload.get("attributes", {})),
            counters=dict(payload.get("counters", {})),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
            trace_id=payload.get("trace_id"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


def counter_totals(root: Span) -> dict[str, int | float]:
    """Sum every counter over the whole subtree rooted at ``root``.

    Totals are returned with sorted keys so repeated runs produce
    identical serialisations.
    """
    totals: dict[str, int | float] = {}
    for _, _, span in root.walk():
        for key, value in span.counters.items():
            totals[key] = totals.get(key, 0) + value
    return dict(sorted(totals.items()))


def span_count(root: Span) -> int:
    """Number of spans in the subtree rooted at ``root``."""
    return sum(1 for _ in root.walk())


def tree_signature(root: Span) -> list[tuple[str, int, dict[str, int | float]]]:
    """The duration-free shape of a trace: ``(path, depth, counters)``.

    Two runs of the same work must produce equal signatures — this is
    the determinism contract the observability tests pin (span tree and
    counter totals are reproducible; wall-clock durations are not).
    """
    return [
        (path, depth, dict(sorted(span.counters.items())))
        for path, depth, span in root.walk()
    ]
