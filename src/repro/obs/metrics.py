"""Typed metrics: counters, gauges, and mergeable log-bucketed histograms.

The span/counter layer (:mod:`repro.obs.spans`) answers *what work was
done*; this module answers *how it was distributed*.  A
:class:`Histogram` records a stream of observations into logarithmic
buckets (exact powers of two, derived from the value itself rather than
a fixed bucket table) so that

* recording is O(1) and allocation-free after the first observation of
  a magnitude,
* two histogram fragments recorded independently — e.g. one per worker
  process of a blocked scan — **merge deterministically** by summing
  bucket counts, in any order, into exactly the histogram a single
  recorder would have produced (the PR 2/PR 5 worker-fragment merge
  discipline),
* percentiles (p50/p90/p99) are computable at read time from the
  buckets alone, with linear interpolation inside a bucket and exact
  ``min``/``max`` clamping at the tails.

A :class:`MetricRegistry` owns named metric series (optionally labelled,
e.g. one request-latency histogram per service endpoint), is safe for
concurrent writers, and serialises three ways: a JSON ``snapshot()`` for
``/metricz`` and ``Report.metrics``, a ``to_fragment()`` /
``merge_fragment()`` pair for cross-process merging, and a Prometheus
text exposition (``prometheus_text()``) for scraping.

Everything is stdlib-only.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "bucket_bound",
]

#: Label sets are carried as sorted ``(key, value)`` tuples so they are
#: hashable and serialise deterministically.
LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: dict[str, str] | None) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_bound(value: float) -> float:
    """The log-bucket upper bound for ``value``: the smallest power of
    two ``>= value`` (``0.0`` for non-positive values).

    Bounds are computed from the value with exact float arithmetic
    (``math.frexp``), never from an accumulated table, so two recorders
    observing the same value always agree on the bucket — the property
    that makes fragment merging deterministic.
    """
    if value <= 0.0:
        return 0.0
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    if mantissa == 0.5:  # exact power of two: its own bound
        return value
    return math.ldexp(1.0, exponent)


class Counter:
    """A monotonically increasing sum (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: int | float = 0

    def inc(self, value: int | float = 1) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({value})")
        with self._lock:
            self._value += value

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (thread-safe; last write wins)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def add(self, value: int | float) -> None:
        with self._lock:
            self._value += value

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Histogram:
    """Log-bucketed distribution of observations (thread-safe, mergeable).

    Buckets are sparse: ``{upper_bound: count}`` with upper bounds that
    are exact powers of two (see :func:`bucket_bound`), so only the
    magnitudes actually observed occupy memory.  ``count``/``sum`` are
    exact; ``min``/``max`` are exact and merge by min/max; percentiles
    interpolate linearly within a bucket and are clamped to
    ``[min, max]``.
    """

    __slots__ = ("name", "labels", "_lock", "_buckets", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._buckets: dict[float, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # ------------------------------------------------------------------
    # Recording + merging
    # ------------------------------------------------------------------
    def record(self, value: int | float) -> None:
        value = float(value)
        bound = bucket_bound(value)
        with self._lock:
            self._buckets[bound] = self._buckets.get(bound, 0) + 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (order-insensitive)."""
        self.merge_dict(other.to_dict())

    def merge_dict(self, payload: dict[str, Any]) -> None:
        """Fold a serialised fragment (:meth:`to_dict` shape) in.

        Merging is commutative and associative: bucket counts, count and
        sum add; min/max combine by min/max.  Fragments recorded by
        worker processes therefore merge into exactly the histogram one
        process would have recorded, regardless of merge order.
        """
        buckets = payload.get("buckets", ())
        other_min = payload.get("min")
        other_max = payload.get("max")
        with self._lock:
            for bound, count in buckets:
                bound = float(bound)
                self._buckets[bound] = self._buckets.get(bound, 0) + int(count)
            self._count += int(payload.get("count", 0))
            self._sum += float(payload.get("sum", 0.0))
            if other_min is not None and (
                self._min is None or other_min < self._min
            ):
                self._min = float(other_min)
            if other_max is not None and (
                self._max is None or other_max > self._max
            ):
                self._max = float(other_max)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (``0 <= q <= 1``) estimated from buckets.

        ``None`` when empty.  Linear interpolation inside the target
        bucket; the result is clamped to the exact observed
        ``[min, max]`` so single-observation and tail queries are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float | None:
        if self._count == 0:
            return None
        assert self._min is not None and self._max is not None
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for bound in sorted(self._buckets):
            in_bucket = self._buckets[bound]
            if cumulative + in_bucket >= rank:
                if in_bucket == 0:
                    value = bound
                else:
                    fraction = (rank - cumulative) / in_bucket
                    value = lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
                return min(max(value, self._min), self._max)
            cumulative += in_bucket
            lower = bound
        return self._max

    def to_dict(self) -> dict[str, Any]:
        """Full mergeable representation (sorted sparse buckets)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": [
                    [bound, self._buckets[bound]]
                    for bound in sorted(self._buckets)
                ],
            }

    def summary(self) -> dict[str, Any]:
        """:meth:`to_dict` plus interpolated p50/p90/p99."""
        with self._lock:
            payload = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p99": self._quantile_locked(0.99),
                "buckets": [
                    [bound, self._buckets[bound]]
                    for bound in sorted(self._buckets)
                ],
            }
        return payload

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs.

        The implicit ``+Inf`` bucket (total count) is appended with
        ``math.inf`` as its bound.
        """
        with self._lock:
            running = 0
            pairs: list[tuple[float, int]] = []
            for bound in sorted(self._buckets):
                running += self._buckets[bound]
                pairs.append((bound, running))
            pairs.append((math.inf, self._count))
            return pairs


class MetricRegistry:
    """A named collection of metric series, safe for concurrent writers.

    Series are keyed by ``(name, labels)``; accessors get-or-create, so
    instrumented code never pre-registers.  A name must keep one metric
    kind across the registry (registering ``x`` as both a counter and a
    histogram raises) — that is what keeps the Prometheus exposition
    well-formed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, LabelItems], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    # ------------------------------------------------------------------
    # Accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, kind: type, name: str, labels: dict[str, str] | None):
        items = _label_items(labels)
        key = (name, items)
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind is not kind:
                raise ValueError(
                    f"metric {name!r} is a {existing_kind.__name__}, "
                    f"not a {kind.__name__}"
                )
            series = self._series.get(key)
            if series is None:
                series = kind(name, items)
                self._series[key] = series
                self._kinds[name] = kind
            return series

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Histogram:
        return self._get(Histogram, name, labels)

    # Convenience single-call forms -------------------------------------
    def inc(
        self, name: str, value: int | float = 1,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.counter(name, labels).inc(value)

    def observe(
        self, name: str, value: int | float,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.histogram(name, labels).record(value)

    # ------------------------------------------------------------------
    # Iteration + serialisation
    # ------------------------------------------------------------------
    def _items(self) -> list[tuple[str, LabelItems, Any]]:
        with self._lock:
            entries = list(self._series.items())
        return sorted(
            ((name, labels, series) for (name, labels), series in entries),
            key=lambda entry: (entry[0], entry[1]),
        )

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for _, _, series in self._items():
            yield series

    def histograms(self) -> dict[str, Histogram]:
        """Unlabelled histograms by name (the engine's shape)."""
        return {
            name: series
            for name, labels, series in self._items()
            if isinstance(series, Histogram) and not labels
        }

    def snapshot(self) -> dict[str, Any]:
        """JSON-able read of every series, grouped by kind then name.

        Histogram entries are :meth:`Histogram.summary` dicts.  Series
        with labels appear as a list of ``{"labels": {...}, ...}``
        entries under their metric name; unlabelled series appear as the
        bare value/summary.
        """
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for name, labels, series in self._items():
            if isinstance(series, Counter):
                target, payload = counters, series.value
            elif isinstance(series, Gauge):
                target, payload = gauges, series.value
            else:
                target, payload = histograms, series.summary()
            if labels:
                entry = {"labels": dict(labels)}
                if isinstance(payload, dict):
                    entry.update(payload)
                else:
                    entry["value"] = payload
                target.setdefault(name, []).append(entry)
            else:
                target[name] = payload
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def histogram_summaries(self) -> dict[str, dict[str, Any]]:
        """``{name: summary}`` for unlabelled histograms (Report.metrics)."""
        return {
            name: series.summary() for name, series in self.histograms().items()
        }

    # ------------------------------------------------------------------
    # Cross-process fragments
    # ------------------------------------------------------------------
    def to_fragment(self) -> dict[str, Any]:
        """Serialise counters + histograms for a parent-side merge.

        Gauges are point-in-time and deliberately excluded — a worker's
        gauge has no meaningful parent-side merge.
        """
        counters = []
        histograms = []
        for name, labels, series in self._items():
            if isinstance(series, Counter):
                counters.append([name, list(labels), series.value])
            elif isinstance(series, Histogram):
                histograms.append([name, list(labels), series.to_dict()])
        return {"counters": counters, "histograms": histograms}

    def merge_fragment(self, fragment: dict[str, Any]) -> None:
        """Fold a :meth:`to_fragment` payload in (order-insensitive)."""
        for name, labels, value in fragment.get("counters", ()):
            self.counter(name, dict(labels)).inc(value)
        for name, labels, payload in fragment.get("histograms", ()):
            self.histogram(name, dict(labels)).merge_dict(payload)

    def merge_histogram_dicts(
        self, payloads: dict[str, dict[str, Any]]
    ) -> None:
        """Fold ``{name: Histogram.to_dict()}`` payloads in.

        The shape ``Report.metrics["histograms"]`` carries — lets the
        service accumulate per-analysis engine histograms into its
        registry.
        """
        for name, payload in payloads.items():
            self.histogram(name).merge_dict(payload)

    # ------------------------------------------------------------------
    # Prometheus text exposition (version 0.0.4)
    # ------------------------------------------------------------------
    def prometheus_text(
        self,
        prefix: str = "repro_",
        extra_counters: dict[str, int | float] | None = None,
        extra_gauges: dict[str, int | float] | None = None,
    ) -> str:
        """Render every series in the Prometheus text format.

        ``extra_counters`` / ``extra_gauges`` let a caller fold in plain
        name→value maps (the service's merged engine counters) without
        registering them as live series.
        """
        lines: list[str] = []
        emitted_types: set[str] = set()

        def type_line(metric: str, kind: str) -> None:
            if metric not in emitted_types:
                emitted_types.add(metric)
                lines.append(f"# TYPE {metric} {kind}")

        for name, value in sorted((extra_counters or {}).items()):
            metric = prefix + _sanitize(name) + "_total"
            type_line(metric, "counter")
            lines.append(f"{metric} {_format_value(value)}")
        for name, value in sorted((extra_gauges or {}).items()):
            metric = prefix + _sanitize(name)
            type_line(metric, "gauge")
            lines.append(f"{metric} {_format_value(value)}")

        for name, labels, series in self._items():
            if isinstance(series, Counter):
                metric = prefix + _sanitize(name) + "_total"
                type_line(metric, "counter")
                lines.append(
                    f"{metric}{_format_labels(labels)} "
                    f"{_format_value(series.value)}"
                )
            elif isinstance(series, Gauge):
                metric = prefix + _sanitize(name)
                type_line(metric, "gauge")
                lines.append(
                    f"{metric}{_format_labels(labels)} "
                    f"{_format_value(series.value)}"
                )
            else:
                metric = prefix + _sanitize(name)
                type_line(metric, "histogram")
                for bound, cumulative in series.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    bucket_labels = _format_labels(
                        labels + (("le", le),)
                    )
                    lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
                lines.append(
                    f"{metric}_sum{_format_labels(labels)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(
                    f"{metric}_count{_format_labels(labels)} {series.count}"
                )
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    return "".join(
        ch if ch.isascii() and (ch.isalnum() or ch == "_") else "_"
        for ch in name
    )


def _format_value(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: LabelItems) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_sanitize(key)}="{_escape(value)}"' for key, value in labels
    )
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )
