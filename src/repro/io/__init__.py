"""Loading and saving RBAC states.

Two interchange formats plus an anonymisation pass:

* :mod:`~repro.io.jsonio` — a single self-contained JSON document with
  entities (including attributes) and both edge lists.
* :mod:`~repro.io.csvio` — the lowest-common-denominator export real IAM
  platforms produce: two edge CSVs (role,user and role,permission) and an
  optional entity CSV for nodes without edges.
* :mod:`~repro.io.anonymize` — deterministic pseudonymisation so real
  datasets can be shared the way the paper shares only aggregates.
"""

from repro.io.csvio import load_csv, save_csv
from repro.io.jsonio import load_json, loads_json, save_json, dumps_json
from repro.io.anonymize import anonymize
from repro.io.dot import state_to_dot

__all__ = [
    "load_csv",
    "save_csv",
    "load_json",
    "loads_json",
    "save_json",
    "dumps_json",
    "anonymize",
    "state_to_dot",
]
