"""Graphviz DOT export of the tripartite RBAC graph.

Regenerates the paper's Figure 1 as an artifact: users, roles, and
permissions as three node ranks, assignment edges between them, and —
when a :class:`~repro.core.report.Report` is supplied — the detected
inefficiencies highlighted the way the figure highlights them (standalone
nodes, disconnected roles, duplicate/similar groups).

The output is plain DOT text; render it with any Graphviz install
(``dot -Tsvg graph.dot -o graph.svg``) — no Graphviz dependency is
needed to produce the file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.entities import EntityKind
from repro.core.state import RbacState
from repro.core.taxonomy import InefficiencyType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.report import Report

#: Fill colours per highlight class (colourblind-safe-ish pastels).
_COLORS = {
    "user": "#cfe2f3",
    "role": "#d9ead3",
    "permission": "#fff2cc",
    "standalone": "#f4cccc",
    "disconnected": "#f9cb9c",
    "duplicate": "#ead1dc",
    "similar": "#d9d2e9",
}


def _quote(identifier: str) -> str:
    escaped = identifier.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def state_to_dot(
    state: RbacState,
    report: "Report | None" = None,
    graph_name: str = "rbac",
) -> str:
    """Render ``state`` (optionally annotated by ``report``) as DOT.

    Nodes are named ``user:<id>`` / ``role:<id>`` / ``permission:<id>``
    to keep the three id namespaces disjoint, and are grouped into three
    same-rank rows like the paper's figure.
    """
    highlight: dict[str, str] = {}
    group_labels: dict[str, list[str]] = {}
    if report is not None:
        _collect_highlights(report, highlight, group_labels)

    lines = [
        f"graph {_quote(graph_name)} {{",
        "  rankdir=LR;",
        '  node [style=filled, fontname="Helvetica"];',
    ]

    for kind, ids, shape in (
        ("user", state.user_ids(), "ellipse"),
        ("role", state.role_ids(), "box"),
        ("permission", state.permission_ids(), "hexagon"),
    ):
        lines.append(f"  subgraph cluster_{kind}s {{")
        lines.append(f'    label="{kind}s"; color=none;')
        lines.append("    rank=same;")
        for entity_id in ids:
            node = f"{kind}:{entity_id}"
            color = _COLORS[highlight.get(node, kind)]
            label_suffix = ""
            if node in group_labels:
                label_suffix = "\\n" + "; ".join(sorted(group_labels[node]))
            lines.append(
                f"    {_quote(node)} [label={_quote(entity_id + label_suffix)}, "
                f'shape={shape}, fillcolor="{color}"];'
            )
        lines.append("  }")

    for role_id in state.role_ids():
        for user_id in sorted(state.users_of_role(role_id)):
            lines.append(
                f"  {_quote(f'user:{user_id}')} -- "
                f"{_quote(f'role:{role_id}')};"
            )
        for permission_id in sorted(state.permissions_of_role(role_id)):
            lines.append(
                f"  {_quote(f'role:{role_id}')} -- "
                f"{_quote(f'permission:{permission_id}')};"
            )

    lines.append("}")
    return "\n".join(lines) + "\n"


def _collect_highlights(
    report: "Report",
    highlight: dict[str, str],
    group_labels: dict[str, list[str]],
) -> None:
    """Map findings onto node highlight classes and group tags.

    Priority (later wins): similar < duplicate < disconnected <
    standalone — a node keeps the most severe structural annotation.
    """
    ordered = (
        (InefficiencyType.SIMILAR_ROLES, "similar"),
        (InefficiencyType.DUPLICATE_ROLES, "duplicate"),
        (InefficiencyType.DISCONNECTED_ROLE, "disconnected"),
        (InefficiencyType.STANDALONE_NODE, "standalone"),
    )
    group_counter = 0
    for kind, css in ordered:
        for finding in report.of_type(kind):
            if kind in (
                InefficiencyType.DUPLICATE_ROLES,
                InefficiencyType.SIMILAR_ROLES,
            ):
                group_counter += 1
                tag = (
                    f"{'dup' if kind is InefficiencyType.DUPLICATE_ROLES else 'sim'}"
                    f"-{finding.axis.value[0] if finding.axis else '?'}"
                    f"{group_counter}"
                )
            else:
                tag = None
            prefix = {
                EntityKind.USER: "user",
                EntityKind.ROLE: "role",
                EntityKind.PERMISSION: "permission",
            }[finding.entity_kind]
            for entity_id in finding.entity_ids:
                node = f"{prefix}:{entity_id}"
                highlight[node] = css
                if tag is not None:
                    group_labels.setdefault(node, []).append(tag)
