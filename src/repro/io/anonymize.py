"""Deterministic pseudonymisation of RBAC states.

The paper cannot publish its real dataset and reports only order-of-
magnitude aggregates.  ``anonymize`` supports the same workflow for
library users: it maps every entity id (and drops names/attributes) to an
opaque pseudonym while preserving the graph structure exactly, so all
detection results carry over one-to-one.

Pseudonyms are keyed HMAC-SHA256 prefixes: stable for a given secret key
(so two exports of the same dataset align), unlinkable without it.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState


def _pseudonym(key: bytes, kind: str, identifier: str, length: int) -> str:
    digest = hmac.new(
        key, f"{kind}:{identifier}".encode("utf-8"), hashlib.sha256
    ).hexdigest()
    return f"{kind[0]}-{digest[:length]}"


def anonymize(
    state: RbacState, key: str | bytes = b"", digest_length: int = 16
) -> RbacState:
    """Return a structurally identical state with pseudonymous ids.

    Parameters
    ----------
    state:
        The state to anonymise (not modified).
    key:
        HMAC key.  The same key maps the same ids to the same pseudonyms
        across runs; an empty key still anonymises but is guessable by
        anyone who can enumerate the original id space.
    digest_length:
        Hex characters kept per pseudonym (collisions raise
        ``DuplicateEntityError`` on insert; raise the length if that
        happens on very large datasets).
    """
    key_bytes = key.encode("utf-8") if isinstance(key, str) else key

    def user_alias(user_id: str) -> str:
        return _pseudonym(key_bytes, "user", user_id, digest_length)

    def role_alias(role_id: str) -> str:
        return _pseudonym(key_bytes, "role", role_id, digest_length)

    def permission_alias(permission_id: str) -> str:
        return _pseudonym(key_bytes, "permission", permission_id, digest_length)

    clone = RbacState()
    for user_id in state.user_ids():
        clone.add_user(User(user_alias(user_id)))
    for role_id in state.role_ids():
        clone.add_role(Role(role_alias(role_id)))
    for permission_id in state.permission_ids():
        clone.add_permission(Permission(permission_alias(permission_id)))
    for role_id in state.role_ids():
        for user_id in state.users_of_role(role_id):
            clone.assign_user(role_alias(role_id), user_alias(user_id))
        for permission_id in state.permissions_of_role(role_id):
            clone.assign_permission(
                role_alias(role_id), permission_alias(permission_id)
            )
    return clone
