"""JSON serialisation of RBAC states.

Document shape (version 1)::

    {
      "format": "repro-rbac",
      "version": 1,
      "users":       [{"id": "...", "name": "...", "attributes": {...}}, ...],
      "roles":       [...],
      "permissions": [...],
      "user_assignments":       [["role", "user"], ...],
      "permission_assignments": [["role", "permission"], ...]
    }

``name`` and ``attributes`` are optional on load and omitted on save when
empty, keeping large exports compact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.entities import Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import DataFormatError, ReproError

FORMAT_NAME = "repro-rbac"
FORMAT_VERSION = 1


def _entity_payload(entity: User | Role | Permission) -> dict[str, Any]:
    payload: dict[str, Any] = {"id": entity.id}
    if entity.name:
        payload["name"] = entity.name
    if entity.attributes:
        payload["attributes"] = dict(entity.attributes)
    return payload


def state_to_dict(state: RbacState) -> dict[str, Any]:
    """The JSON-ready document for ``state``."""
    user_edges = []
    permission_edges = []
    for role_id in state.role_ids():
        for user_id in sorted(state.users_of_role(role_id)):
            user_edges.append([role_id, user_id])
        for permission_id in sorted(state.permissions_of_role(role_id)):
            permission_edges.append([role_id, permission_id])
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "users": [
            _entity_payload(state.get_user(u)) for u in state.user_ids()
        ],
        "roles": [
            _entity_payload(state.get_role(r)) for r in state.role_ids()
        ],
        "permissions": [
            _entity_payload(state.get_permission(p))
            for p in state.permission_ids()
        ],
        "user_assignments": user_edges,
        "permission_assignments": permission_edges,
    }


def state_from_dict(document: dict[str, Any]) -> RbacState:
    """Rebuild a state from a document produced by :func:`state_to_dict`."""
    if not isinstance(document, dict):
        raise DataFormatError("expected a JSON object at the top level")
    if document.get("format") != FORMAT_NAME:
        raise DataFormatError(
            f"unexpected format marker: {document.get('format')!r}"
        )
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise DataFormatError(f"unsupported format version: {version!r}")

    state = RbacState()
    try:
        for item in document.get("users", []):
            state.add_user(
                User(
                    item["id"],
                    name=item.get("name", ""),
                    attributes=item.get("attributes", {}),
                )
            )
        for item in document.get("roles", []):
            state.add_role(
                Role(
                    item["id"],
                    name=item.get("name", ""),
                    attributes=item.get("attributes", {}),
                )
            )
        for item in document.get("permissions", []):
            state.add_permission(
                Permission(
                    item["id"],
                    name=item.get("name", ""),
                    attributes=item.get("attributes", {}),
                )
            )
        for role_id, user_id in document.get("user_assignments", []):
            state.assign_user(role_id, user_id)
        for role_id, permission_id in document.get(
            "permission_assignments", []
        ):
            state.assign_permission(role_id, permission_id)
    except DataFormatError:
        raise
    except ReproError as error:  # UnknownEntityError, DuplicateEntityError
        raise DataFormatError(f"inconsistent RBAC document: {error}") from error
    except (KeyError, TypeError, ValueError) as error:
        raise DataFormatError(f"malformed RBAC document: {error}") from error
    return state


def dumps_json(state: RbacState, indent: int | None = None) -> str:
    """Serialise ``state`` to a JSON string."""
    return json.dumps(state_to_dict(state), indent=indent)


def loads_json(text: str) -> RbacState:
    """Parse a state from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise DataFormatError(f"invalid JSON: {error}") from error
    return state_from_dict(document)


def save_json(
    state: RbacState, path: str | Path, indent: int | None = None
) -> None:
    """Write ``state`` to ``path`` as JSON."""
    Path(path).write_text(dumps_json(state, indent=indent), encoding="utf-8")


def load_json(path: str | Path) -> RbacState:
    """Read a state from a JSON file."""
    return loads_json(Path(path).read_text(encoding="utf-8"))
