"""CSV import/export for RBAC states.

Real IAM platforms typically export assignment *edge lists*.  The CSV
layout used here mirrors that: a directory containing

* ``user_assignments.csv`` — header ``role_id,user_id``
* ``permission_assignments.csv`` — header ``role_id,permission_id``
* ``entities.csv`` (optional) — header ``kind,id,name``; lists every
  entity, which is the only way standalone nodes (no edges anywhere)
  survive a round-trip.

Entities referenced by edges but missing from ``entities.csv`` are
created implicitly, so plain two-file exports load fine — at the cost of
losing standalone nodes, exactly the blind spot the paper warns RBAC
operators about.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.entities import EntityKind, Permission, Role, User
from repro.core.state import RbacState
from repro.exceptions import DataFormatError

USER_EDGES_FILE = "user_assignments.csv"
PERMISSION_EDGES_FILE = "permission_assignments.csv"
ENTITIES_FILE = "entities.csv"


def save_csv(state: RbacState, directory: str | Path) -> None:
    """Write ``state`` into ``directory`` (created if missing)."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)

    with open(base / USER_EDGES_FILE, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["role_id", "user_id"])
        for role_id in state.role_ids():
            for user_id in sorted(state.users_of_role(role_id)):
                writer.writerow([role_id, user_id])

    with open(
        base / PERMISSION_EDGES_FILE, "w", newline="", encoding="utf-8"
    ) as f:
        writer = csv.writer(f)
        writer.writerow(["role_id", "permission_id"])
        for role_id in state.role_ids():
            for permission_id in sorted(state.permissions_of_role(role_id)):
                writer.writerow([role_id, permission_id])

    with open(base / ENTITIES_FILE, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["kind", "id", "name"])
        for user_id in state.user_ids():
            writer.writerow(["user", user_id, state.get_user(user_id).name])
        for role_id in state.role_ids():
            writer.writerow(["role", role_id, state.get_role(role_id).name])
        for permission_id in state.permission_ids():
            writer.writerow(
                [
                    "permission",
                    permission_id,
                    state.get_permission(permission_id).name,
                ]
            )


def load_csv(directory: str | Path) -> RbacState:
    """Read a state from ``directory`` (see module docstring)."""
    base = Path(directory)
    user_edges_path = base / USER_EDGES_FILE
    permission_edges_path = base / PERMISSION_EDGES_FILE
    if not user_edges_path.exists() and not permission_edges_path.exists():
        raise DataFormatError(
            f"{base} contains neither {USER_EDGES_FILE} nor "
            f"{PERMISSION_EDGES_FILE}"
        )

    state = RbacState()

    entities_path = base / ENTITIES_FILE
    if entities_path.exists():
        for row_number, row in _read_rows(entities_path, 3):
            kind, entity_id, name = row
            try:
                entity_kind = EntityKind(kind)
            except ValueError:
                raise DataFormatError(
                    f"{entities_path}:{row_number}: unknown kind {kind!r}"
                ) from None
            if entity_kind is EntityKind.USER:
                state.add_user(User(entity_id, name=name))
            elif entity_kind is EntityKind.ROLE:
                state.add_role(Role(entity_id, name=name))
            else:
                state.add_permission(Permission(entity_id, name=name))

    if user_edges_path.exists():
        for _row_number, (role_id, user_id) in _read_rows(user_edges_path, 2):
            if not state.has_role(role_id):
                state.add_role(Role(role_id))
            if not state.has_user(user_id):
                state.add_user(User(user_id))
            state.assign_user(role_id, user_id)

    if permission_edges_path.exists():
        for _row_number, (role_id, permission_id) in _read_rows(
            permission_edges_path, 2
        ):
            if not state.has_role(role_id):
                state.add_role(Role(role_id))
            if not state.has_permission(permission_id):
                state.add_permission(Permission(permission_id))
            state.assign_permission(role_id, permission_id)

    return state


def _read_rows(path: Path, n_columns: int):
    """Yield ``(line_number, row)`` for a header-checked CSV file."""
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFormatError(f"{path}: empty file") from None
        if len(header) != n_columns:
            raise DataFormatError(
                f"{path}: expected {n_columns} header columns, "
                f"got {len(header)}"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue  # blank line
            if len(row) != n_columns:
                raise DataFormatError(
                    f"{path}:{row_number}: expected {n_columns} columns, "
                    f"got {len(row)}"
                )
            yield row_number, tuple(row)
