"""Packed boolean-matrix substrate.

RBAC assignment matrices (RUAM / RPAM) are boolean.  Packing each row into
``uint64`` words makes Hamming-distance computations roughly 64x cheaper in
both memory traffic and arithmetic: the distance between two rows is the
popcount of the XOR of their word vectors.

This package provides:

* :class:`~repro.bitmatrix.packed.BitMatrix` — an immutable packed matrix
  with row popcounts, pairwise/blocked Hamming distances, and stable row
  hashing (used by the hash-based duplicate finder).
* :func:`~repro.bitmatrix.packed.popcount` — vectorised popcount for
  ``uint64`` arrays, usable independently.
* :mod:`~repro.bitmatrix.sparse` — helpers for building sparse CSR matrices
  and role co-occurrence products on top of ``scipy.sparse``.
"""

from repro.bitmatrix.formats import FormatStats, evaluate_formats, recommend_format
from repro.bitmatrix.packed import (
    HAVE_HW_POPCOUNT,
    BitMatrix,
    pack_csr_rows,
    popcount,
)
from repro.bitmatrix.sparse import (
    cooccurrence,
    csr_row_keys,
    equal_row_groups_sparse,
    row_norms,
    to_csr,
)

__all__ = [
    "BitMatrix",
    "FormatStats",
    "HAVE_HW_POPCOUNT",
    "evaluate_formats",
    "recommend_format",
    "pack_csr_rows",
    "popcount",
    "cooccurrence",
    "csr_row_keys",
    "equal_row_groups_sparse",
    "row_norms",
    "to_csr",
]
