"""Sparse-format evaluation for the co-occurrence kernel.

The paper's memory note (§III-B): sparse storage can shrink RUAM/RPAM
further, but "the type of sparse matrix should be chosen considering
other factors, such as conversion time, based on the experimental
evaluation."  This module is that evaluation as a library call: it
measures, per scipy sparse format, the conversion cost from dense/CSR,
the memory footprint, and the cost of the ``M @ M.T`` co-occurrence
product the custom algorithm runs on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy.typing as npt
import scipy.sparse as sp

from repro.bitmatrix.sparse import to_csr
from repro.exceptions import ConfigurationError

#: Formats evaluated by default.  ``lil``/``dok`` exist for mutation, not
#: algebra, and are orders of magnitude slower in products; they are
#: included on request to make exactly that visible.
DEFAULT_FORMATS: tuple[str, ...] = ("csr", "csc", "coo")

_CONVERTERS = {
    "csr": lambda m: m.tocsr(),
    "csc": lambda m: m.tocsc(),
    "coo": lambda m: m.tocoo(),
    "lil": lambda m: m.tolil(),
    "dok": lambda m: m.todok(),
}


@dataclass(frozen=True)
class FormatStats:
    """Measurements for one sparse format."""

    format: str
    conversion_seconds: float
    memory_bytes: int
    product_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": self.format,
            "conversion_seconds": self.conversion_seconds,
            "memory_bytes": self.memory_bytes,
            "product_seconds": self.product_seconds,
        }


def _memory_of(matrix: sp.spmatrix) -> int:
    """Approximate in-memory footprint of a scipy sparse matrix."""
    total = 0
    for attribute in ("data", "indices", "indptr", "row", "col"):
        array = getattr(matrix, attribute, None)
        if array is not None:
            total += array.nbytes
    if hasattr(matrix, "rows"):  # LIL
        total += sum(
            len(row) * 16 for row in matrix.rows
        )  # rough Python-list estimate
    return total


def evaluate_formats(
    matrix: npt.ArrayLike | sp.spmatrix,
    formats: Sequence[str] = DEFAULT_FORMATS,
    repeats: int = 3,
) -> list[FormatStats]:
    """Measure conversion/memory/product cost per sparse format.

    ``product_seconds`` times ``converted @ converted.T`` — the exact
    kernel of the paper's custom algorithm — taking the best of
    ``repeats`` runs.  Results are returned in the order requested.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    base = to_csr(matrix)
    results = []
    for name in formats:
        try:
            converter = _CONVERTERS[name]
        except KeyError:
            known = ", ".join(sorted(_CONVERTERS))
            raise ConfigurationError(
                f"unknown sparse format {name!r}; expected one of: {known}"
            ) from None

        best_conversion = float("inf")
        converted = None
        for _ in range(repeats):
            start = time.perf_counter()
            converted = converter(base)
            best_conversion = min(
                best_conversion, time.perf_counter() - start
            )
        assert converted is not None

        best_product = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _ = converted @ converted.T
            best_product = min(best_product, time.perf_counter() - start)

        results.append(
            FormatStats(
                format=name,
                conversion_seconds=best_conversion,
                memory_bytes=_memory_of(converted),
                product_seconds=best_product,
            )
        )
    return results


def recommend_format(
    matrix: npt.ArrayLike | sp.spmatrix,
    formats: Sequence[str] = DEFAULT_FORMATS,
    repeats: int = 3,
) -> str:
    """The format with the cheapest co-occurrence product.

    Conversion happens once per analysis while the product dominates, so
    the recommendation weighs the product time only (ties broken by
    conversion time).
    """
    stats = evaluate_formats(matrix, formats=formats, repeats=repeats)
    best = min(stats, key=lambda s: (s.product_seconds, s.conversion_seconds))
    return best.format
