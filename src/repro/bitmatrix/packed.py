"""Bit-packed boolean matrices with fast Hamming arithmetic.

A :class:`BitMatrix` stores an ``n x m`` boolean matrix as an
``n x ceil(m / 64)`` array of ``uint64`` words.  All row-level operations
(popcount, Hamming distance, equality grouping) are computed on the packed
representation, which is what makes the exact-clustering baseline usable at
the scales evaluated in the paper.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import numpy.typing as npt

from repro.types import BoolMatrix, as_bool_matrix

_WORD_BITS = 64

# 16-bit popcount lookup table: popcount of a uint64 is the sum of the
# popcounts of its four 16-bit halves.  A 64 KiB table keeps everything in
# L2 cache while avoiding Python-level loops.
_POPCOUNT16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)

#: Whether numpy exposes the hardware popcount ufunc (numpy >= 2.0).
#: The bit-packed co-occurrence kernel's cost model reads this: with the
#: table fallback a popcounted word costs ~7x more, moving the
#: sparse-vs-bits crossover density accordingly.
HAVE_HW_POPCOUNT = hasattr(np, "bitwise_count")


def _popcount_table(words: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
    """Table-lookup popcount (fallback for numpy without bitwise_count)."""
    # Viewing as uint16 requires a contiguous last axis; column slices of
    # a packed word array are strided, so normalise first.
    if not words.flags.c_contiguous:
        words = np.ascontiguousarray(words)
    # View each 8-byte word as four little-endian uint16 chunks.
    chunks = words.view(np.uint16).reshape(*words.shape, 4)
    return _POPCOUNT16[chunks].sum(axis=-1, dtype=np.int64)


def popcount(words: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
    """Return the per-element popcount of a ``uint64`` array.

    Works on any array shape (contiguous or strided); the result has the
    same shape with dtype ``int64``.  Uses the hardware popcount ufunc
    when numpy provides one, the 16-bit lookup table otherwise.
    """
    if words.dtype != np.uint64:
        raise TypeError(f"expected uint64 array, got {words.dtype}")
    if HAVE_HW_POPCOUNT:
        return np.bitwise_count(words).astype(np.int64)
    return _popcount_table(words)


class BitMatrix:
    """An immutable bit-packed boolean matrix.

    Parameters
    ----------
    matrix:
        Any 2-D array-like coercible to booleans.

    Notes
    -----
    The packed words and derived popcounts are computed eagerly; instances
    should be treated as read-only (the underlying arrays are flagged
    non-writeable).
    """

    def __init__(self, matrix: npt.ArrayLike) -> None:
        dense = as_bool_matrix(matrix)
        self._n_rows, self._n_cols = dense.shape
        self._words = _pack_rows(dense)
        self._words.setflags(write=False)
        self._row_popcounts = popcount(self._words).sum(axis=1)
        self._row_popcounts.setflags(write=False)

    @classmethod
    def from_words(
        cls, words: npt.NDArray[np.uint64], n_cols: int
    ) -> "BitMatrix":
        """Wrap an existing packed word array without re-packing.

        ``words`` must be ``n_rows x ceil(n_cols / 64)`` with any padding
        bits beyond ``n_cols`` cleared (as produced by :func:`pack_csr_rows`
        or ``_pack_rows``).  The array is not copied when already contiguous,
        so shared-memory-backed words stay zero-copy.
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"expected a 2-D word array, got ndim={words.ndim}")
        n_words = max(1, -(-int(n_cols) // _WORD_BITS))
        if words.shape[1] != n_words:
            raise ValueError(
                f"word array has {words.shape[1]} words per row; "
                f"{n_cols} columns require {n_words}"
            )
        self = cls.__new__(cls)
        self._n_rows = words.shape[0]
        self._n_cols = int(n_cols)
        self._words = words
        self._words.setflags(write=False)
        self._row_popcounts = popcount(words).sum(axis=1)
        self._row_popcounts.setflags(write=False)
        return self

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical (rows, columns) shape of the boolean matrix."""
        return (self._n_rows, self._n_cols)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return self._n_cols

    @property
    def words(self) -> npt.NDArray[np.uint64]:
        """The packed ``uint64`` word array (read-only view)."""
        return self._words

    @property
    def row_popcounts(self) -> npt.NDArray[np.int64]:
        """Number of set bits in each row (read-only view)."""
        return self._row_popcounts

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> BoolMatrix:
        """Unpack row ``index`` back into a boolean vector."""
        if not 0 <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range [0, {self._n_rows})")
        bits = np.unpackbits(
            self._words[index].view(np.uint8), bitorder="little"
        )
        return bits[: self._n_cols].astype(bool)

    def to_dense(self) -> BoolMatrix:
        """Unpack the whole matrix into a dense boolean array."""
        bits = np.unpackbits(
            self._words.view(np.uint8), axis=1, bitorder="little"
        )
        return bits[:, : self._n_cols].astype(bool)

    # ------------------------------------------------------------------
    # Hamming arithmetic
    # ------------------------------------------------------------------
    def hamming(self, i: int, j: int) -> int:
        """Hamming distance between rows ``i`` and ``j``."""
        xor = np.bitwise_xor(self._words[i], self._words[j])
        return int(popcount(xor).sum())

    def hamming_to_row(self, index: int) -> npt.NDArray[np.int64]:
        """Hamming distances from every row to row ``index``."""
        xor = np.bitwise_xor(self._words, self._words[index])
        return popcount(xor).sum(axis=1)

    def hamming_block(
        self, rows_a: npt.NDArray[np.intp], rows_b: npt.NDArray[np.intp]
    ) -> npt.NDArray[np.int64]:
        """Pairwise Hamming distances between two sets of rows.

        Returns a ``len(rows_a) x len(rows_b)`` matrix.  Memory use is
        ``len(rows_a) * len(rows_b) * n_words * 8`` bytes for the
        intermediate XOR, so callers should tile large requests.
        """
        a = self._words[rows_a][:, None, :]
        b = self._words[rows_b][None, :, :]
        return popcount(np.bitwise_xor(a, b)).sum(axis=2)

    def pairwise_hamming(
        self, block_size: int = 512
    ) -> npt.NDArray[np.int64]:
        """Full ``n x n`` Hamming-distance matrix, computed in tiles.

        Intended for moderate ``n`` (the exact-clustering baseline); the
        result alone is ``n^2 * 8`` bytes.
        """
        n = self._n_rows
        out = np.empty((n, n), dtype=np.int64)
        indices = np.arange(n, dtype=np.intp)
        for start_a in range(0, n, block_size):
            rows_a = indices[start_a : start_a + block_size]
            for start_b in range(start_a, n, block_size):
                rows_b = indices[start_b : start_b + block_size]
                tile = self.hamming_block(rows_a, rows_b)
                out[
                    start_a : start_a + len(rows_a),
                    start_b : start_b + len(rows_b),
                ] = tile
                if start_b != start_a:
                    out[
                        start_b : start_b + len(rows_b),
                        start_a : start_a + len(rows_a),
                    ] = tile.T
        return out

    def rows_within_hamming(
        self, index: int, max_distance: int
    ) -> npt.NDArray[np.intp]:
        """Indices of all rows at Hamming distance ``<= max_distance`` from
        row ``index`` (including ``index`` itself)."""
        distances = self.hamming_to_row(index)
        return np.flatnonzero(distances <= max_distance)

    # ------------------------------------------------------------------
    # Hashing / grouping
    # ------------------------------------------------------------------
    def row_keys(self) -> list[bytes]:
        """A stable, content-based key per row.

        Two rows receive the same key iff their boolean content is equal,
        which makes exact-duplicate grouping a dictionary build.
        """
        if self._n_rows == 0:
            return []
        raw = np.ascontiguousarray(self._words)
        row_bytes = raw.view(np.uint8).reshape(self._n_rows, -1)
        return [row.tobytes() for row in row_bytes]

    def equal_row_groups(self) -> list[list[int]]:
        """Groups of row indices with identical content (size >= 2 only).

        Groups are returned sorted by their smallest member; members are
        sorted ascending.  This is the deterministic ground truth against
        which all three paper approaches are tested.
        """
        buckets: dict[bytes, list[int]] = {}
        for row_index, key in enumerate(self.row_keys()):
            buckets.setdefault(key, []).append(row_index)
        groups = [members for members in buckets.values() if len(members) > 1]
        groups.sort(key=lambda members: members[0])
        return groups

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    def __iter__(self) -> Iterator[BoolMatrix]:
        for index in range(self._n_rows):
            yield self.row(index)

    def __repr__(self) -> str:
        return f"BitMatrix(shape={self.shape})"


def pack_csr_rows(matrix, block_rows: int = 4096) -> npt.NDArray[np.uint64]:
    """Pack a CSR matrix into little-endian uint64 words, block by block.

    Works directly off ``indptr``/``indices`` so only ``block_rows`` rows
    are ever densified at once — packing an ``n x m`` CSR costs
    ``O(block_rows * m)`` transient memory instead of ``O(n * m)``.
    Explicit zeros in ``data`` are ignored.
    """
    n_rows, n_cols = matrix.shape
    n_words = max(1, -(-int(n_cols) // _WORD_BITS))
    out = np.empty((n_rows, n_words), dtype=np.uint64)
    if n_rows == 0:
        return out
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    indptr = np.asarray(matrix.indptr)
    indices = np.asarray(matrix.indices)
    data = np.asarray(matrix.data)
    padded_cols = n_words * _WORD_BITS
    for start in range(0, n_rows, block_rows):
        stop = min(start + block_rows, n_rows)
        lo, hi = int(indptr[start]), int(indptr[stop])
        cols = indices[lo:hi]
        row_ids = np.repeat(
            np.arange(stop - start, dtype=np.intp),
            np.diff(indptr[start : stop + 1]),
        )
        nonzero = data[lo:hi] != 0
        dense = np.zeros((stop - start, padded_cols), dtype=bool)
        dense[row_ids[nonzero], cols[nonzero]] = True
        packed = np.packbits(dense, axis=1, bitorder="little")
        out[start:stop] = np.ascontiguousarray(packed).view(np.uint64)
    return out


def _pack_rows(dense: BoolMatrix) -> npt.NDArray[np.uint64]:
    """Pack a dense boolean matrix into little-endian uint64 words."""
    n_rows, n_cols = dense.shape
    n_words = max(1, -(-n_cols // _WORD_BITS))
    if n_rows == 0:
        return np.empty((0, n_words), dtype=np.uint64)
    padded_cols = n_words * _WORD_BITS
    if padded_cols != n_cols:
        padded = np.zeros((n_rows, padded_cols), dtype=bool)
        padded[:, :n_cols] = dense
    else:
        padded = dense
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    return np.ascontiguousarray(packed_bytes).view(np.uint64)
