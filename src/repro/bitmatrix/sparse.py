"""Sparse-matrix helpers for the custom co-occurrence algorithm.

The paper's custom algorithm (§III-C) is built on the co-occurrence matrix
``C = M @ M.T`` where ``M`` is RUAM (or RPAM).  For realistic RBAC data
``M`` is extremely sparse (a role touches a handful of users out of tens of
thousands), so the product is computed with ``scipy.sparse`` CSR matrices.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

from repro.types import as_bool_matrix


def to_csr(matrix: npt.ArrayLike | sp.spmatrix) -> sp.csr_matrix:
    """Coerce dense/array-like/sparse input into an integer CSR matrix.

    Boolean content is mapped to 0/1 ``int64`` so that matrix products
    count co-occurrences rather than saturate.
    """
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.int64)
    dense = as_bool_matrix(matrix)
    return sp.csr_matrix(dense, dtype=np.int64)


def cooccurrence(matrix: npt.ArrayLike | sp.spmatrix) -> sp.csr_matrix:
    """Role co-occurrence matrix ``C = M @ M.T`` as sparse CSR.

    ``C[i, j]`` is the number of columns set in both row ``i`` and row
    ``j``; ``C[i, i]`` is the row popcount ``|R^i|`` — exactly the matrix
    the paper defines in §III-C.
    """
    csr = to_csr(matrix)
    product = csr @ csr.T
    return product.tocsr()


def row_norms(matrix: npt.ArrayLike | sp.spmatrix) -> npt.NDArray[np.int64]:
    """Per-row popcounts ``|R^i|`` of a boolean matrix."""
    csr = to_csr(matrix)
    return np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)


def csr_row_keys(matrix: npt.ArrayLike | sp.spmatrix) -> list[bytes]:
    """A stable content key per row of a sparse boolean matrix.

    Two rows receive the same key iff they have the same set of nonzero
    columns.  Unlike :meth:`repro.bitmatrix.BitMatrix.row_keys` this never
    densifies, so it scales to the real-organisation matrix sizes
    (tens of thousands of roles x hundreds of thousands of permissions).
    """
    csr = to_csr(matrix).copy()
    csr.sort_indices()
    indptr = csr.indptr
    indices = csr.indices.astype(np.int64)
    return [
        indices[indptr[row] : indptr[row + 1]].tobytes()
        for row in range(csr.shape[0])
    ]


def equal_row_groups_sparse(
    matrix: npt.ArrayLike | sp.spmatrix,
) -> list[list[int]]:
    """Groups of identical rows (size >= 2) of a sparse boolean matrix.

    Same ordering contract as
    :meth:`repro.bitmatrix.BitMatrix.equal_row_groups`.
    """
    buckets: dict[bytes, list[int]] = {}
    for row_index, key in enumerate(csr_row_keys(matrix)):
        buckets.setdefault(key, []).append(row_index)
    groups = [members for members in buckets.values() if len(members) > 1]
    groups.sort(key=lambda members: members[0])
    return groups
