"""Build a remediation plan from an analysis report.

Planning policy (conservative by design — see package docstring):

* **standalone nodes** → ``RemoveNode`` actions (opt-out per kind);
* **disconnected roles** → ``RemoveNode`` actions when enabled: a role
  with no users grants nothing, a role with no permissions grants
  nothing, so removal cannot change any user's effective access;
* **duplicate roles** → one ``MergeRoles`` per group (the keeper is the
  lexicographically smallest member, making plans deterministic);
* **similar roles** and **single-assignment roles** → never actions,
  only ``ReviewSuggestion`` entries: resolving them requires a human
  decision about which assignments the survivor should carry.

A role can appear in several findings (e.g. in a same-users group *and*
a same-permissions group).  The planner keeps the first action that
touches a role and skips later conflicting ones, so a plan never merges
or removes the same role twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import EntityKind
from repro.core.report import Report
from repro.core.taxonomy import Axis, InefficiencyType
from repro.remediation.actions import (
    MergeRoles,
    RemediationPlan,
    RemoveNode,
    RemoveShadowedRole,
    ReviewSuggestion,
)


@dataclass(frozen=True)
class PlannerOptions:
    """What the planner is allowed to put in the actions list."""

    remove_standalone_users: bool = True
    remove_standalone_permissions: bool = True
    remove_standalone_roles: bool = True
    remove_disconnected_roles: bool = True
    merge_duplicate_roles: bool = True
    #: Which duplicate axes to merge on; by default both, users first
    #: (the paper's role-count reduction counts both axes).
    merge_axes: tuple[Axis, ...] = (Axis.USERS, Axis.PERMISSIONS)
    suggest_similar_roles: bool = True
    suggest_single_assignment_roles: bool = False
    #: Shadowed-role findings only exist when the extension detector ran
    #: (``AnalysisConfig.with_extensions()``).
    remove_shadowed_roles: bool = True


def build_plan(
    report: Report, options: PlannerOptions | None = None
) -> RemediationPlan:
    """Derive a :class:`RemediationPlan` from ``report`` (see module doc)."""
    options = options or PlannerOptions()
    plan = RemediationPlan()
    touched_roles: set[str] = set()

    for finding in report.of_type(InefficiencyType.STANDALONE_NODE):
        entity_id = finding.entity_ids[0]
        if finding.entity_kind is EntityKind.USER:
            if options.remove_standalone_users:
                plan.actions.append(
                    RemoveNode(EntityKind.USER, entity_id, "standalone user")
                )
        elif finding.entity_kind is EntityKind.PERMISSION:
            if options.remove_standalone_permissions:
                plan.actions.append(
                    RemoveNode(
                        EntityKind.PERMISSION, entity_id,
                        "standalone permission",
                    )
                )
        elif options.remove_standalone_roles:
            plan.actions.append(
                RemoveNode(EntityKind.ROLE, entity_id, "standalone role")
            )
            touched_roles.add(entity_id)

    if options.remove_disconnected_roles:
        for finding in report.of_type(InefficiencyType.DISCONNECTED_ROLE):
            role_id = finding.entity_ids[0]
            if role_id in touched_roles:
                continue
            touched_roles.add(role_id)
            side = (
                "no users" if finding.axis is Axis.USERS else "no permissions"
            )
            plan.actions.append(
                RemoveNode(EntityKind.ROLE, role_id, f"role with {side}")
            )

    if options.merge_duplicate_roles:
        for axis in options.merge_axes:
            for finding in report.on_axis(
                InefficiencyType.DUPLICATE_ROLES, axis
            ):
                members = [
                    role_id
                    for role_id in finding.entity_ids
                    if role_id not in touched_roles
                ]
                if len(members) < 2:
                    continue
                keeper = min(members)
                removed = tuple(m for m in sorted(members) if m != keeper)
                touched_roles.update(members)
                plan.actions.append(
                    MergeRoles(
                        keep_role_id=keeper,
                        remove_role_ids=removed,
                        axis=axis,
                    )
                )

    if options.remove_shadowed_roles:
        for finding in report.of_type(InefficiencyType.SHADOWED_ROLE):
            role_id = finding.entity_ids[0]
            shadowed_by = finding.details.get("shadowed_by", "")
            # Skip when either side was already merged/removed above, or
            # when the dominator is itself scheduled for removal (a
            # chain a ⊆ b ⊆ c resolves over successive runs).
            if role_id in touched_roles or shadowed_by in touched_roles:
                continue
            touched_roles.add(role_id)
            plan.actions.append(
                RemoveShadowedRole(role_id=role_id, shadowed_by=shadowed_by)
            )

    if options.suggest_similar_roles:
        for finding in report.of_type(InefficiencyType.SIMILAR_ROLES):
            plan.suggestions.append(
                ReviewSuggestion(
                    message=finding.message,
                    role_ids=finding.entity_ids,
                    axis=finding.axis,
                )
            )
    if options.suggest_single_assignment_roles:
        for finding in report.of_type(
            InefficiencyType.SINGLE_ASSIGNMENT_ROLE
        ):
            plan.suggestions.append(
                ReviewSuggestion(
                    message=finding.message,
                    role_ids=finding.entity_ids,
                    axis=finding.axis,
                )
            )

    return plan
