"""Remediation: turn findings into a reviewable consolidation plan.

The paper is explicit that inefficiencies "must not be fixed
automatically" (§III-A) — an administrator reviews each instance.  This
package keeps that boundary as an API shape:

1. :func:`~repro.remediation.planner.build_plan` converts a
   :class:`~repro.core.report.Report` into a
   :class:`~repro.remediation.actions.RemediationPlan` — a list of
   concrete, individually-removable actions plus non-actionable review
   suggestions;
2. the administrator inspects (and prunes) the plan;
3. :func:`~repro.remediation.apply.apply_plan` executes it on a *copy*
   of the state, re-validating every action against the live data and —
   unless explicitly disabled — proving that no user's effective
   permission set changed (:class:`repro.exceptions.SafetyViolationError`
   otherwise).

:mod:`~repro.remediation.metrics` quantifies the reduction, reproducing
the paper's "~10% of all roles" headline on the planted dataset.
"""

from repro.remediation.actions import (
    MergeRoles,
    RemediationAction,
    RemediationPlan,
    RemoveNode,
    RemoveShadowedRole,
    ReviewSuggestion,
)
from repro.remediation.apply import apply_plan
from repro.remediation.convergence import (
    CleanupRound,
    ConvergenceResult,
    run_to_fixed_point,
)
from repro.remediation.metrics import ReductionMetrics, measure_reduction
from repro.remediation.planner import PlannerOptions, build_plan

__all__ = [
    "MergeRoles",
    "RemediationAction",
    "RemediationPlan",
    "RemoveNode",
    "RemoveShadowedRole",
    "ReviewSuggestion",
    "PlannerOptions",
    "build_plan",
    "apply_plan",
    "CleanupRound",
    "ConvergenceResult",
    "run_to_fixed_point",
    "ReductionMetrics",
    "measure_reduction",
]
