"""Remediation action types and the plan container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.entities import EntityKind
from repro.core.taxonomy import Axis


@dataclass(frozen=True, slots=True)
class RemoveNode:
    """Remove a standalone or one-sided entity.

    ``kind`` says what is removed; ``reason`` records which finding
    justified it (shown to the reviewing administrator).
    """

    kind: EntityKind
    entity_id: str
    reason: str

    def describe(self) -> str:
        return f"remove {self.kind.value} {self.entity_id!r} ({self.reason})"


@dataclass(frozen=True, slots=True)
class MergeRoles:
    """Merge a duplicate-role group into one keeper role.

    ``axis`` is the side on which the group's sets are identical:

    * ``Axis.USERS`` — all members have the same user set; merging moves
      each removed role's *permissions* onto the keeper.  Every shared
      user already received the union of the group's permissions through
      their multiple memberships, so effective access is unchanged.
    * ``Axis.PERMISSIONS`` — symmetric: members share a permission set;
      merging moves each removed role's *users* onto the keeper.
    """

    keep_role_id: str
    remove_role_ids: tuple[str, ...]
    axis: Axis

    def __post_init__(self) -> None:
        if not self.remove_role_ids:
            raise ValueError("MergeRoles needs at least one role to remove")
        if self.keep_role_id in self.remove_role_ids:
            raise ValueError("keeper role cannot also be removed")
        object.__setattr__(
            self, "remove_role_ids", tuple(self.remove_role_ids)
        )

    def describe(self) -> str:
        removed = ", ".join(self.remove_role_ids)
        return (
            f"merge roles [{removed}] into {self.keep_role_id!r} "
            f"(identical {self.axis.value})"
        )


@dataclass(frozen=True, slots=True)
class RemoveShadowedRole:
    """Remove a role fully dominated by another role.

    Valid only while ``users(role) ⊆ users(shadowed_by)`` and
    ``permissions(role) ⊆ permissions(shadowed_by)`` — re-verified at
    apply time.  Under that invariant every user of the removed role
    keeps every permission through the shadowing role.
    """

    role_id: str
    shadowed_by: str

    def __post_init__(self) -> None:
        if self.role_id == self.shadowed_by:
            raise ValueError("a role cannot be shadowed by itself")

    def describe(self) -> str:
        return (
            f"remove role {self.role_id!r} "
            f"(shadowed by {self.shadowed_by!r})"
        )


RemediationAction = RemoveNode | MergeRoles | RemoveShadowedRole


@dataclass(frozen=True, slots=True)
class ReviewSuggestion:
    """A non-actionable pointer the administrator should look at.

    Similar-role groups and single-assignment roles land here: the paper
    presents them as consolidation *candidates* whose resolution needs a
    human decision (which users/permissions the merged role should carry).
    """

    message: str
    role_ids: tuple[str, ...]
    axis: Axis | None = None

    def describe(self) -> str:
        return self.message


@dataclass
class RemediationPlan:
    """An ordered list of actions plus review suggestions.

    Plans are value objects: build one from a report, drop the actions
    the administrator rejects (:meth:`without`), then hand it to
    :func:`repro.remediation.apply.apply_plan`.
    """

    actions: list[RemediationAction] = field(default_factory=list)
    suggestions: list[ReviewSuggestion] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[RemediationAction]:
        return iter(self.actions)

    @property
    def n_role_removals(self) -> int:
        """Roles that would disappear if the plan were applied."""
        total = 0
        for action in self.actions:
            if isinstance(action, MergeRoles):
                total += len(action.remove_role_ids)
            elif (
                isinstance(action, RemoveNode)
                and action.kind is EntityKind.ROLE
            ):
                total += 1
            elif isinstance(action, RemoveShadowedRole):
                total += 1
        return total

    def without(self, *indices: int) -> "RemediationPlan":
        """A copy of the plan minus the actions at ``indices``."""
        dropped = set(indices)
        return RemediationPlan(
            actions=[
                action
                for position, action in enumerate(self.actions)
                if position not in dropped
            ],
            suggestions=list(self.suggestions),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable plan (for review UIs / audit logs)."""
        serialised: list[dict[str, Any]] = []
        for action in self.actions:
            if isinstance(action, RemoveNode):
                serialised.append(
                    {
                        "action": "remove_node",
                        "kind": action.kind.value,
                        "entity_id": action.entity_id,
                        "reason": action.reason,
                    }
                )
            elif isinstance(action, MergeRoles):
                serialised.append(
                    {
                        "action": "merge_roles",
                        "keep": action.keep_role_id,
                        "remove": list(action.remove_role_ids),
                        "axis": action.axis.value,
                    }
                )
            else:
                serialised.append(
                    {
                        "action": "remove_shadowed_role",
                        "role": action.role_id,
                        "shadowed_by": action.shadowed_by,
                    }
                )
        return {
            "actions": serialised,
            "suggestions": [
                {
                    "message": suggestion.message,
                    "role_ids": list(suggestion.role_ids),
                    "axis": suggestion.axis.value if suggestion.axis else None,
                }
                for suggestion in self.suggestions
            ],
        }

    def describe(self) -> str:
        """Multi-line human-readable plan."""
        lines = [f"remediation plan: {len(self.actions)} actions"]
        for position, action in enumerate(self.actions):
            lines.append(f"  [{position:>4}] {action.describe()}")
        if self.suggestions:
            lines.append(f"suggestions for review: {len(self.suggestions)}")
            for suggestion in self.suggestions:
                lines.append(f"  - {suggestion.describe()}")
        return "\n".join(lines)
