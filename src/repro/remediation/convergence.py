"""Fixed-point cleanup: the paper's "run periodically" loop as an API.

The paper argues the detection framework should run on a schedule; the
approximate baseline even relies on it ("results converge gradually to
the optimal solution over time").  :func:`run_to_fixed_point` packages
that loop: analyse → plan → apply, repeated until a round produces no
actionable findings, with full per-round history for audit trails.

Convergence is guaranteed for the exact finders because every applied
action strictly removes at least one entity, and detection is
deterministic; ``max_rounds`` is a backstop for approximate finders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import AnalysisConfig, analyze
from repro.core.report import Report
from repro.core.state import RbacState
from repro.exceptions import RemediationError
from repro.remediation.actions import RemediationPlan
from repro.remediation.apply import apply_plan
from repro.remediation.metrics import ReductionMetrics, measure_reduction
from repro.remediation.planner import PlannerOptions, build_plan


@dataclass
class CleanupRound:
    """One analyse-plan-apply iteration."""

    index: int
    report: Report
    plan: RemediationPlan
    roles_after: int


@dataclass
class ConvergenceResult:
    """Outcome of :func:`run_to_fixed_point`."""

    initial_state: RbacState
    final_state: RbacState
    rounds: list[CleanupRound] = field(default_factory=list)
    converged: bool = False

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def reduction(self) -> ReductionMetrics:
        """Total reduction across all rounds."""
        return measure_reduction(self.initial_state, self.final_state)

    def describe(self) -> str:
        lines = [
            f"cleanup {'converged' if self.converged else 'stopped'} after "
            f"{self.n_rounds} round(s)"
        ]
        for round_info in self.rounds:
            lines.append(
                f"  round {round_info.index}: "
                f"{len(round_info.plan.actions)} actions -> "
                f"{round_info.roles_after} roles remaining"
            )
        lines.append(f"total: {self.reduction.describe()}")
        return "\n".join(lines)


def run_to_fixed_point(
    state: RbacState,
    config: AnalysisConfig | None = None,
    planner_options: PlannerOptions | None = None,
    max_rounds: int = 10,
    validate_safety: bool = True,
) -> ConvergenceResult:
    """Iterate analyse → plan → apply until nothing actionable remains.

    The input state is never modified; each round works on the previous
    round's output.  Raises :class:`RemediationError` if ``max_rounds``
    passes without reaching a fixed point (which indicates either a
    pathological dataset or a non-deterministic finder configuration).
    """
    result = ConvergenceResult(initial_state=state, final_state=state)
    current = state
    for index in range(1, max_rounds + 1):
        report = analyze(current, config)
        plan = build_plan(report, planner_options)
        if not plan.actions:
            result.converged = True
            break
        current = apply_plan(current, plan, validate_safety=validate_safety)
        result.rounds.append(
            CleanupRound(
                index=index,
                report=report,
                plan=plan,
                roles_after=current.n_roles,
            )
        )
    else:
        result.final_state = current
        raise RemediationError(
            f"cleanup did not reach a fixed point in {max_rounds} rounds"
        )
    result.final_state = current
    return result
