"""Reduction metrics: quantify what a remediation pass achieved.

Reproduces the arithmetic behind the paper's headline that consolidating
duplicate-role groups alone removes ~10% of all roles in the real
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.state import RbacState


@dataclass(frozen=True)
class ReductionMetrics:
    """Before/after dataset sizes and the derived reductions."""

    roles_before: int
    roles_after: int
    users_before: int
    users_after: int
    permissions_before: int
    permissions_after: int
    user_edges_before: int
    user_edges_after: int
    permission_edges_before: int
    permission_edges_after: int

    @property
    def roles_removed(self) -> int:
        return self.roles_before - self.roles_after

    @property
    def role_reduction_fraction(self) -> float:
        """Fraction of roles removed (the paper's ~10% headline)."""
        if self.roles_before == 0:
            return 0.0
        return self.roles_removed / self.roles_before

    @property
    def edges_removed(self) -> int:
        before = self.user_edges_before + self.permission_edges_before
        after = self.user_edges_after + self.permission_edges_after
        return before - after

    def describe(self) -> str:
        return (
            f"roles: {self.roles_before} -> {self.roles_after} "
            f"(-{self.roles_removed}, {self.role_reduction_fraction:.1%}); "
            f"users: {self.users_before} -> {self.users_after}; "
            f"permissions: {self.permissions_before} -> "
            f"{self.permissions_after}; "
            f"assignment edges removed: {self.edges_removed}"
        )


def measure_reduction(
    before: RbacState, after: RbacState
) -> ReductionMetrics:
    """Compare two states (typically pre/post :func:`apply_plan`)."""
    return ReductionMetrics(
        roles_before=before.n_roles,
        roles_after=after.n_roles,
        users_before=before.n_users,
        users_after=after.n_users,
        permissions_before=before.n_permissions,
        permissions_after=after.n_permissions,
        user_edges_before=before.n_user_assignments,
        user_edges_after=after.n_user_assignments,
        permission_edges_before=before.n_permission_assignments,
        permission_edges_after=after.n_permission_assignments,
    )
