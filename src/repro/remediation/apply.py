"""Apply a remediation plan to a copy of an RBAC state.

Every action is re-validated against the live state at apply time — a
plan built from a stale report fails with :class:`RemediationError`
rather than silently corrupting data.  Unless disabled, the whole
application is additionally wrapped in the safety proof: the effective
permission set of every surviving user must be byte-for-byte identical
before and after (:class:`SafetyViolationError` otherwise).
"""

from __future__ import annotations

from repro.core.entities import EntityKind
from repro.core.state import RbacState
from repro.core.taxonomy import Axis
from repro.exceptions import RemediationError, SafetyViolationError
from repro.remediation.actions import (
    MergeRoles,
    RemediationPlan,
    RemoveNode,
    RemoveShadowedRole,
)


def apply_plan(
    state: RbacState,
    plan: RemediationPlan,
    validate_safety: bool = True,
) -> RbacState:
    """Execute ``plan`` on a copy of ``state`` and return the copy.

    Parameters
    ----------
    state:
        The state the plan was built for; never modified.
    plan:
        The (possibly administrator-pruned) plan.
    validate_safety:
        Prove that no surviving user's effective permissions changed.
        Costs one extra pass over the dataset; disable only for bulk
        experiments on synthetic data.
    """
    before = state.effective_permission_map() if validate_safety else None
    result = state.copy()
    removed_users: set[str] = set()
    removed_permissions: set[str] = set()

    for position, action in enumerate(plan.actions):
        try:
            if isinstance(action, RemoveNode):
                _apply_remove(result, action, removed_users, removed_permissions)
            elif isinstance(action, MergeRoles):
                _apply_merge(result, action)
            elif isinstance(action, RemoveShadowedRole):
                _apply_remove_shadowed(result, action)
            else:  # pragma: no cover - plans only contain the two types
                raise RemediationError(
                    f"unknown action type: {type(action).__name__}"
                )
        except RemediationError as error:
            raise RemediationError(
                f"action #{position} ({action.describe()}): {error}"
            ) from error

    if validate_safety:
        assert before is not None
        after = result.effective_permission_map()
        for user_id, had in before.items():
            if user_id in removed_users:
                continue
            expected = had - removed_permissions
            got = after.get(user_id, frozenset())
            if got != expected:
                gained = sorted(got - expected)[:5]
                lost = sorted(expected - got)[:5]
                raise SafetyViolationError(
                    f"user {user_id!r} effective permissions changed: "
                    f"gained={gained} lost={lost}"
                )
    return result


def _apply_remove(
    state: RbacState,
    action: RemoveNode,
    removed_users: set[str],
    removed_permissions: set[str],
) -> None:
    if action.kind is EntityKind.USER:
        if not state.has_user(action.entity_id):
            raise RemediationError("user no longer exists")
        if state.roles_of_user(action.entity_id):
            raise RemediationError(
                "user has role assignments; the plan is stale"
            )
        state.remove_user(action.entity_id)
        removed_users.add(action.entity_id)
    elif action.kind is EntityKind.PERMISSION:
        if not state.has_permission(action.entity_id):
            raise RemediationError("permission no longer exists")
        if state.roles_of_permission(action.entity_id):
            raise RemediationError(
                "permission is linked to roles; the plan is stale"
            )
        state.remove_permission(action.entity_id)
        removed_permissions.add(action.entity_id)
    else:
        if not state.has_role(action.entity_id):
            raise RemediationError("role no longer exists")
        users = state.users_of_role(action.entity_id)
        permissions = state.permissions_of_role(action.entity_id)
        if users and permissions:
            raise RemediationError(
                "role has both users and permissions; removing it would "
                "change effective access (the plan is stale)"
            )
        state.remove_role(action.entity_id)


def _apply_remove_shadowed(
    state: RbacState, action: RemoveShadowedRole
) -> None:
    """Remove a shadowed role after re-proving the domination invariant."""
    if not state.has_role(action.role_id):
        raise RemediationError(f"role {action.role_id!r} no longer exists")
    if not state.has_role(action.shadowed_by):
        raise RemediationError(
            f"shadowing role {action.shadowed_by!r} no longer exists"
        )
    users = state.users_of_role(action.role_id)
    permissions = state.permissions_of_role(action.role_id)
    if not users <= state.users_of_role(action.shadowed_by):
        raise RemediationError(
            f"role {action.role_id!r} is no longer user-dominated by "
            f"{action.shadowed_by!r}; the plan is stale"
        )
    if not permissions <= state.permissions_of_role(action.shadowed_by):
        raise RemediationError(
            f"role {action.role_id!r} is no longer permission-dominated by "
            f"{action.shadowed_by!r}; the plan is stale"
        )
    state.remove_role(action.role_id)


def _apply_merge(state: RbacState, action: MergeRoles) -> None:
    keeper = action.keep_role_id
    if not state.has_role(keeper):
        raise RemediationError(f"keeper role {keeper!r} no longer exists")

    if action.axis is Axis.USERS:
        shared = state.users_of_role(keeper)
        side = state.users_of_role
    else:
        shared = state.permissions_of_role(keeper)
        side = state.permissions_of_role

    # Re-validate the group invariant against the live state.
    for role_id in action.remove_role_ids:
        if not state.has_role(role_id):
            raise RemediationError(f"role {role_id!r} no longer exists")
        if side(role_id) != shared:
            raise RemediationError(
                f"role {role_id!r} no longer shares the same "
                f"{action.axis.value} as {keeper!r}; the plan is stale"
            )

    for role_id in action.remove_role_ids:
        if action.axis is Axis.USERS:
            # Same users: fold the removed role's permissions into keeper.
            for permission_id in state.permissions_of_role(role_id):
                state.assign_permission(keeper, permission_id)
        else:
            # Same permissions: fold the removed role's users into keeper.
            for user_id in state.users_of_role(role_id):
                state.assign_user(keeper, user_id)
        state.remove_role(role_id)
