"""Experiment runners for every figure and table in the paper (§IV).

Workload parameters follow §IV-A: cluster proportion 0.2, at most 10
identical roles per cluster, 5 repetitions per configuration.  The sweep
runners parameterise the axis sizes so the same code drives both the
paper-scale runs (1,000–10,000) and the quick CI-sized runs used by the
pytest benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.benchharness.timing import TimingStats, time_call
from repro.core.engine import AnalysisConfig, analyze
from repro.core.grouping import make_group_finder
from repro.datagen.matrixgen import MatrixSpec, generate_matrix
from repro.datagen.orggen import OrgProfile, generate_org
from repro.exceptions import ConfigurationError
from repro.remediation import apply_plan, build_plan, measure_reduction

#: Method key -> display label used in figures (paper terminology).
METHOD_LABELS: dict[str, str] = {
    "dbscan": "Exact clustering (DBSCAN)",
    "hnsw": "Approximate clustering (HNSW)",
    "cooccurrence": "Our algorithm (co-occurrence)",
    "hash": "Hash grouping (ablation)",
    "lsh": "MinHash LSH (extension)",
}

#: The three methods the paper compares, in its plotting order.
PAPER_METHODS: tuple[str, ...] = ("dbscan", "hnsw", "cooccurrence")


@dataclass(frozen=True)
class SweepPoint:
    """One (x, method) cell of a sweep figure."""

    x: int
    method: str
    stats: TimingStats
    n_groups: int


@dataclass
class SweepResult:
    """A full sweep: the series behind one figure."""

    name: str
    x_label: str
    fixed_label: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, method: str) -> list[SweepPoint]:
        """Points of one method, ordered by x."""
        return sorted(
            (p for p in self.points if p.method == method),
            key=lambda p: p.x,
        )

    def methods(self) -> list[str]:
        ordered: list[str] = []
        for point in self.points:
            if point.method not in ordered:
                ordered.append(point.method)
        return ordered


def _finder_options_for(method: str, options: dict | None) -> dict:
    return dict(options or {})


def run_users_sweep(
    user_counts: Sequence[int],
    n_roles: int = 1_000,
    methods: Sequence[str] = PAPER_METHODS,
    repeats: int = 5,
    max_differences: int = 0,
    cluster_proportion: float = 0.2,
    max_cluster_size: int = 10,
    seed: int = 0,
    finder_options: dict[str, dict] | None = None,
) -> SweepResult:
    """Figure 2: duration vs number of users (roles fixed).

    The paper fixes roles at 1,000 and sweeps users 1,000 → 10,000.
    """
    return _run_sweep(
        name="fig2_users_sweep",
        x_label="users",
        fixed_label=f"roles={n_roles}",
        x_values=user_counts,
        spec_for=lambda n_users: MatrixSpec(
            n_roles=n_roles,
            n_cols=n_users,
            cluster_proportion=cluster_proportion,
            max_cluster_size=max_cluster_size,
            differences=max_differences,
            seed=seed,
        ),
        methods=methods,
        repeats=repeats,
        max_differences=max_differences,
        finder_options=finder_options,
    )


def run_roles_sweep(
    role_counts: Sequence[int],
    n_users: int = 1_000,
    methods: Sequence[str] = PAPER_METHODS,
    repeats: int = 5,
    max_differences: int = 0,
    cluster_proportion: float = 0.2,
    max_cluster_size: int = 10,
    seed: int = 0,
    finder_options: dict[str, dict] | None = None,
) -> SweepResult:
    """Figure 3: duration vs number of roles (users fixed).

    The paper fixes users at 1,000 and sweeps roles 1,000 → 10,000;
    this is where the crossover between exact and approximate clustering
    appears and where the custom algorithm's gap is widest.
    """
    return _run_sweep(
        name="fig3_roles_sweep",
        x_label="roles",
        fixed_label=f"users={n_users}",
        x_values=role_counts,
        spec_for=lambda n_roles: MatrixSpec(
            n_roles=n_roles,
            n_cols=n_users,
            cluster_proportion=cluster_proportion,
            max_cluster_size=max_cluster_size,
            differences=max_differences,
            seed=seed,
        ),
        methods=methods,
        repeats=repeats,
        max_differences=max_differences,
        finder_options=finder_options,
    )


def _run_sweep(
    name: str,
    x_label: str,
    fixed_label: str,
    x_values: Sequence[int],
    spec_for,
    methods: Sequence[str],
    repeats: int,
    max_differences: int,
    finder_options: dict[str, dict] | None,
) -> SweepResult:
    if not x_values:
        raise ConfigurationError("sweep needs at least one x value")
    result = SweepResult(name=name, x_label=x_label, fixed_label=fixed_label)
    for x in x_values:
        generated = generate_matrix(spec_for(int(x)))
        for method in methods:
            finder = make_group_finder(
                method, **_finder_options_for(method, (finder_options or {}).get(method))
            )
            stats, groups = time_call(
                lambda: finder.find_groups(generated.matrix, max_differences),
                repeats=repeats,
            )
            result.points.append(
                SweepPoint(
                    x=int(x),
                    method=method,
                    stats=stats,
                    n_groups=len(groups),
                )
            )
    return result


def run_density_sweep(
    densities: Sequence[float],
    n_roles: int = 1_000,
    n_cols: int = 1_000,
    methods: Sequence[str] = ("dbscan", "cooccurrence"),
    repeats: int = 5,
    seed: int = 0,
) -> SweepResult:
    """Extension experiment: duration vs matrix density.

    Not a paper figure.  The custom algorithm's cost tracks the number of
    stored entries of ``C = M·Mᵀ``, which grows roughly quadratically in
    the row density, while DBSCAN's dense scans are density-insensitive —
    so there is a density above which the baselines catch up.  RBAC data
    lives far below that point (a role touches a handful of users out of
    tens of thousands), which is exactly why the paper's algorithm wins
    on its domain.

    ``x`` values in the result are densities in tenths of a percent
    (e.g. density 0.05 → x = 50) so the integer-typed sweep points stay
    meaningful.
    """
    if not densities:
        raise ConfigurationError("sweep needs at least one density")
    result = SweepResult(
        name="density_sweep",
        x_label="density_permille",
        fixed_label=f"roles={n_roles}, cols={n_cols}",
    )
    for density in densities:
        generated = generate_matrix(
            MatrixSpec(
                n_roles=n_roles,
                n_cols=n_cols,
                cluster_proportion=0.2,
                max_cluster_size=10,
                row_density=float(density),
                seed=seed,
            )
        )
        for method in methods:
            finder = make_group_finder(method)
            stats, groups = time_call(
                lambda: finder.find_groups(generated.matrix, 0),
                repeats=repeats,
            )
            result.points.append(
                SweepPoint(
                    x=int(round(density * 1000)),
                    method=method,
                    stats=stats,
                    n_groups=len(groups),
                )
            )
    return result


@dataclass
class RealDatasetResult:
    """The §IV-B experiment output: counts, timing, consolidation."""

    profile: OrgProfile
    expected_counts: dict[str, int]
    measured_counts: dict[str, int]
    analysis_seconds: float
    detector_timings: dict[str, float]
    consolidation: dict[str, Any]
    reduction_description: str

    def count_rows(self) -> list[tuple[str, int, int]]:
        """(metric, expected, measured) rows for table rendering."""
        return [
            (key, self.expected_counts.get(key, 0), value)
            for key, value in self.measured_counts.items()
        ]


def run_real_dataset(
    profile: OrgProfile | None = None,
    finder: str = "cooccurrence",
    apply_consolidation: bool = True,
) -> RealDatasetResult:
    """The §IV-B real-organisation experiment on the planted stand-in.

    Generates the organisation, runs the full five-type analysis with the
    chosen group finder, optionally builds and applies the consolidation
    plan, and returns everything needed to print the paper-vs-measured
    table.
    """
    profile = profile or OrgProfile.small(divisor=100)
    org = generate_org(profile)
    config = AnalysisConfig(finder=finder, similarity_threshold=1)
    report = analyze(org.state, config)

    consolidation: dict[str, Any] = report.consolidation_potential()
    reduction_description = ""
    if apply_consolidation:
        plan = build_plan(report)
        cleaned = apply_plan(org.state, plan)
        metrics = measure_reduction(org.state, cleaned)
        reduction_description = metrics.describe()
        consolidation["applied_roles_removed"] = metrics.roles_removed
        consolidation["applied_role_reduction_fraction"] = (
            metrics.role_reduction_fraction
        )

    return RealDatasetResult(
        profile=profile,
        expected_counts=org.expected_counts(),
        measured_counts=report.counts(),
        analysis_seconds=report.total_seconds,
        detector_timings=dict(report.timings),
        consolidation=consolidation,
        reduction_description=reduction_description,
    )
