"""Benchmark harness for the paper's evaluation section (§IV).

* :mod:`~repro.benchharness.timing` — repeat/mean/std measurement, as in
  the paper ("each experiment five times … average and standard
  deviation").
* :mod:`~repro.benchharness.experiments` — one runner per figure/table:
  Figure 2 (duration vs user count), Figure 3 (duration vs role count),
  and the §IV-B real-dataset table (planted synthetic stand-in), plus the
  consolidation headline.
* :mod:`~repro.benchharness.figures` — plain-text/CSV rendering of the
  measured series next to the paper's reported values.
"""

from repro.benchharness.timing import TimingStats, time_call
from repro.benchharness.experiments import (
    METHOD_LABELS,
    RealDatasetResult,
    SweepPoint,
    SweepResult,
    run_density_sweep,
    run_real_dataset,
    run_roles_sweep,
    run_users_sweep,
)
from repro.benchharness.figures import (
    render_ascii_chart,
    render_real_dataset_table,
    render_series_csv,
    render_series_table,
)

__all__ = [
    "TimingStats",
    "time_call",
    "METHOD_LABELS",
    "SweepPoint",
    "SweepResult",
    "RealDatasetResult",
    "run_users_sweep",
    "run_density_sweep",
    "run_roles_sweep",
    "run_real_dataset",
    "render_ascii_chart",
    "render_real_dataset_table",
    "render_series_csv",
    "render_series_table",
]
