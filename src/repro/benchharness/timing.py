"""Repeat-and-aggregate wall-clock timing.

The paper runs each configuration five times and reports mean and
standard deviation; :func:`time_call` reproduces that protocol.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Recorder


@dataclass(frozen=True)
class TimingStats:
    """Aggregated wall-clock measurements of one configuration."""

    runs: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ConfigurationError("TimingStats needs at least one run")
        object.__setattr__(self, "runs", tuple(float(r) for r in self.runs))

    @property
    def n(self) -> int:
        return len(self.runs)

    @property
    def mean(self) -> float:
        return sum(self.runs) / len(self.runs)

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 for a single run)."""
        if len(self.runs) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((r - mu) ** 2 for r in self.runs) / len(self.runs))

    @property
    def minimum(self) -> float:
        return min(self.runs)

    @property
    def maximum(self) -> float:
        return max(self.runs)

    def __str__(self) -> str:
        return f"{self.mean:.3f}s ± {self.std:.3f}s (n={self.n})"


def time_call(
    fn: Callable[[], Any],
    repeats: int = 5,
    recorder: "Recorder | None" = None,
) -> tuple[TimingStats, Any]:
    """Call ``fn`` ``repeats`` times; return (stats, last result).

    Uses ``time.perf_counter``.  The callable should be self-contained:
    any setup that must not be timed belongs outside it.

    With a ``recorder`` (see :mod:`repro.obs`), each repetition runs
    inside a ``bench.run`` span installed as the current recorder, so
    any instrumented code under measurement (the engine, the kernels)
    contributes its spans and counters to the same trace schema the
    analysis pipeline emits; the reported durations are then exactly
    the span durations.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    durations = []
    result: Any = None
    if recorder is None:
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            durations.append(time.perf_counter() - start)
    else:
        from repro.obs import use_recorder

        with use_recorder(recorder):
            for repeat in range(repeats):
                with recorder.span("bench.run", repeat=repeat) as span:
                    result = fn()
                durations.append(span.duration)
    return TimingStats(tuple(durations)), result
