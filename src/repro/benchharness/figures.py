"""Plain-text rendering of experiment results.

The paper plots Figures 2/3 as duration-vs-size line charts; the harness
prints the identical series as aligned text tables and CSV so results can
be compared against the paper (and re-plotted by any tool).
"""

from __future__ import annotations

import io

from repro.benchharness.experiments import (
    METHOD_LABELS,
    RealDatasetResult,
    SweepResult,
)


def render_series_table(result: SweepResult) -> str:
    """Aligned table: one row per x value, one column per method."""
    methods = result.methods()
    header = [f"{result.x_label:>10}"] + [
        f"{METHOD_LABELS.get(m, m):>34}" for m in methods
    ]
    lines = [
        f"{result.name} ({result.fixed_label}; seconds, mean ± std)",
        "".join(header),
    ]
    x_values = sorted({p.x for p in result.points})
    by_key = {(p.x, p.method): p for p in result.points}
    for x in x_values:
        cells = [f"{x:>10}"]
        for method in methods:
            point = by_key.get((x, method))
            if point is None:
                cells.append(f"{'—':>34}")
            else:
                cells.append(
                    f"{point.stats.mean:>24.3f} ± {point.stats.std:<7.3f}"
                )
        lines.append("".join(cells))
    return "\n".join(lines)


def render_series_csv(result: SweepResult) -> str:
    """CSV: x,method,mean_seconds,std_seconds,n_groups."""
    buffer = io.StringIO()
    buffer.write(f"{result.x_label},method,mean_seconds,std_seconds,n_groups\n")
    for point in sorted(result.points, key=lambda p: (p.x, p.method)):
        buffer.write(
            f"{point.x},{point.method},{point.stats.mean:.6f},"
            f"{point.stats.std:.6f},{point.n_groups}\n"
        )
    return buffer.getvalue()


def render_ascii_chart(
    result: SweepResult, width: int = 60, height: int = 16
) -> str:
    """Log-scale ASCII line chart of a sweep — a terminal rendition of
    the paper's Figure 2/3 plots.

    Each method gets a marker; the y axis is log10(seconds) because the
    methods span several orders of magnitude (the whole point of the
    figures).
    """
    import math

    points = [p for p in result.points if p.stats.mean > 0]
    if not points:
        return f"{result.name}: no data"

    markers = "o*x+#@"
    methods = result.methods()
    xs = sorted({p.x for p in result.points})
    y_values = [math.log10(p.stats.mean) for p in points]
    y_min, y_max = min(y_values), max(y_values)
    if y_max - y_min < 1e-9:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for p in points:
        column = (
            0
            if len(xs) == 1
            else int((xs.index(p.x)) * (width - 1) / (len(xs) - 1))
        )
        level = math.log10(p.stats.mean)
        row = int((y_max - level) * (height - 1) / (y_max - y_min))
        marker = markers[methods.index(p.method) % len(markers)]
        grid[row][column] = marker

    lines = [f"{result.name} ({result.fixed_label}) — log10(seconds)"]
    for row_index, row in enumerate(grid):
        level = y_max - row_index * (y_max - y_min) / (height - 1)
        lines.append(f"{level:7.2f} |{''.join(row)}")
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{result.x_label}: {xs[0]} … {xs[-1]}"
    )
    for method in methods:
        marker = markers[methods.index(method) % len(markers)]
        lines.append(f"  {marker} = {METHOD_LABELS.get(method, method)}")
    return "\n".join(lines)


def render_real_dataset_table(
    result: RealDatasetResult, paper_counts: dict[str, int] | None = None
) -> str:
    """Planted-vs-measured (and optionally paper-reported) count table."""
    lines = [
        "real-dataset experiment (§IV-B stand-in)",
        f"profile: users={result.profile.n_users} "
        f"roles={result.profile.n_roles} "
        f"permissions={result.profile.n_permissions}",
        f"analysis time: {result.analysis_seconds:.2f}s",
        "",
    ]
    header = f"{'metric':<30}{'planted':>10}{'measured':>10}"
    if paper_counts:
        header += f"{'paper':>10}"
    lines.append(header)
    for metric, expected, measured in result.count_rows():
        row = f"{metric:<30}{expected:>10}{measured:>10}"
        if paper_counts:
            row += f"{paper_counts.get(metric, 0):>10}"
        lines.append(row)
    lines.append("")
    consolidation = result.consolidation
    lines.append(
        "duplicate-group consolidation could remove "
        f"{consolidation['removable_total_upper_bound']} roles "
        f"({consolidation['fraction_of_roles']:.1%} of all roles)"
    )
    if result.reduction_description:
        lines.append(f"applied: {result.reduction_description}")
    return "\n".join(lines)
