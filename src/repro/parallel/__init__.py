"""Parallel execution substrate shared by the grouping kernels and the
analysis engine.

See :mod:`repro.parallel.executor` for the execution model and the
determinism contract.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    resolve_workers,
    validate_workers,
)

__all__ = ["ParallelExecutor", "resolve_workers", "validate_workers"]
