"""Parallel execution substrate shared by the grouping kernels and the
analysis engine.

See :mod:`repro.parallel.executor` for the execution model and the
determinism contract.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    resolve_workers,
    validate_workers,
)
from repro.parallel.pool import WorkerPool, current_pool, use_pool
from repro.parallel.shm import (
    AttachedSegment,
    SegmentHandle,
    SegmentManifest,
    SharedMemoryUnavailable,
    attach,
    publish,
)

__all__ = [
    "AttachedSegment",
    "ParallelExecutor",
    "SegmentHandle",
    "SegmentManifest",
    "SharedMemoryUnavailable",
    "WorkerPool",
    "attach",
    "current_pool",
    "publish",
    "resolve_workers",
    "use_pool",
    "validate_workers",
]
