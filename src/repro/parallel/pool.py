"""A reusable, context-managed worker pool for the scan data plane.

:class:`~repro.parallel.executor.ParallelExecutor` creates a fresh
``ProcessPoolExecutor`` per ``map`` call — correct, but the spawn cost
(fork + interpreter warm-up) and the ``initargs`` pickling cost recur on
every call.  :class:`WorkerPool` keeps one pool alive across calls:

* the engine installs one pool per ``analyze()`` (reused across axes);
* :class:`repro.service.AnalysisService` can hold one warm across
  requests, closing it — and any shared-memory segments it still owns —
  during SIGTERM drain;
* the blocked scan discovers the ambient pool via :func:`current_pool`
  and publishes arrays through shared memory instead of ``initargs``.

Because the pool outlives any single call, tasks must be self-contained
(no ``initializer``): the scan ships a tiny shared-memory manifest per
task and workers rebuild views on attach.

The contextvar is pid-guarded: under ``fork`` a worker inherits the
parent's context, and a pool handle pointing at the parent's executor
must never be visible inside a child process.
"""

from __future__ import annotations

import contextvars
import logging
import os
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.obs import current_recorder
from repro.parallel.executor import resolve_workers
from repro.parallel.shm import SegmentHandle

logger = logging.getLogger(__name__)

_FALLBACK_ERRORS = (
    BrokenProcessPool,
    pickle.PicklingError,
    AttributeError,  # unpicklable closures/lambdas raise this
    OSError,  # no fork / no semaphores in restricted sandboxes
    PermissionError,
)


class WorkerPool:
    """A lazily-spawned, reusable process pool plus segment registry.

    The executor is created on the first :meth:`map` and reused by every
    later call until :meth:`close`.  Shared-memory segments registered
    via :meth:`adopt_segment` are closed (and therefore unlinked) with
    the pool, which is the service-drain cleanup guarantee: whatever the
    pool still owns when SIGTERM lands is released before exit.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = resolve_workers(n_workers)
        self._pid = os.getpid()
        self._executor: ProcessPoolExecutor | None = None
        self._segments: list[SegmentHandle] = []
        self._maps = 0
        self._closed = False
        # Safety net: unlink any still-registered segments even if the
        # owner forgets to close (e.g. a test bails early).
        self._finalizer = weakref.finalize(
            self, _close_resources, self._segments
        )

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def warm(self) -> bool:
        """Whether a live executor already exists (reuse is free)."""
        return self._executor is not None

    def adopt_segment(self, handle: SegmentHandle) -> SegmentHandle:
        """Tie a published segment's lifetime to the pool (drain safety).

        The scan still closes its segment eagerly when it finishes; this
        registry only guarantees unlink if it never gets the chance
        (service shutdown mid-analysis).
        """
        self._segments.append(handle)
        return handle

    def release_segment(self, handle: SegmentHandle) -> None:
        """Close a segment and drop it from the registry (idempotent)."""
        handle.close()
        if handle in self._segments:
            self._segments.remove(handle)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Order-preserving map over the (reused) pool.

        Mirrors :meth:`ParallelExecutor.map` semantics: serial for one
        worker or at most one task, serial fallback (with a WARNING and
        a ``parallel.fallbacks`` counter) when the pool cannot be used.
        Reuse of an already-warm executor is counted as
        ``parallel.pool_reuses`` so the saved spawns are observable.
        The span's duration feeds the ``parallel.map_seconds`` histogram.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        tasks: Sequence[Any] = list(items)
        recorder = current_recorder()
        try:
            with recorder.span("parallel.map") as span:
                return self._map(fn, tasks, span)
        finally:
            recorder.observe("parallel.map_seconds", span.duration)

    def _map(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], span: Any
    ) -> list[Any]:
        span.annotate(n_workers=self.n_workers, n_items=len(tasks))
        if self.n_workers <= 1 or len(tasks) <= 1:
            span.annotate(mode="serial")
            return [fn(task) for task in tasks]
        reused = self._executor is not None
        try:
            executor = self._ensure_executor()
            results = list(executor.map(fn, tasks))
        except _FALLBACK_ERRORS as error:
            reason = f"{type(error).__name__}: {error}"
            logger.warning(
                "worker pool unavailable (%s); running %d task(s) "
                "serially in-process", reason, len(tasks),
            )
            span.annotate(mode="serial-fallback", fallback=reason)
            span.add("parallel.fallbacks", 1)
            self._discard_executor()
            return [fn(task) for task in tasks]
        span.annotate(mode="pool", pool="warm" if reused else "cold")
        if reused:
            span.add("parallel.pool_reuses", 1)
        self._maps += 1
        return results

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._executor

    def _discard_executor(self) -> None:
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken pool teardown
                pass
            self._executor = None

    def close(self) -> None:
        """Shut the executor down and unlink any registered segments."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        _close_resources(self._segments)
        self._finalizer.detach()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("warm" if self.warm else "cold")
        return f"WorkerPool(n_workers={self.n_workers}, {state})"


def _close_resources(segments: list[SegmentHandle]) -> None:
    while segments:
        segments.pop().close()


_current_pool: contextvars.ContextVar[WorkerPool | None] = contextvars.ContextVar(
    "repro_worker_pool", default=None
)


def current_pool() -> WorkerPool | None:
    """The ambient :class:`WorkerPool`, if one is installed and usable.

    Returns ``None`` inside forked worker processes even though the
    contextvar was inherited (the parent's executor is not usable from a
    child), and ``None`` for pools that have been closed.
    """
    pool = _current_pool.get()
    if pool is None or pool.closed or pool._pid != os.getpid():
        return None
    return pool


@contextmanager
def use_pool(pool: WorkerPool) -> Iterator[WorkerPool]:
    """Install ``pool`` as the ambient pool for the ``with`` body.

    Does not close the pool on exit — lifetime belongs to the owner
    (engine per-analyze, or the service across requests).
    """
    token = _current_pool.set(pool)
    try:
        yield pool
    finally:
        _current_pool.reset(token)
