"""Zero-copy array publication over ``multiprocessing.shared_memory``.

The blocked co-occurrence scan ships large read-only arrays (CSR
``data``/``indices``/``indptr``, packed words, norms) to worker
processes.  Pickling them into every worker via ``initargs`` pays a full
serialise + copy per worker per call; publishing them once into a named
shared-memory segment lets every worker map the same physical pages
read-only and rebuild numpy views with no copy at all.

Model
-----
* :func:`publish` lays all arrays of a mapping into **one** segment
  (8-byte aligned) and returns a :class:`SegmentHandle` — the owner —
  plus a picklable :class:`SegmentManifest` describing each array's
  offset/shape/dtype.  The manifest is what crosses the process
  boundary; it is a few hundred bytes regardless of matrix size.
* Workers call :func:`attach` with the manifest and get back read-only
  numpy views over the mapped segment.  Attaching registers nothing
  with ``resource_tracker`` (see below), so worker exit never warns
  about, or worse unlinks, a segment it does not own.
* The owner :meth:`~SegmentHandle.close`\\ s the handle when the scan is
  done, which unlinks the name.  On Linux the mapping survives unlink,
  so in-flight workers are unaffected; the segment is freed when the
  last mapping closes.

``resource_tracker`` note: before CPython 3.13, *attaching* to a
segment registers it with the tracker exactly as creating one does, so
a worker exiting would emit spurious leak warnings and potentially
unlink a segment the parent still owns.  :func:`attach` uses
``track=False`` where available (3.13+) and unregisters manually
otherwise — the standard workaround.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro.exceptions import ReproError


class SharedMemoryUnavailable(ReproError):
    """Shared memory cannot be created in this environment.

    Raised by :func:`publish` when the platform refuses segment creation
    (no ``/dev/shm``, sandboxed semaphores, …).  Callers fall back to
    the pickled ``initargs`` path — shared memory is an optimisation,
    never a requirement.
    """


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a published segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to rebuild views: name + array specs.

    Picklable and tiny — this is the only thing shipped per task/worker
    when shared memory is active.
    """

    name: str
    size: int
    arrays: dict[str, ArraySpec]


class SegmentHandle:
    """Owning handle of a published segment; closing unlinks it."""

    def __init__(self, shm: shared_memory.SharedMemory, manifest: SegmentManifest):
        self._shm = shm
        self.manifest = manifest
        self._closed = False

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def nbytes(self) -> int:
        return self.manifest.size

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SegmentHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentHandle(name={self.name!r}, nbytes={self.nbytes})"


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


def publish(arrays: Mapping[str, np.ndarray]) -> SegmentHandle:
    """Copy ``arrays`` into one new shared-memory segment.

    Each array is laid out 8-byte aligned; the returned handle owns the
    segment and carries the manifest workers attach with.  Raises
    :class:`SharedMemoryUnavailable` when the platform cannot provide
    shared memory.
    """
    specs: dict[str, ArraySpec] = {}
    offset = 0
    contiguous: dict[str, np.ndarray] = {}
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        contiguous[key] = array
        offset = _align(offset)
        specs[key] = ArraySpec(offset, tuple(array.shape), array.dtype.str)
        offset += array.nbytes
    size = max(1, offset)
    try:
        shm = shared_memory.SharedMemory(create=True, size=size)
    except (OSError, PermissionError) as error:
        raise SharedMemoryUnavailable(
            f"cannot create shared memory segment: {error}"
        ) from error
    for key, array in contiguous.items():
        spec = specs[key]
        target = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype),
            buffer=shm.buf, offset=spec.offset,
        )
        target[...] = array
    manifest = SegmentManifest(name=shm.name, size=size, arrays=specs)
    return SegmentHandle(shm, manifest)


class AttachedSegment:
    """A worker-side read-only mapping of a published segment."""

    def __init__(self, manifest: SegmentManifest):
        self._shm = _attach_untracked(manifest.name)
        self.manifest = manifest
        views: dict[str, np.ndarray] = {}
        for key, spec in manifest.arrays.items():
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf, offset=spec.offset,
            )
            view.setflags(write=False)
            views[key] = view
        self.views = views

    def close(self) -> None:
        """Drop the views and close the mapping (never unlinks)."""
        # The numpy views hold exported pointers into the buffer; they
        # must be released before SharedMemory.close() will succeed.
        self.views = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view still alive
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttachedSegment(name={self.manifest.name!r}, "
            f"arrays={sorted(self.views)})"
        )


def attach(manifest: SegmentManifest) -> AttachedSegment:
    """Map a published segment and rebuild read-only array views.

    Zero-copy: every view aliases the shared pages directly.  The
    mapping is *not* registered with ``resource_tracker`` — the
    publishing process owns the segment's lifetime.
    """
    return AttachedSegment(manifest)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    try:
        # CPython 3.13+: opt out of resource tracking at attach time.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Older CPython registers attaches unconditionally.  Unregistering
    # *afterwards* is not enough: the tracker's cache is a set, so two
    # workers attaching the same segment collapse into one registration
    # but send two unregisters — the second KeyErrors inside the tracker
    # daemon.  Suppress the registration itself instead.  Workers are
    # single-threaded at attach time, so the swap is race-free.
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
