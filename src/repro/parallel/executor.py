"""Process-pool executor with a serial in-process fallback.

The scalability layer of the reproduction: the blocked co-occurrence
kernel fans matrix blocks out across workers, and the analysis engine
fans independent (detector, axis) work items the same way.  Both call
sites share one abstraction, :class:`ParallelExecutor`, which

* preserves input order (``map`` semantics, never completion order);
* runs serially in-process when one worker is requested, when there is
  at most one item, or when a process pool cannot be created or used
  (sandboxes without ``fork``/semaphores, unpicklable payloads) — the
  result is always identical, parallelism is purely an optimisation;
* supports a per-worker ``initializer`` so large read-only state (a CSR
  matrix, an analysis context) is shipped once per worker instead of
  once per task.

Determinism contract: given pure task functions, ``map`` returns exactly
what the serial loop ``[fn(item) for item in items]`` returns, in the
same order, for every worker count.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.obs import current_recorder

logger = logging.getLogger(__name__)


def validate_workers(n_workers: int | None) -> int | None:
    """Validate a worker-count option without resolving ``None``.

    The single source of truth for worker-count validation — both
    :class:`~repro.core.engine.AnalysisConfig` and
    :func:`resolve_workers` route through it, so the error message is
    identical everywhere.  Returns the normalised value (``None`` or an
    ``int >= 1``).
    """
    if n_workers is None:
        return None
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ConfigurationError(
            f"n_workers must be >= 1 or None, got {n_workers}"
        )
    return n_workers


def resolve_workers(n_workers: int | None) -> int:
    """Normalise a worker-count option.

    ``None`` means "use every core" (``os.cpu_count()``); any explicit
    value must be >= 1.
    """
    n_workers = validate_workers(n_workers)
    if n_workers is None:
        return max(1, os.cpu_count() or 1)
    return n_workers


class ParallelExecutor:
    """Order-preserving map over a process pool, or serially in-process.

    Parameters
    ----------
    n_workers:
        Worker processes to use.  ``1`` (the default) never creates a
        pool; ``None`` uses every available core.
    initializer / initargs:
        Optional per-worker initialisation, exactly as in
        :class:`concurrent.futures.ProcessPoolExecutor`.  The serial
        path calls it once in-process before mapping, so task functions
        can rely on it unconditionally.
    chunksize:
        Tasks handed to a worker per round-trip (forwarded to
        ``ProcessPoolExecutor.map``).
    """

    def __init__(
        self,
        n_workers: int | None = 1,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        chunksize: int = 1,
    ) -> None:
        self.n_workers = resolve_workers(n_workers)
        if chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self._initializer = initializer
        self._initargs = initargs
        self._chunksize = int(chunksize)
        #: Why the last ``map`` call ran serially instead of in a pool
        #: (``None`` if it ran in a pool or serial was requested).
        self.last_fallback_reason: str | None = None

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        The call is wrapped in a ``parallel.map`` span on the current
        recorder.  Execution facts (worker count, item count, fallback
        reason) are recorded as span *attributes*, never counters, so
        counter totals stay identical between serial and parallel runs
        of the same work.  The span's duration additionally feeds the
        ``parallel.map_seconds`` histogram.
        """
        tasks: Sequence[Any] = list(items)
        self.last_fallback_reason = None
        recorder = current_recorder()
        try:
            with recorder.span("parallel.map") as span:
                return self._map(fn, tasks, span)
        finally:
            recorder.observe("parallel.map_seconds", span.duration)

    def _map(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], span: Any
    ) -> list[Any]:
        span.annotate(n_workers=self.n_workers, n_items=len(tasks))
        if self.n_workers <= 1 or len(tasks) <= 1:
            span.annotate(mode="serial")
            return self._map_serial(fn, tasks)
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.n_workers, len(tasks)),
                initializer=self._initializer,
                initargs=self._initargs,
            ) as pool:
                results = list(pool.map(fn, tasks, chunksize=self._chunksize))
            span.annotate(mode="pool")
            return results
        except (
            BrokenProcessPool,
            pickle.PicklingError,
            AttributeError,  # unpicklable closures/lambdas raise this
            OSError,  # no fork / no semaphores in restricted sandboxes
            PermissionError,
        ) as error:
            # Task functions are required to be pure, so re-running the
            # whole batch serially is safe and yields identical results.
            self.last_fallback_reason = f"{type(error).__name__}: {error}"
            # Silent degradation hides capacity problems: surface the
            # fallback as a log line and a counter (visible in
            # Report.metrics and the service /metricz endpoint), not
            # just a span attribute.
            logger.warning(
                "process pool unavailable (%s); running %d task(s) "
                "serially in-process",
                self.last_fallback_reason,
                len(tasks),
            )
            span.annotate(
                mode="serial-fallback", fallback=self.last_fallback_reason
            )
            span.add("parallel.fallbacks", 1)
            return self._map_serial(fn, tasks)

    def _map_serial(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        if self._initializer is not None:
            self._initializer(*self._initargs)
        return [fn(task) for task in tasks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_workers={self.n_workers})"
