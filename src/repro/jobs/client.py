"""Producer-side convenience API over the job queue.

:class:`JobClient` is what the service (and tests, and scripts) use to
submit work and wait for it: a thin layer over
:class:`~repro.jobs.queue.JobQueue` that owns no execution — workers
attach separately via ``repro work``.  Waiting polls the queue file;
there is no push channel, by design, because the queue's one shared
artifact is the sqlite file and anything that can read it can wait on
it (including a process that was restarted in between).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.exceptions import ReproError
from repro.jobs.queue import JobQueue, JobRecord

__all__ = ["JobClient", "JobFailed", "JobWaitTimeout"]


class JobFailed(ReproError):
    """The awaited job reached a terminal non-``done`` state.

    Carries the terminal :class:`JobRecord` so callers can distinguish
    ``failed`` (handler error / deadline expiry) from ``lost``
    (dead-lettered after repeated lease expiries) and surface the
    recorded error message.
    """

    def __init__(self, record: JobRecord) -> None:
        self.record = record
        super().__init__(
            f"job {record.job_id} ended {record.state}: "
            f"{record.error or 'no error recorded'}"
        )


class JobWaitTimeout(ReproError):
    """The job did not reach a terminal state within the wait timeout.

    The job itself is unaffected — it stays queued/leased and can still
    complete; only this caller gave up."""


class JobClient:
    """Submit jobs and await their results over a shared queue file."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        poll_seconds: float = 0.05,
        time_source: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.queue = queue
        self.poll_seconds = float(poll_seconds)
        self._time = time_source
        self._sleep = sleep

    def enqueue(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        spec_key: str | None = None,
        trace_id: str | None = None,
        expires_at: float | None = None,
        max_attempts: int | None = None,
    ) -> tuple[JobRecord, bool]:
        """Submit (idempotently); see :meth:`JobQueue.enqueue`."""
        return self.queue.enqueue(
            kind,
            payload,
            spec_key=spec_key,
            trace_id=trace_id,
            expires_at=expires_at,
            max_attempts=max_attempts,
        )

    def status(self, job_id: str) -> JobRecord | None:
        """Current record for ``job_id`` (``None`` when unknown)."""
        return self.queue.get(job_id, include_result=False)

    def result(self, job_id: str) -> dict[str, Any] | None:
        """The stored result of a ``done`` job (``None`` otherwise)."""
        record = self.queue.get(job_id, include_result=True)
        if record is None or record.state != "done":
            return None
        return record.result

    def wait(
        self, job_id: str, timeout: float | None = None
    ) -> dict[str, Any]:
        """Block until ``job_id`` is terminal; return its result.

        Raises :class:`JobFailed` when the job ends ``failed``/``lost``,
        :class:`JobWaitTimeout` when ``timeout`` elapses first, and
        :class:`JobFailed`-wrapped ``KeyError`` semantics are avoided —
        an unknown id raises :class:`ReproError` immediately rather than
        polling forever.
        """
        deadline = None if timeout is None else self._time() + timeout
        while True:
            record = self.queue.get(job_id, include_result=True)
            if record is None:
                raise ReproError(f"unknown job: {job_id!r}")
            if record.state == "done":
                return record.result or {}
            if record.terminal:
                raise JobFailed(record)
            if deadline is not None and self._time() >= deadline:
                raise JobWaitTimeout(
                    f"job {job_id} not finished after {timeout:.1f}s "
                    f"(state: {record.state})"
                )
            self._sleep(self.poll_seconds)
