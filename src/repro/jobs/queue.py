"""Durable job queue: a sqlite-backed ``task_runs`` table with leases.

The queue is the shared medium between the enqueuing service and any
number of worker *processes* (possibly on different hosts sharing a
filesystem).  Everything rides on one sqlite file in WAL mode — no
broker, no third-party dependency — and every transition is a single
guarded transaction, so crash recovery falls out of the schema instead
of being bolted on:

* **Idempotent enqueue** — a job's identity is the SHA-256 of its
  canonical spec (``kind`` + payload, or an explicit ``spec_key``).
  Re-enqueueing the same spec returns the existing row instead of
  duplicating work; a previously ``failed``/``lost`` spec is
  resurrected into ``queued`` with a fresh attempt budget.
* **Claim-with-lease** — :meth:`JobQueue.claim` emulates Postgres
  ``SKIP LOCKED`` with a single guarded ``UPDATE ... RETURNING``: the
  oldest runnable ``queued`` row flips to ``leased`` atomically, so two
  concurrent claimers can never obtain the same job.  A lease expires
  at ``lease_expires_at`` unless the worker heartbeats.
* **Reaping** — :meth:`JobQueue.reap_expired` requeues expired leases
  with exponential backoff (bounded by ``max_attempts``, after which
  the job is dead-lettered as ``lost``) and fails ``queued`` jobs whose
  queue-visible deadline (``expires_at``) has passed, so workers never
  burn time on requests nobody is waiting for.
* **Guarded completion** — :meth:`complete`/:meth:`fail` only apply
  while the caller still holds the lease, so a worker that lost its
  lease to the reaper cannot double-complete a job that was retried
  elsewhere.

State machine (see ``docs/ARCHITECTURE.md`` for the full diagram)::

    queued ──claim──▶ leased ──complete──▶ done
      ▲                 │ │
      │   lease expired │ └──fail──▶ failed   (also: queued deadline
      └──(reap, retry)──┘                      expiry ──▶ failed)
                        └──(reap, attempts exhausted)──▶ lost

Counters (``jobs.*``) and log-bucketed histograms (queue wait, run
time) are persisted in side tables inside the same transactions, so
``/metricz`` reports exact totals across every process that ever
touched the queue file — including workers that since died.
"""

from __future__ import annotations

import json
import hashlib
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import ConfigurationError, ReproError
from repro.obs.metrics import Histogram

__all__ = [
    "JOB_STATES",
    "JobError",
    "JobRecord",
    "JobQueue",
    "spec_key_of",
]

#: Every state a ``task_runs`` row can be in.  ``queued`` and ``leased``
#: are live; ``done``, ``failed`` and ``lost`` are terminal (``lost`` =
#: dead-lettered after exhausting its lease-expiry retries).
JOB_STATES = ("queued", "leased", "done", "failed", "lost")
TERMINAL_STATES = ("done", "failed", "lost")

#: Histogram names persisted in the queue file and surfaced by
#: ``/metricz`` (see docs/OBSERVABILITY.md).
QUEUE_WAIT_HISTOGRAM = "jobs.queue_wait_seconds"
RUN_SECONDS_HISTOGRAM = "jobs.run_seconds"

_SCHEMA_VERSION = 1

#: ``UPDATE ... RETURNING`` needs sqlite >= 3.35 (2021-03).  Older
#: runtimes fall back to a SELECT + UPDATE inside the same immediate
#: transaction, which is equally atomic (the write lock is held across
#: both statements) — only less elegant.
_HAS_RETURNING = sqlite3.sqlite_version_info >= (3, 35, 0)

_COLUMNS = (
    "job_id", "spec_hash", "kind", "state", "attempts", "max_attempts",
    "enqueued_at", "not_before", "expires_at", "leased_by", "leased_at",
    "lease_expires_at", "heartbeat_at", "first_claimed_at", "finished_at",
    "queue_wait_seconds", "run_seconds", "trace_id", "error",
)
_COLUMN_SQL = ", ".join(_COLUMNS)


class JobError(ReproError):
    """A job-plane operation failed (bad queue file, unknown job, ...)."""


def spec_key_of(kind: str, payload: dict[str, Any]) -> str:
    """The canonical spec hash of ``(kind, payload)``.

    SHA-256 over the sorted, separator-normalised JSON encoding — the
    same payload always hashes identically, so enqueueing is naturally
    idempotent.  Callers whose payload carries bulky data alongside a
    cheaper identity (the service embeds a full state snapshot but is
    identified by ``(fingerprint, config_key)``) pass an explicit
    ``spec_key`` to :meth:`JobQueue.enqueue` instead.
    """
    canonical = json.dumps(
        {"kind": kind, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobRecord:
    """One row of ``task_runs`` (payload/result parsed when selected)."""

    job_id: str
    spec_hash: str
    kind: str
    state: str
    attempts: int
    max_attempts: int
    enqueued_at: float
    not_before: float
    expires_at: float | None
    leased_by: str | None
    leased_at: float | None
    lease_expires_at: float | None
    heartbeat_at: float | None
    first_claimed_at: float | None
    finished_at: float | None
    queue_wait_seconds: float | None
    run_seconds: float | None
    trace_id: str | None
    error: str | None
    #: Parsed JSON payload — ``None`` unless selected with the payload
    #: (claims always carry it; status reads skip it to stay cheap).
    payload: dict[str, Any] | None = None
    #: Parsed JSON result — ``None`` unless the job is ``done`` and the
    #: row was read with ``include_result=True``.
    result: dict[str, Any] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def public_dict(self) -> dict[str, Any]:
        """The JSON shape ``GET /v1/jobs/{id}`` serves (no payload/result
        body — the report rides separately so this stays O(1))."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "terminal": self.terminal,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "enqueued_at": self.enqueued_at,
            "expires_at": self.expires_at,
            "leased_by": self.leased_by,
            "lease_expires_at": self.lease_expires_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": self.queue_wait_seconds,
            "run_seconds": self.run_seconds,
            "trace_id": self.trace_id,
            "error": self.error,
        }


class JobQueue:
    """Durable, multi-process job queue over one sqlite file.

    Thread-safe (per-thread connections) and multi-process-safe (WAL +
    immediate transactions).  All timestamps are wall-clock
    (``time.time()``) because rows are compared across processes and
    survive restarts; ``time_source`` is injectable for deterministic
    tests.

    Parameters
    ----------
    path:
        The queue database file (created, with its parent directory, on
        first use).
    lease_seconds:
        How long a claim remains valid without a heartbeat.
    max_attempts:
        Claims a job may consume before the reaper dead-letters it.
    backoff_seconds / backoff_cap_seconds:
        Requeue delay after a lease expiry or retryable failure:
        ``backoff * 2**(attempts-1)`` capped at the cap.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        lease_seconds: float = 15.0,
        max_attempts: int = 3,
        backoff_seconds: float = 0.5,
        backoff_cap_seconds: float = 60.0,
        time_source: Callable[[], float] = time.time,
    ) -> None:
        if lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be > 0 (got {lease_seconds})"
            )
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 (got {max_attempts})"
            )
        if backoff_seconds < 0 or backoff_cap_seconds < backoff_seconds:
            raise ConfigurationError(
                "backoff must satisfy 0 <= backoff_seconds <= "
                f"backoff_cap_seconds (got {backoff_seconds}, "
                f"{backoff_cap_seconds})"
            )
        self.path = Path(path)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.backoff_seconds = float(backoff_seconds)
        self.backoff_cap_seconds = float(backoff_cap_seconds)
        self._time = time_source
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._ensure_schema()

    # ------------------------------------------------------------------
    # Connections + schema
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise JobError(f"queue {self.path} is closed")
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        conn = sqlite3.connect(
            str(self.path),
            timeout=30.0,
            isolation_level=None,  # explicit transactions only
            check_same_thread=False,
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        self._local.conn = conn
        with self._connections_lock:
            self._connections.append(conn)
        return conn

    def _ensure_schema(self) -> None:
        conn = self._connection()
        with self._transaction(conn):
            conn.execute(
                """
                CREATE TABLE IF NOT EXISTS task_runs (
                    id INTEGER PRIMARY KEY AUTOINCREMENT,
                    job_id TEXT NOT NULL UNIQUE,
                    spec_hash TEXT NOT NULL,
                    kind TEXT NOT NULL,
                    state TEXT NOT NULL,
                    attempts INTEGER NOT NULL DEFAULT 0,
                    max_attempts INTEGER NOT NULL,
                    payload TEXT NOT NULL,
                    result TEXT,
                    error TEXT,
                    trace_id TEXT,
                    enqueued_at REAL NOT NULL,
                    not_before REAL NOT NULL DEFAULT 0,
                    expires_at REAL,
                    leased_by TEXT,
                    leased_at REAL,
                    lease_expires_at REAL,
                    heartbeat_at REAL,
                    first_claimed_at REAL,
                    finished_at REAL,
                    queue_wait_seconds REAL,
                    run_seconds REAL
                )
                """
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS task_runs_claim "
                "ON task_runs (state, not_before, id)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS job_counters ("
                "name TEXT PRIMARY KEY, value REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS job_histograms ("
                "name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
            elif version != _SCHEMA_VERSION:
                raise JobError(
                    f"queue {self.path} has schema version {version}; "
                    f"this build supports {_SCHEMA_VERSION}"
                )

    class _transaction:
        """``BEGIN IMMEDIATE`` context manager (commit/rollback)."""

        __slots__ = ("_conn",)

        def __init__(self, conn: sqlite3.Connection) -> None:
            self._conn = conn

        def __enter__(self) -> sqlite3.Connection:
            self._conn.execute("BEGIN IMMEDIATE")
            return self._conn

        def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
            if exc_type is None:
                self._conn.execute("COMMIT")
            else:
                self._conn.execute("ROLLBACK")
            return False

    def close(self) -> None:
        """Close every connection this queue opened (any thread)."""
        self._closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Internal accounting (call inside an open transaction)
    # ------------------------------------------------------------------
    @staticmethod
    def _bump(conn: sqlite3.Connection, name: str, value: float = 1) -> None:
        conn.execute(
            "INSERT INTO job_counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
            (name, value),
        )

    @staticmethod
    def _observe(conn: sqlite3.Connection, name: str, value: float) -> None:
        """Fold one observation into a persisted mergeable histogram."""
        row = conn.execute(
            "SELECT payload FROM job_histograms WHERE name = ?", (name,)
        ).fetchone()
        histogram = Histogram(name)
        if row is not None:
            histogram.merge_dict(json.loads(row["payload"]))
        histogram.record(value)
        conn.execute(
            "INSERT INTO job_histograms (name, payload) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET payload = excluded.payload",
            (name, json.dumps(histogram.to_dict())),
        )

    def _backoff(self, attempts: int) -> float:
        return min(
            self.backoff_cap_seconds,
            self.backoff_seconds * (2 ** max(attempts - 1, 0)),
        )

    @staticmethod
    def _record_of(row: sqlite3.Row, *, with_payload: bool = False,
                   with_result: bool = False) -> JobRecord:
        keys = row.keys()
        payload = None
        if with_payload and "payload" in keys and row["payload"] is not None:
            payload = json.loads(row["payload"])
        result = None
        if with_result and "result" in keys and row["result"] is not None:
            result = json.loads(row["result"])
        return JobRecord(
            payload=payload,
            result=result,
            **{column: row[column] for column in _COLUMNS},
        )

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        spec_key: str | None = None,
        trace_id: str | None = None,
        expires_at: float | None = None,
        max_attempts: int | None = None,
    ) -> tuple[JobRecord, bool]:
        """Insert (or adopt) a job; returns ``(record, created)``.

        Idempotent on the spec hash: an existing ``queued``/``leased``/
        ``done`` row for the same spec is returned as-is (``created``
        False, ``jobs.deduplicated`` bumped); a ``failed``/``lost`` row
        is resurrected into ``queued`` with a reset attempt budget and a
        fresh deadline.  ``expires_at`` is the queue-visible wall-clock
        deadline: claimers skip the job once it passes, and the reaper
        fails it.
        """
        if max_attempts is not None and max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 (got {max_attempts})"
            )
        spec_hash = spec_key or spec_key_of(kind, payload)
        now = self._time()
        conn = self._connection()
        with self._transaction(conn):
            row = conn.execute(
                f"SELECT {_COLUMN_SQL} FROM task_runs WHERE job_id = ?",
                (spec_hash,),
            ).fetchone()
            if row is not None and row["state"] not in ("failed", "lost"):
                self._bump(conn, "jobs.deduplicated")
                return self._record_of(row), False
            budget = max_attempts if max_attempts is not None else self.max_attempts
            if row is not None:
                # Terminal failure: resurrect with a clean slate.
                conn.execute(
                    "UPDATE task_runs SET state='queued', attempts=0, "
                    "max_attempts=?, payload=?, result=NULL, error=NULL, "
                    "trace_id=?, enqueued_at=?, not_before=0, expires_at=?, "
                    "leased_by=NULL, leased_at=NULL, lease_expires_at=NULL, "
                    "heartbeat_at=NULL, first_claimed_at=NULL, "
                    "finished_at=NULL, queue_wait_seconds=NULL, "
                    "run_seconds=NULL WHERE job_id=?",
                    (budget, json.dumps(payload, sort_keys=True), trace_id,
                     now, expires_at, spec_hash),
                )
                self._bump(conn, "jobs.resurrected")
            else:
                conn.execute(
                    "INSERT INTO task_runs (job_id, spec_hash, kind, state, "
                    "attempts, max_attempts, payload, trace_id, enqueued_at, "
                    "not_before, expires_at) "
                    "VALUES (?, ?, ?, 'queued', 0, ?, ?, ?, ?, 0, ?)",
                    (spec_hash, spec_hash, kind, budget,
                     json.dumps(payload, sort_keys=True), trace_id, now,
                     expires_at),
                )
            self._bump(conn, "jobs.enqueued")
            row = conn.execute(
                f"SELECT {_COLUMN_SQL} FROM task_runs WHERE job_id = ?",
                (spec_hash,),
            ).fetchone()
        return self._record_of(row), True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    _CLAIM_SET = (
        "state='leased', leased_by=:worker, leased_at=:now, "
        "lease_expires_at=:lease, heartbeat_at=:now, "
        "attempts=attempts+1, "
        "first_claimed_at=COALESCE(first_claimed_at, :now), "
        "queue_wait_seconds=COALESCE(queue_wait_seconds, :now - enqueued_at)"
    )
    _CLAIM_PICK = (
        "SELECT id FROM task_runs WHERE state='queued' AND not_before <= :now "
        "AND (expires_at IS NULL OR expires_at > :now) ORDER BY id LIMIT 1"
    )

    def claim(self, worker_id: str, now: float | None = None) -> JobRecord | None:
        """Atomically lease the oldest runnable job (or ``None``).

        The pick skips jobs backing off (``not_before``) and jobs whose
        queue-visible deadline passed.  The claimed row carries its
        parsed payload — the worker needs nothing else to execute.
        """
        now = self._time() if now is None else now
        params = {
            "worker": worker_id,
            "now": now,
            "lease": now + self.lease_seconds,
        }
        conn = self._connection()
        with self._transaction(conn):
            if _HAS_RETURNING:
                row = conn.execute(
                    f"UPDATE task_runs SET {self._CLAIM_SET} "
                    f"WHERE id = ({self._CLAIM_PICK}) "
                    f"RETURNING {_COLUMN_SQL}, payload",
                    params,
                ).fetchone()
            else:  # pragma: no cover - sqlite < 3.35 only
                picked = conn.execute(self._CLAIM_PICK, params).fetchone()
                row = None
                if picked is not None:
                    conn.execute(
                        f"UPDATE task_runs SET {self._CLAIM_SET} "
                        "WHERE id = :id AND state='queued'",
                        {**params, "id": picked["id"]},
                    )
                    row = conn.execute(
                        f"SELECT {_COLUMN_SQL}, payload FROM task_runs "
                        "WHERE id = ?",
                        (picked["id"],),
                    ).fetchone()
            if row is None:
                return None
            record = self._record_of(row, with_payload=True)
            self._bump(conn, "jobs.claimed")
            self._bump(conn, "jobs.attempts")
            if record.attempts > 1:
                self._bump(conn, "jobs.retries")
            if record.attempts == 1:
                self._observe(
                    conn, QUEUE_WAIT_HISTOGRAM, now - record.enqueued_at
                )
        return record

    def heartbeat(
        self, job_id: str, worker_id: str, now: float | None = None
    ) -> bool:
        """Extend the lease; ``False`` means the lease is no longer ours
        (expired and reaped, or completed elsewhere) — the worker should
        treat the job as lost and discard its in-progress result."""
        now = self._time() if now is None else now
        conn = self._connection()
        with self._transaction(conn):
            cursor = conn.execute(
                "UPDATE task_runs SET heartbeat_at=?, lease_expires_at=? "
                "WHERE job_id=? AND state='leased' AND leased_by=?",
                (now, now + self.lease_seconds, job_id, worker_id),
            )
            if cursor.rowcount:
                self._bump(conn, "jobs.heartbeats")
        return bool(cursor.rowcount)

    def complete(
        self,
        job_id: str,
        worker_id: str,
        result: dict[str, Any],
        now: float | None = None,
    ) -> bool:
        """Mark a leased job ``done`` (guarded by the lease holder).

        Returns ``False`` — and stores nothing — when the caller no
        longer holds the lease, which is exactly the no-double-complete
        guarantee: a reaped-and-retried job keeps the retry's result.
        """
        now = self._time() if now is None else now
        conn = self._connection()
        with self._transaction(conn):
            cursor = conn.execute(
                "UPDATE task_runs SET state='done', result=?, error=NULL, "
                "finished_at=?, run_seconds=? - leased_at "
                "WHERE job_id=? AND state='leased' AND leased_by=?",
                (json.dumps(result, sort_keys=True), now, now, job_id,
                 worker_id),
            )
            if cursor.rowcount:
                self._bump(conn, "jobs.completed")
                row = conn.execute(
                    "SELECT run_seconds FROM task_runs WHERE job_id=?",
                    (job_id,),
                ).fetchone()
                self._observe(
                    conn, RUN_SECONDS_HISTOGRAM, row["run_seconds"] or 0.0
                )
            else:
                self._bump(conn, "jobs.stale_completions")
        return bool(cursor.rowcount)

    def fail(
        self,
        job_id: str,
        worker_id: str,
        error: str,
        *,
        retryable: bool = False,
        now: float | None = None,
    ) -> bool:
        """Record a worker-reported failure (guarded by the lease holder).

        Retryable failures requeue with the same exponential backoff the
        reaper uses until the attempt budget is exhausted; deterministic
        failures (bad config, malformed payload) dead-letter immediately
        as ``failed``.
        """
        now = self._time() if now is None else now
        conn = self._connection()
        with self._transaction(conn):
            row = conn.execute(
                "SELECT attempts, max_attempts FROM task_runs "
                "WHERE job_id=? AND state='leased' AND leased_by=?",
                (job_id, worker_id),
            ).fetchone()
            if row is None:
                self._bump(conn, "jobs.stale_failures")
                return False
            if retryable and row["attempts"] < row["max_attempts"]:
                conn.execute(
                    "UPDATE task_runs SET state='queued', leased_by=NULL, "
                    "leased_at=NULL, lease_expires_at=NULL, heartbeat_at=NULL, "
                    "not_before=?, error=? WHERE job_id=?",
                    (now + self._backoff(row["attempts"]), error, job_id),
                )
                self._bump(conn, "jobs.requeued_failures")
            else:
                conn.execute(
                    "UPDATE task_runs SET state='failed', finished_at=?, "
                    "error=? WHERE job_id=?",
                    (now, error, job_id),
                )
                self._bump(conn, "jobs.failed")
        return True

    def release(
        self, job_id: str, worker_id: str, now: float | None = None
    ) -> bool:
        """Return a claimed-but-unstarted job to the queue (clean SIGTERM
        path: no backoff, and the consumed attempt is refunded)."""
        now = self._time() if now is None else now
        conn = self._connection()
        with self._transaction(conn):
            cursor = conn.execute(
                "UPDATE task_runs SET state='queued', leased_by=NULL, "
                "leased_at=NULL, lease_expires_at=NULL, heartbeat_at=NULL, "
                "attempts=attempts-1, not_before=? "
                "WHERE job_id=? AND state='leased' AND leased_by=?",
                (now, job_id, worker_id),
            )
            if cursor.rowcount:
                self._bump(conn, "jobs.released")
        return bool(cursor.rowcount)

    # ------------------------------------------------------------------
    # Reaping (any process may run this; transitions are idempotent)
    # ------------------------------------------------------------------
    def reap_expired(self, now: float | None = None) -> dict[str, list[str]]:
        """Recover from crashes and dead deadlines in one sweep.

        * leased rows whose lease expired: requeued with backoff
          (``jobs.lease_expired``) or — attempt budget exhausted —
          dead-lettered as ``lost`` (``jobs.dead_lettered``);
        * queued rows whose ``expires_at`` passed: failed as expired
          (``jobs.expired``) so pollers get a terminal answer.

        Returns ``{"requeued": [...], "dead_lettered": [...],
        "expired": [...]}`` job-id lists (empty lists when idle).
        """
        now = self._time() if now is None else now
        requeued: list[str] = []
        dead: list[str] = []
        expired: list[str] = []
        conn = self._connection()
        with self._transaction(conn):
            rows = conn.execute(
                "SELECT job_id, attempts, max_attempts FROM task_runs "
                "WHERE state='leased' AND lease_expires_at <= ?",
                (now,),
            ).fetchall()
            for row in rows:
                if row["attempts"] >= row["max_attempts"]:
                    conn.execute(
                        "UPDATE task_runs SET state='lost', finished_at=?, "
                        "error=? WHERE job_id=? AND state='leased'",
                        (now,
                         f"lease expired after {row['attempts']} attempts "
                         f"(max {row['max_attempts']})",
                         row["job_id"]),
                    )
                    self._bump(conn, "jobs.lease_expired")
                    self._bump(conn, "jobs.dead_lettered")
                    dead.append(row["job_id"])
                else:
                    conn.execute(
                        "UPDATE task_runs SET state='queued', leased_by=NULL, "
                        "leased_at=NULL, lease_expires_at=NULL, "
                        "heartbeat_at=NULL, not_before=? "
                        "WHERE job_id=? AND state='leased'",
                        (now + self._backoff(row["attempts"]), row["job_id"]),
                    )
                    self._bump(conn, "jobs.lease_expired")
                    requeued.append(row["job_id"])
            rows = conn.execute(
                "SELECT job_id FROM task_runs WHERE state='queued' "
                "AND expires_at IS NOT NULL AND expires_at <= ?",
                (now,),
            ).fetchall()
            for row in rows:
                conn.execute(
                    "UPDATE task_runs SET state='failed', finished_at=?, "
                    "error='expired before execution (queue-visible "
                    "deadline passed)' WHERE job_id=? AND state='queued'",
                    (now, row["job_id"]),
                )
                self._bump(conn, "jobs.expired")
                expired.append(row["job_id"])
        return {"requeued": requeued, "dead_lettered": dead, "expired": expired}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(
        self, job_id: str, *, include_result: bool = True,
        include_payload: bool = False,
    ) -> JobRecord | None:
        """Fetch one job by id (``None`` when unknown)."""
        extra = ""
        if include_payload:
            extra += ", payload"
        if include_result:
            extra += ", result"
        row = self._connection().execute(
            f"SELECT {_COLUMN_SQL}{extra} FROM task_runs WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        if row is None:
            return None
        return self._record_of(
            row, with_payload=include_payload, with_result=include_result
        )

    def counts_by_state(self) -> dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for row in self._connection().execute(
            "SELECT state, COUNT(*) AS n FROM task_runs GROUP BY state"
        ):
            counts[row["state"]] = row["n"]
        return counts

    def counters(self) -> dict[str, float]:
        """Persisted ``jobs.*`` counter totals (sorted, ints kept int)."""
        totals: dict[str, float] = {}
        for row in self._connection().execute(
            "SELECT name, value FROM job_counters ORDER BY name"
        ):
            value = row["value"]
            totals[row["name"]] = int(value) if value == int(value) else value
        return totals

    def histogram_summaries(self) -> dict[str, dict[str, Any]]:
        """Summaries (count/sum/min/max/p50/p90/p99) of the persisted
        queue-wait and run-time histograms."""
        summaries: dict[str, dict[str, Any]] = {}
        for row in self._connection().execute(
            "SELECT name, payload FROM job_histograms ORDER BY name"
        ):
            histogram = Histogram(row["name"])
            histogram.merge_dict(json.loads(row["payload"]))
            summaries[row["name"]] = histogram.summary()
        return summaries

    def stats(self) -> dict[str, Any]:
        """The ``/metricz`` job-plane section: states, counters,
        histogram summaries, and the queue's own configuration."""
        return {
            "path": str(self.path),
            "states": self.counts_by_state(),
            "counters": self.counters(),
            "histograms": self.histogram_summaries(),
            "lease_seconds": self.lease_seconds,
            "max_attempts": self.max_attempts,
        }
