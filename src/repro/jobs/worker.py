"""Job workers: lease, heartbeat, execute, complete.

A :class:`JobWorker` is the consumer side of the job plane.  It polls
the shared :class:`~repro.jobs.queue.JobQueue` for runnable work, holds
each claim alive with a background heartbeat thread, executes the job's
``kind`` through a handler table, and reports the outcome through the
lease-guarded :meth:`~repro.jobs.queue.JobQueue.complete` /
:meth:`~repro.jobs.queue.JobQueue.fail` transitions.

Crash-safety is entirely the queue's job: a worker that dies mid-lease
simply stops heartbeating, the lease expires, and the reaper requeues
the work.  The worker's own obligations are narrower:

* **Heartbeat or abandon** — the heartbeat thread renews the lease at
  roughly a third of the lease interval.  If a renewal is *rejected*
  (the lease was reaped and the job handed elsewhere), the worker
  finishes the computation but its ``complete()`` is refused by the
  lease guard, so the retried attempt's result wins — never two.
* **Graceful stop** — when the stop event fires between claim and
  execution, the claim is released back to the queue with its attempt
  refunded; when it fires mid-execution, the job is finished first.
  Either way the worker exits with nothing leased (the CLI wires
  SIGTERM/SIGINT to the stop event).
* **Build once** — analysis engines are cached per config key, so a
  worker grinding through many jobs of the same shape pays detector
  construction once ("each worker builds its engine once").

The ``analyze`` handler reproduces the service's in-process execution
exactly: the engine runs with no installed recorder (a private,
sink-less one, same as the service's cache thread), so a queued report
serialises byte-identically to an inline one.  The worker's *own*
recorder wraps the run in a ``jobs.run`` span stamped with the job's
``trace_id`` — worker-side trace fragments therefore stitch into the
enqueuing request's trace tree in any shared trace store.
"""

from __future__ import annotations

import json
import socket
import os
import threading
import time
from typing import Any, Callable, Mapping

from repro.exceptions import ConfigurationError, ReproError
from repro.jobs.queue import JobQueue, JobRecord
from repro.obs import Recorder

__all__ = ["JobWorker", "default_worker_id", "run_worker"]

#: How often (as a fraction of the lease interval) the heartbeat thread
#: renews a held lease.  A third gives two retries' worth of slack
#: before an honest worker can lose its lease to scheduling jitter.
HEARTBEAT_FRACTION = 1 / 3


def default_worker_id(index: int | None = None) -> str:
    """``host:pid`` (plus an index for multi-worker processes).

    The pid is recoverable by splitting on ``:`` — the crash-recovery
    smoke test parses it out of ``leased_by`` to SIGKILL the holder.
    """
    base = f"{socket.gethostname()}:{os.getpid()}"
    return base if index is None else f"{base}:{index}"


class _HeartbeatThread(threading.Thread):
    """Renews one job's lease until stopped or the lease is lost."""

    def __init__(
        self, queue: JobQueue, job_id: str, worker_id: str, interval: float
    ) -> None:
        super().__init__(name=f"repro-job-heartbeat-{job_id[:8]}", daemon=True)
        self._queue = queue
        self._job_id = job_id
        self._worker_id = worker_id
        self._interval = interval
        self._done = threading.Event()
        #: Set when a renewal was rejected: the lease is no longer ours.
        self.lost = threading.Event()

    def stop(self) -> None:
        self._done.set()
        self.join(timeout=max(self._interval * 4, 1.0))

    def run(self) -> None:
        while not self._done.wait(self._interval):
            if not self._queue.heartbeat(self._job_id, self._worker_id):
                self.lost.set()
                return


class JobWorker:
    """One worker loop attached to a shared queue file.

    Parameters
    ----------
    queue:
        The shared :class:`JobQueue`.
    worker_id:
        Stable identity recorded in ``leased_by`` (defaults to
        ``host:pid``).
    handlers:
        ``kind -> callable(payload, record) -> result dict``.  Defaults
        to :data:`DEFAULT_HANDLERS` (``analyze`` and ``sleep``).
    poll_seconds:
        Idle sleep between empty claim attempts.
    max_jobs:
        Stop after completing this many jobs (``None`` = run forever).
    idle_exit_seconds:
        Stop after this long without claiming anything (``None`` = never).
    stop_event:
        External shutdown signal; the CLI wires SIGTERM/SIGINT to it.
    reap_interval_seconds:
        Workers double as reapers: at most once per interval the poll
        loop sweeps expired leases/deadlines, so a fleet of workers
        recovers crashed peers without a dedicated process.
    sinks:
        Trace sinks for the worker's recorder (``jobs.run`` spans).
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        worker_id: str | None = None,
        handlers: Mapping[str, Callable[..., dict[str, Any]]] | None = None,
        poll_seconds: float = 0.2,
        max_jobs: int | None = None,
        idle_exit_seconds: float | None = None,
        stop_event: threading.Event | None = None,
        reap_interval_seconds: float | None = None,
        sinks: Any = (),
    ) -> None:
        if poll_seconds <= 0:
            raise ConfigurationError(
                f"poll_seconds must be > 0 (got {poll_seconds})"
            )
        if max_jobs is not None and max_jobs < 1:
            raise ConfigurationError(
                f"max_jobs must be >= 1 or None (got {max_jobs})"
            )
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        self.handlers = dict(handlers if handlers is not None else DEFAULT_HANDLERS)
        self.poll_seconds = float(poll_seconds)
        self.max_jobs = max_jobs
        self.idle_exit_seconds = idle_exit_seconds
        self.stop_event = stop_event or threading.Event()
        self.reap_interval_seconds = (
            queue.lease_seconds / 2
            if reap_interval_seconds is None
            else float(reap_interval_seconds)
        )
        self._sinks = sinks
        self._heartbeat_interval = max(
            queue.lease_seconds * HEARTBEAT_FRACTION, 0.05
        )
        self._last_reap = 0.0
        #: Per-config-key engine cache: build once, reuse per job shape.
        self._engines: dict[str, Any] = {}
        self.jobs_done = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    # Loop
    # ------------------------------------------------------------------
    def run(self) -> dict[str, int]:
        """Claim-execute until stopped; returns ``{done, failed}``."""
        idle_since = time.monotonic()
        while not self.stop_event.is_set():
            self._maybe_reap()
            record = self.queue.claim(self.worker_id)
            if record is None:
                if (
                    self.idle_exit_seconds is not None
                    and time.monotonic() - idle_since >= self.idle_exit_seconds
                ):
                    break
                self.stop_event.wait(self.poll_seconds)
                continue
            idle_since = time.monotonic()
            if self.stop_event.is_set():
                # Claimed but asked to stop before starting: hand the job
                # back untouched (attempt refunded, no backoff).
                self.queue.release(record.job_id, self.worker_id)
                break
            self.run_one(record)
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                break
        return {"done": self.jobs_done, "failed": self.jobs_failed}

    def _maybe_reap(self) -> None:
        now = time.monotonic()
        if now - self._last_reap >= self.reap_interval_seconds:
            self._last_reap = now
            self.queue.reap_expired()

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------
    def run_one(self, record: JobRecord) -> bool:
        """Execute one claimed job; returns True when completed ``done``.

        The heartbeat thread keeps the lease alive for the duration; the
        job's ``trace_id`` (stamped at enqueue time from the request's
        ``X-Trace-Id``) is pinned on the worker's recorder so the
        ``jobs.run`` trace emitted to the sinks correlates with the
        enqueuing request.
        """
        heartbeat = _HeartbeatThread(
            self.queue, record.job_id, self.worker_id, self._heartbeat_interval
        )
        heartbeat.start()
        recorder = Recorder(sinks=self._sinks, trace_id=record.trace_id)
        try:
            with recorder.span(
                "jobs.run",
                job_id=record.job_id,
                kind=record.kind,
                attempt=record.attempts,
                worker=self.worker_id,
            ) as span:
                handler = self.handlers.get(record.kind)
                if handler is None:
                    raise ConfigurationError(
                        f"no handler for job kind {record.kind!r} "
                        f"(have {sorted(self.handlers)})"
                    )
                result = handler(self, record)
                span.annotate(outcome="done")
        except ReproError as error:
            # Deterministic domain error: retrying cannot help.
            heartbeat.stop()
            self.jobs_failed += 1
            self.queue.fail(
                record.job_id, self.worker_id, str(error), retryable=False
            )
            return False
        except Exception as error:  # noqa: BLE001 - worker must survive
            heartbeat.stop()
            self.jobs_failed += 1
            self.queue.fail(
                record.job_id,
                self.worker_id,
                f"{type(error).__name__}: {error}",
                retryable=True,
            )
            return False
        heartbeat.stop()
        if heartbeat.lost.is_set():
            # The lease was reaped mid-run; complete() below would be
            # rejected anyway, but skipping it makes the outcome explicit.
            return False
        completed = self.queue.complete(record.job_id, self.worker_id, result)
        if completed:
            self.jobs_done += 1
        return completed

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _engine_for(self, config_payload: dict[str, Any] | None):
        """The cached engine for a config payload (built on first use)."""
        from repro.core.engine import AnalysisConfig, AnalysisEngine

        key = json.dumps(config_payload, sort_keys=True)
        engine = self._engines.get(key)
        if engine is None:
            config = (
                AnalysisConfig.from_dict(config_payload)
                if config_payload is not None
                else AnalysisConfig()
            )
            engine = AnalysisEngine(config)
            self._engines[key] = engine
        return engine

    def handle_analyze(self, record: JobRecord) -> dict[str, Any]:
        """Run one analysis job: payload carries the state document and
        the effective config; the result is ``report.to_dict()``.

        The engine runs with *no installed recorder* — it creates its
        private sink-less one, exactly like the service's in-process
        cache thread — so ``Report.metrics`` (and therefore the full
        serialised report) matches inline execution byte for byte.
        """
        from repro.io.jsonio import state_from_dict

        payload = record.payload or {}
        state = state_from_dict(payload["state"])
        engine = self._engine_for(payload.get("config"))
        report = engine.analyze(state)
        return {
            "report": report.to_dict(),
            "fingerprint": payload.get("fingerprint"),
            "mutation_seq": payload.get("mutation_seq"),
        }

    def handle_sleep(self, record: JobRecord) -> dict[str, Any]:
        """Sleep for ``payload["seconds"]`` — the deterministic test job
        (crash-recovery suites SIGKILL a worker while it sleeps)."""
        payload = record.payload or {}
        seconds = float(payload.get("seconds", 0.0))
        deadline = time.monotonic() + seconds
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(remaining, 0.05))
        return {"slept": seconds}


#: Default ``kind -> handler`` table (handlers are unbound: they receive
#: the worker instance first, so custom tables can reuse its caches).
DEFAULT_HANDLERS: dict[str, Callable[..., dict[str, Any]]] = {
    "analyze": JobWorker.handle_analyze,
    "sleep": JobWorker.handle_sleep,
}


def run_worker(
    queue_path: str,
    *,
    worker_id: str | None = None,
    lease_seconds: float = 15.0,
    max_attempts: int = 3,
    poll_seconds: float = 0.2,
    max_jobs: int | None = None,
    idle_exit_seconds: float | None = None,
    stop_event: threading.Event | None = None,
    sinks: Any = (),
) -> dict[str, int]:
    """Open the queue at ``queue_path`` and run one worker loop to
    completion — the target the ``repro work`` CLI runs per process."""
    queue = JobQueue(
        queue_path, lease_seconds=lease_seconds, max_attempts=max_attempts
    )
    try:
        worker = JobWorker(
            queue,
            worker_id=worker_id,
            poll_seconds=poll_seconds,
            max_jobs=max_jobs,
            idle_exit_seconds=idle_exit_seconds,
            stop_event=stop_event,
            sinks=sinks,
        )
        return worker.run()
    finally:
        queue.close()
