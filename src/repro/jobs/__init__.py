"""Durable distributed job plane (zero-dependency, sqlite-backed).

The package that takes the analysis fleet-wide: a crash-safe queue file
any number of worker *processes* share, with leases, heartbeats,
reaping, bounded retries and dead-lettering — see ``docs/ARCHITECTURE.md``
for the state machine and ``docs/USAGE.md`` §5 for running workers.

* :class:`JobQueue` — the ``task_runs`` table and every state
  transition (enqueue / claim / heartbeat / complete / fail / release /
  reap), plus durable job-plane counters and histograms.
* :class:`JobWorker` / :func:`run_worker` — the consumer loop the
  ``repro work`` CLI runs: claim, heartbeat in the background, execute,
  report, survive SIGTERM cleanly.
* :class:`JobClient` — the producer API ``repro.service`` uses for its
  ``--execution queue`` mode: enqueue idempotently, poll, wait.
"""

from repro.jobs.client import JobClient, JobFailed, JobWaitTimeout
from repro.jobs.queue import (
    JOB_STATES,
    JobError,
    JobQueue,
    JobRecord,
    spec_key_of,
)
from repro.jobs.worker import JobWorker, default_worker_id, run_worker

__all__ = [
    "JOB_STATES",
    "JobClient",
    "JobError",
    "JobFailed",
    "JobQueue",
    "JobRecord",
    "JobWaitTimeout",
    "JobWorker",
    "default_worker_id",
    "run_worker",
    "spec_key_of",
]
