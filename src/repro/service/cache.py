"""Fingerprint-keyed report cache with request coalescing.

A full analysis is the service's expensive operation; the cache makes
repeated work free along two axes:

* **Caching** — results are keyed by ``(state fingerprint, effective
  config)``, so a report stays valid across any number of requests until
  a mutation actually changes the content (or the requested analysis
  differs).  Bounded LRU: the newest ``capacity`` reports are kept.
* **Coalescing** — concurrent identical requests share one computation.
  The first requester becomes the *owner* and starts the compute on a
  dedicated thread; everyone (owner included) waits on the same
  completion event, each bounded by its own request deadline.  A waiter
  whose deadline elapses gets :class:`DeadlineExceeded` while the
  computation keeps running and still lands in the cache — deadline
  aborts are clean: no partial results, no lost work, no corruption of
  other requests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.exceptions import ConfigurationError
from repro.service.protocol import DeadlineExceeded

__all__ = ["ReportCache"]


class _InFlight:
    """One running computation plus its completion event."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class ReportCache:
    """Thread-safe bounded LRU cache with single-flight computation."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1 (got {capacity})"
            )
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._inflight: dict[Hashable, _InFlight] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0
        self.deadline_abandons = 0

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        timeout: float | None = None,
    ) -> tuple[Any, str]:
        """Return ``(value, source)`` for ``key``.

        ``source`` is ``"hit"`` (served from cache), ``"miss"`` (this
        call owned the computation), or ``"coalesced"`` (this call
        joined a computation another request started).  ``timeout`` is
        the caller's remaining deadline in seconds; when it elapses
        before the shared computation finishes, :class:`DeadlineExceeded`
        is raised for *this caller only*.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key], "hit"
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                owner = True
                self.misses += 1
            else:
                owner = False
                self.coalesced += 1
        if owner:
            # The compute runs on its own (daemon) thread so the owning
            # request can honour its deadline like every other waiter.
            threading.Thread(
                target=self._run,
                args=(key, flight, compute),
                name="repro-service-analyze",
                daemon=True,
            ).start()
        if not flight.event.wait(timeout):
            with self._lock:
                self.deadline_abandons += 1
            raise DeadlineExceeded(
                "analysis did not finish within the request deadline "
                "(the result will be cached when it completes)"
            )
        if flight.error is not None:
            raise flight.error
        return flight.value, ("miss" if owner else "coalesced")

    def _run(
        self, key: Hashable, flight: _InFlight, compute: Callable[[], Any]
    ) -> None:
        try:
            value = compute()
        except BaseException as error:  # re-raised in every waiter
            flight.error = error
            with self._lock:
                self._inflight.pop(key, None)
        else:
            flight.value = value
            with self._lock:
                self._inflight.pop(key, None)
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
        finally:
            flight.event.set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop every cached entry (in-flight computations unaffected)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped

    def stats(self) -> dict[str, int]:
        """Counters + occupancy for ``/metricz``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "in_flight": len(self._inflight),
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "deadline_abandons": self.deadline_abandons,
            }
