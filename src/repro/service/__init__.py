"""Long-running RBAC analysis service (HTTP/JSON, stdlib-only).

The batch engine answers "what is inefficient *right now*?" for one
dataset export; this package turns the engine + incremental auditor +
workspace stack into a daemon that answers it continuously:

* :class:`AnalysisService` — the application object: live state behind
  an :class:`~repro.core.incremental.IncrementalAuditor`, a
  fingerprint-keyed :class:`ReportCache`, a background
  :class:`RefreshScheduler`, and per-endpoint metrics
  (:mod:`repro.service.server`);
* :class:`ServiceServer` — the stdlib ``ThreadingHTTPServer`` binding
  with backpressure, deadlines, and graceful drain;
* :class:`SnapshotStore` — atomic persistence for warm restarts
  (:mod:`repro.service.store`);
* the wire protocol — mutation vocabulary, batch validation, analyze
  overrides (:mod:`repro.service.protocol`).

Start one from the CLI with ``repro serve`` or in-process::

    from repro.service import AnalysisService, ServiceConfig, ServiceServer

    service = AnalysisService(state, ServiceConfig(snapshot_path="snap.json"))
    server = ServiceServer(service, port=0)
    server.start()                      # background thread
    ...                                 # POST /v1/mutations, GET /v1/counts
    server.stop()                       # drain + snapshot

See ``docs/ARCHITECTURE.md`` (request lifecycle, cache keying, drain
semantics) and ``docs/OBSERVABILITY.md`` (endpoint + metric names).
"""

from repro.service.cache import ReportCache
from repro.service.protocol import (
    MUTATION_OPS,
    DeadlineExceeded,
    Mutation,
    ProtocolError,
    ServiceDraining,
    ServiceSaturated,
    apply_batch,
    build_analysis_config,
    config_key,
    parse_mutation_batch,
    validate_batch,
)
from repro.service.scheduler import RefreshScheduler
from repro.service.server import AnalysisService, ServiceConfig, ServiceServer
from repro.service.slo import SloTracker
from repro.service.store import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotMeta,
    SnapshotStore,
)
from repro.service.tracez import SlowTraceRing

__all__ = [
    "AnalysisService",
    "ServiceConfig",
    "ServiceServer",
    "SloTracker",
    "SlowTraceRing",
    "ReportCache",
    "RefreshScheduler",
    "SnapshotStore",
    "SnapshotMeta",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "Mutation",
    "MUTATION_OPS",
    "ProtocolError",
    "DeadlineExceeded",
    "ServiceSaturated",
    "ServiceDraining",
    "parse_mutation_batch",
    "validate_batch",
    "apply_batch",
    "build_analysis_config",
    "config_key",
]
