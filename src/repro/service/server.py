"""The analysis daemon: HTTP/JSON serving over a live RBAC state.

:class:`AnalysisService` is the application object — it owns the live
:class:`~repro.core.incremental.IncrementalAuditor` (so ``GET
/v1/counts`` is served from maintained indexes, never a re-analysis),
the fingerprint-keyed :class:`~repro.service.cache.ReportCache`, the
background :class:`~repro.service.scheduler.RefreshScheduler`, and the
service metrics.  Its :meth:`~AnalysisService.handle` method maps one
``(method, path, body)`` triple to ``(status, payload, headers)`` with
no socket involved, which is what the unit tests drive.

:class:`ServiceServer` binds a service to a stdlib
``ThreadingHTTPServer`` (zero third-party dependencies).  Production
behaviours live at this seam:

* **Backpressure** — at most ``queue_limit`` ``/v1/*`` requests are in
  flight; the next one is rejected immediately with ``429`` and a
  ``Retry-After`` header instead of queueing unboundedly.
* **Deadlines** — every request carries a deadline (``X-Deadline``
  header, seconds; default ``deadline_seconds``).  An analysis that
  cannot finish in time returns ``504`` while the shared computation
  completes into the cache (see :mod:`repro.service.cache`).
* **Graceful drain** — on SIGTERM the server stops accepting work
  (``503`` + ``Connection: close``), lets in-flight requests finish,
  flushes the state to the snapshot store, and exits; a warm restart
  reloads the snapshot with the mutation sequence intact.

Endpoints::

    POST /v1/mutations       apply a batched mutation delta (atomic)
    GET  /v1/counts          live inefficiency counts (incremental)
    POST /v1/analyze         full report (cached + coalesced); with
                             ``execution="queue"``: 202 + job id
    GET  /v1/reports/latest  scheduler's latest report + diff
    GET  /v1/jobs            job-plane stats (queue mode)
    GET  /v1/jobs/{id}       job status + result once done (queue mode)
    GET  /healthz            liveness (503 while draining or SLO-degraded)
    GET  /metricz            counters, latency histograms, cache/queue/SLO
                             stats (?format=prometheus for text exposition)
    GET  /tracez             slowest recent request traces (?k=N)

Every request is correlated end to end: the ``X-Trace-Id`` request
header (generated when absent) becomes the trace ID of the request's
``service.request`` trace and is echoed back as a response header, so a
client can join its own logs to the service's exported traces.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.core.engine import AnalysisConfig, analyze, effective_scan_workers
from repro.core.incremental import IncrementalAuditor
from repro.core.report import Report
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError, ReproError
from repro.jobs import JobClient, JobQueue
from repro.obs import (
    MetricRegistry,
    Recorder,
    current_recorder,
    new_trace_id,
    use_recorder,
)
from repro.parallel import WorkerPool, use_pool
from repro.service.cache import ReportCache
from repro.service.slo import SloTracker
from repro.service.tracez import SlowTraceRing
from repro.service.protocol import (
    DeadlineExceeded,
    ProtocolError,
    ServiceDraining,
    ServiceSaturated,
    apply_batch,
    build_analysis_config,
    config_key,
    parse_mutation_batch,
    validate_batch,
)
from repro.service.scheduler import RefreshScheduler
from repro.service.store import SnapshotMeta, SnapshotStore

__all__ = ["ServiceConfig", "AnalysisService", "ServiceServer"]


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`AnalysisService`.

    Parameters
    ----------
    queue_limit:
        Maximum concurrently-processed ``/v1/*`` requests; the next
        request is rejected with 429 (backpressure, not buffering).
    deadline_seconds:
        Default per-request deadline; clients override per request with
        the ``X-Deadline`` header.
    cache_capacity:
        Reports kept in the LRU report cache.
    refresh_mutations / refresh_seconds:
        Background full-analysis triggers (``None`` disables a trigger;
        both ``None`` disables the scheduler).
    snapshot_path:
        Where graceful drain persists the state; an existing snapshot
        here is loaded on construction (warm restart) in preference to
        the ``state`` argument.
    warm_start:
        Run one full analysis at startup — warms the matrices, the
        per-axis workspace artifacts, and the report cache, and gives
        the scheduler its diff baseline.
    retry_after_seconds:
        Value of the ``Retry-After`` header on 429 responses.
    slo_target_seconds:
        Per-request latency target for rolling-window SLO tracking.
        ``None`` (the default) disables tracking entirely — ``/healthz``
        then reports only liveness/drain state.  When set, an endpoint
        whose recent-request window breaches the error budget degrades
        ``/healthz`` to 503 ``{"status": "degraded"}``.
    slo_window / slo_budget_fraction / slo_min_samples:
        SLO window parameters (see :class:`repro.service.slo.SloTracker`).
    tracez_capacity:
        How many recent request traces ``GET /tracez`` retains.
    execution:
        ``"inline"`` (default) computes analyses on request threads;
        ``"queue"`` enqueues them onto the durable job plane instead —
        ``POST /v1/analyze`` returns ``202`` + a job id, workers
        attached via ``repro work`` execute, and ``GET /v1/jobs/{id}``
        serves status/result.  Requires ``jobs_path``.
    jobs_path:
        The shared sqlite queue file (see :mod:`repro.jobs`).  The file
        survives restarts: stale leases from a dead daemon or worker are
        reaped on warm start.
    job_lease_seconds / job_max_attempts / job_backoff_seconds:
        Lease duration, retry budget, and backoff base for enqueued
        jobs (see :class:`repro.jobs.JobQueue`).
    job_reap_seconds:
        Interval of the service's background reaper sweep (defaults to
        half the lease).
    job_refresh_timeout_seconds:
        How long the background refresh scheduler waits for a queued
        analysis before giving up the cycle.
    analysis:
        Default :class:`AnalysisConfig` for ``POST /v1/analyze`` and the
        scheduler; its ``similarity_threshold`` also parameterises the
        incremental auditor, keeping ``/v1/counts`` and ``/v1/analyze``
        in exact agreement.
    """

    queue_limit: int = 8
    deadline_seconds: float = 30.0
    cache_capacity: int = 32
    refresh_mutations: int | None = 256
    refresh_seconds: float | None = None
    snapshot_path: str | Path | None = None
    warm_start: bool = True
    retry_after_seconds: int = 1
    slo_target_seconds: float | None = None
    slo_window: int = 100
    slo_budget_fraction: float = 0.1
    slo_min_samples: int = 10
    tracez_capacity: int = 64
    execution: str = "inline"
    jobs_path: str | Path | None = None
    job_lease_seconds: float = 15.0
    job_max_attempts: int = 3
    job_backoff_seconds: float = 0.5
    job_reap_seconds: float | None = None
    job_refresh_timeout_seconds: float = 300.0
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1 (got {self.queue_limit})"
            )
        if self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0 (got {self.deadline_seconds})"
            )
        if self.retry_after_seconds < 0:
            raise ConfigurationError(
                "retry_after_seconds must be >= 0 "
                f"(got {self.retry_after_seconds})"
            )
        if self.slo_target_seconds is not None and self.slo_target_seconds <= 0:
            raise ConfigurationError(
                "slo_target_seconds must be > 0 when set "
                f"(got {self.slo_target_seconds})"
            )
        if self.tracez_capacity < 1:
            raise ConfigurationError(
                f"tracez_capacity must be >= 1 (got {self.tracez_capacity})"
            )
        if self.execution not in ("inline", "queue"):
            raise ConfigurationError(
                f'execution must be "inline" or "queue" '
                f"(got {self.execution!r})"
            )
        if self.execution == "queue" and not self.jobs_path:
            raise ConfigurationError(
                'execution "queue" requires jobs_path (the shared queue '
                "database file)"
            )
        if self.job_lease_seconds <= 0:
            raise ConfigurationError(
                "job_lease_seconds must be > 0 "
                f"(got {self.job_lease_seconds})"
            )
        if self.job_max_attempts < 1:
            raise ConfigurationError(
                f"job_max_attempts must be >= 1 (got {self.job_max_attempts})"
            )
        if self.job_backoff_seconds < 0:
            raise ConfigurationError(
                "job_backoff_seconds must be >= 0 "
                f"(got {self.job_backoff_seconds})"
            )
        if self.job_reap_seconds is not None and self.job_reap_seconds <= 0:
            raise ConfigurationError(
                "job_reap_seconds must be > 0 when set "
                f"(got {self.job_reap_seconds})"
            )
        if self.job_refresh_timeout_seconds <= 0:
            raise ConfigurationError(
                "job_refresh_timeout_seconds must be > 0 "
                f"(got {self.job_refresh_timeout_seconds})"
            )


class AnalysisService:
    """The transport-independent application behind the HTTP server."""

    def __init__(
        self,
        state: RbacState | None = None,
        config: ServiceConfig | None = None,
        sinks: Any = (),
    ) -> None:
        self.config = config or ServiceConfig()
        self._sinks = list(sinks)
        self._store = (
            SnapshotStore(self.config.snapshot_path)
            if self.config.snapshot_path
            else None
        )
        self.restored_from_snapshot = False
        meta: SnapshotMeta | None = None
        if self._store is not None and self._store.exists():
            state, meta = self._store.load()
            self.restored_from_snapshot = True
        self._auditor = IncrementalAuditor(
            state,
            similarity_threshold=self.config.analysis.similarity_threshold,
        )
        self._state_lock = threading.RLock()
        self._mutation_seq = meta.mutation_seq if meta is not None else 0
        self._cache = ReportCache(self.config.cache_capacity)
        self._queue = threading.Semaphore(self.config.queue_limit)
        self._draining = threading.Event()
        self._obs_lock = threading.Lock()
        self._counters: dict[str, int | float] = {}
        self._endpoints: dict[str, dict[str, Any]] = {}
        self._in_flight = 0
        self._rejected = 0
        self._started_monotonic = time.monotonic()
        #: Process-wide metric registry: per-endpoint request-latency
        #: histograms (labelled ``{"endpoint": ...}``) plus the engine
        #: histograms merged in from every analysis this service runs.
        #: The registry is internally locked, so request threads record
        #: into it without taking ``_obs_lock``.
        self._registry = MetricRegistry()
        self._slo = (
            SloTracker(
                self.config.slo_target_seconds,
                window=self.config.slo_window,
                budget_fraction=self.config.slo_budget_fraction,
                min_samples=self.config.slo_min_samples,
            )
            if self.config.slo_target_seconds is not None
            else None
        )
        self._tracez = SlowTraceRing(self.config.tracez_capacity)
        #: The durable job plane (queue mode only).  The service is a
        #: *producer* plus reaper: execution happens in worker processes
        #: attached separately via ``repro work``; the sqlite file is
        #: the only shared artifact, so it survives daemon restarts.
        self._jobs: JobClient | None = None
        self._job_reaper: threading.Thread | None = None
        self._job_reaper_stop = threading.Event()
        if self.config.execution == "queue":
            queue = JobQueue(
                self.config.jobs_path,
                lease_seconds=self.config.job_lease_seconds,
                max_attempts=self.config.job_max_attempts,
                backoff_seconds=self.config.job_backoff_seconds,
            )
            self._jobs = JobClient(queue)
        self._scheduler = RefreshScheduler(
            self._refresh_runner,
            refresh_mutations=self.config.refresh_mutations,
            refresh_seconds=self.config.refresh_seconds,
        )
        self._started = False
        #: Warm scan-worker pool shared by every analysis this service
        #: runs (created in start() when the configured analysis fans
        #: its blocked scans out).  Closing the service closes the pool,
        #: which also unlinks any shared-memory segments an interrupted
        #: scan left registered — the SIGTERM-drain cleanup guarantee.
        self._pool: WorkerPool | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Warm-start (optional) and launch the refresh scheduler."""
        if self._started:
            return
        self._started = True
        scan_workers = effective_scan_workers(self.config.analysis)
        if scan_workers > 1:
            self._pool = WorkerPool(scan_workers)
        if self._jobs is not None:
            # Warm-restart recovery: leases held by a previous (dead)
            # daemon or its workers are reaped before anything else runs,
            # then a background sweep keeps recovering while we serve.
            self._jobs.queue.reap_expired()
            interval = (
                self.config.job_reap_seconds
                if self.config.job_reap_seconds is not None
                else self.config.job_lease_seconds / 2
            )
            self._job_reaper = threading.Thread(
                target=self._reap_loop,
                args=(interval,),
                name="repro-service-job-reaper",
                daemon=True,
            )
            self._job_reaper.start()
        if self.config.warm_start:
            # Warm start computes inline even in queue mode: at startup
            # no worker may be attached yet, and the warm analysis exists
            # to heat this process's matrices and cache.
            report, fingerprint, seq = self._refresh_runner(inline=True)
            self._scheduler.prime(report, fingerprint, seq)
        self._scheduler.start()

    def _reap_loop(self, interval: float) -> None:
        while not self._job_reaper_stop.wait(interval):
            self._jobs.queue.reap_expired()

    @property
    def is_draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop accepting ``/v1/*`` work; in-flight requests finish."""
        self._draining.set()

    def close(self, drain_reason: str = "shutdown") -> None:
        """Stop the scheduler and flush the state to the snapshot store.

        Call after the HTTP layer has fully drained (no request can be
        mutating the state anymore).
        """
        self._scheduler.stop()
        if self._job_reaper is not None:
            self._job_reaper_stop.set()
            self._job_reaper.join(timeout=10)
            self._job_reaper = None
        if self._jobs is not None:
            # Close connections only — the queue *file* outlives the
            # daemon (that is the durability contract); workers hold
            # their own connections and keep running.
            self._jobs.queue.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._store is not None:
            with self._state_lock:
                state = self._auditor.state.copy()
                seq = self._mutation_seq
            self._store.save(
                state,
                SnapshotMeta(
                    mutation_seq=seq,
                    fingerprint=state.fingerprint(),
                    saved_at=time.time(),
                    extra={"reason": drain_reason},
                ),
            )
            self._bump("service.snapshots_written", 1)

    @property
    def scheduler(self) -> RefreshScheduler:
        return self._scheduler

    @property
    def cache(self) -> ReportCache:
        return self._cache

    @property
    def jobs(self) -> JobClient | None:
        """The job client (``None`` unless ``execution="queue"``)."""
        return self._jobs

    @property
    def mutation_seq(self) -> int:
        with self._state_lock:
            return self._mutation_seq

    @property
    def state(self) -> RbacState:
        """The live state.  Read-only by convention: mutate it only
        through ``POST /v1/mutations`` (or the auditor), never directly
        — direct mutation desynchronises counts, cache, and snapshot."""
        return self._auditor.state

    # ------------------------------------------------------------------
    # Request handling (transport-independent)
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        deadline_header: str | None = None,
        trace_id_header: str | None = None,
    ) -> tuple[int, dict[str, Any] | str, dict[str, str]]:
        """Serve one request; returns ``(status, payload, headers)``.

        Every request is traced under a ``service.request`` span (shipped
        to the service's sinks, retained for ``GET /tracez``) and
        aggregated into the per-endpoint latency histograms that ``GET
        /metricz`` reports.  The request's trace ID — the ``X-Trace-Id``
        header when the client sent one, freshly generated otherwise —
        is stamped on the trace and echoed in the response headers.

        ``payload`` is normally a JSON-able dict; ``GET
        /metricz?format=prometheus`` returns a plain-text str instead
        (the HTTP layer switches Content-Type accordingly).
        """
        started = time.monotonic()
        parts = urlsplit(path)
        route, query = parts.path, parts.query
        # Job-status routes embed the job id; collapse it so the
        # per-endpoint histogram/SLO label space stays bounded.
        if route.startswith("/v1/jobs/"):
            endpoint = f"{method} /v1/jobs/{{id}}"
        else:
            endpoint = f"{method} {route}"
        trace_id = (trace_id_header or "").strip() or new_trace_id()
        recorder = Recorder(trace_id=trace_id)
        headers: dict[str, str] = {}
        payload: dict[str, Any] | str
        try:
            with use_recorder(recorder):
                with recorder.span(
                    "service.request", method=method, route=route
                ) as span:
                    try:
                        deadline_at = started + self._deadline_seconds(
                            deadline_header
                        )
                        status, payload, headers = self._route(
                            method, route, query, body, deadline_at
                        )
                    except ProtocolError as error:
                        status, payload = 400, {"error": str(error)}
                    except ServiceSaturated as error:
                        status, payload = 429, {"error": str(error)}
                        headers["Retry-After"] = str(
                            self.config.retry_after_seconds
                        )
                    except ServiceDraining as error:
                        status, payload = 503, {"error": str(error)}
                        headers["Connection"] = "close"
                    except DeadlineExceeded as error:
                        status, payload = 504, {"error": str(error)}
                    except ReproError as error:
                        status, payload = 400, {"error": str(error)}
                    span.annotate(status=status)
        except Exception as error:  # never let the transport see a traceback
            status, payload = 500, {
                "error": f"internal error: {type(error).__name__}: {error}"
            }
            headers = {}
        headers["X-Trace-Id"] = trace_id
        self._observe(
            endpoint, status, time.monotonic() - started, recorder
        )
        return status, payload, headers

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(
        self, method: str, route: str, query: str, body: bytes,
        deadline_at: float,
    ) -> tuple[int, dict[str, Any] | str, dict[str, str]]:
        if route == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_healthz()
        if route == "/metricz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_metricz(query)
        if route == "/tracez":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._handle_tracez(query)
        if route.startswith("/v1/"):
            return self._route_v1(method, route, body, deadline_at)
        return 404, {"error": f"no such endpoint: {route}"}, {}

    def _route_v1(
        self, method: str, route: str, body: bytes, deadline_at: float
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if self._draining.is_set():
            raise ServiceDraining("service is draining; retry elsewhere")
        if not self._queue.acquire(blocking=False):
            with self._obs_lock:
                self._rejected += 1
            raise ServiceSaturated(
                f"request queue is full ({self.config.queue_limit} in "
                "flight); retry later"
            )
        with self._obs_lock:
            self._in_flight += 1
        try:
            if route == "/v1/mutations":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return self._handle_mutations(body, deadline_at)
            if route == "/v1/counts":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._handle_counts()
            if route == "/v1/analyze":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return self._handle_analyze(body, deadline_at)
            if route == "/v1/reports/latest":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._handle_latest_report()
            if route == "/v1/jobs":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._handle_jobs_overview()
            if route.startswith("/v1/jobs/"):
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._handle_job_status(route[len("/v1/jobs/"):])
            return 404, {"error": f"no such endpoint: {route}"}, {}
        finally:
            with self._obs_lock:
                self._in_flight -= 1
            self._queue.release()

    @staticmethod
    def _method_not_allowed(
        allowed: str,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        return (
            405,
            {"error": f"method not allowed (use {allowed})"},
            {"Allow": allowed},
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        if self._draining.is_set():
            return 503, {"status": "draining"}, {"Connection": "close"}
        if self._slo is not None:
            degraded = self._slo.degraded_endpoints()
            if degraded:
                return (
                    503,
                    {
                        "status": "degraded",
                        "slo_breached_endpoints": degraded,
                        "slo_target_seconds": self._slo.target_seconds,
                    },
                    {},
                )
        with self._state_lock:
            state = self._auditor.state
            dataset = {
                "users": state.n_users,
                "roles": state.n_roles,
                "permissions": state.n_permissions,
            }
            seq = self._mutation_seq
        return (
            200,
            {
                "status": "ok",
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "mutation_seq": seq,
                "dataset": dataset,
                "restored_from_snapshot": self.restored_from_snapshot,
            },
            {},
        )

    def _handle_metricz(
        self, query: str = ""
    ) -> tuple[int, dict[str, Any] | str, dict[str, str]]:
        params = dict(parse_qsl(query))
        exposition = params.get("format", "json")
        if exposition not in ("json", "prometheus"):
            return (
                400,
                {"error": f"unknown format {exposition!r} "
                          "(use json or prometheus)"},
                {},
            )
        with self._obs_lock:
            counters = dict(sorted(self._counters.items()))
            endpoints = {
                name: dict(stats) for name, stats in self._endpoints.items()
            }
            in_flight = self._in_flight
            rejected = self._rejected
        uptime = time.monotonic() - self._started_monotonic
        job_stats = (
            self._jobs.queue.stats() if self._jobs is not None else None
        )
        if exposition == "prometheus":
            extra_gauges = {
                "service.uptime_seconds": uptime,
                "service.in_flight": in_flight,
                "service.rejected": rejected,
            }
            if job_stats is not None:
                # jobs.claimed / jobs.lease_expired / ... counters plus
                # one gauge per queue state, all from the durable tables
                # (exact across every process sharing the queue file).
                counters = {**counters, **job_stats["counters"]}
                for state_name, count in job_stats["states"].items():
                    extra_gauges[f"jobs.state_{state_name}"] = count
            text = self._registry.prometheus_text(
                extra_counters=counters,
                extra_gauges=extra_gauges,
            )
            return 200, text, {}
        # Per-endpoint latency quantiles come from the labelled
        # request_seconds histograms; the legacy count/error/total/max
        # aggregates stay for continuity.
        for name, stats in endpoints.items():
            summary = self._registry.histogram(
                "service.request_seconds", {"endpoint": name}
            ).summary()
            stats["p50_seconds"] = summary["p50"]
            stats["p90_seconds"] = summary["p90"]
            stats["p99_seconds"] = summary["p99"]
        payload: dict[str, Any] = {
            "schema": 2,
            "uptime_seconds": uptime,
            "counters": counters,
            "endpoints": endpoints,
            "histograms": self._registry.snapshot()["histograms"],
            "cache": self._cache.stats(),
            "queue": {
                "limit": self.config.queue_limit,
                "in_flight": in_flight,
                "rejected": rejected,
            },
            "scheduler": self._scheduler.stats(),
        }
        if job_stats is not None:
            payload["jobs"] = job_stats
        if self._slo is not None:
            payload["slo"] = self._slo.status()
        return 200, payload, {}

    def _handle_tracez(
        self, query: str = ""
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        params = dict(parse_qsl(query))
        try:
            k = int(params.get("k", "10"))
        except ValueError:
            return 400, {"error": f"k must be an integer (got {params['k']!r})"}, {}
        if k < 1:
            return 400, {"error": f"k must be >= 1 (got {k})"}, {}
        return 200, self._tracez.slowest(k), {}

    def _handle_mutations(
        self, body: bytes, deadline_at: float
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        mutations = parse_mutation_batch(self._parse_json(body))
        if time.monotonic() >= deadline_at:
            raise DeadlineExceeded("deadline elapsed before the batch ran")
        with self._state_lock:
            # Validation against the live state makes application atomic:
            # a batch that fails any check mutates nothing.
            validate_batch(self._auditor.state, mutations)
            applied = apply_batch(self._auditor, mutations)
            self._mutation_seq += applied
            seq = self._mutation_seq
        self._scheduler.notify_mutations(applied)
        self._bump("service.mutations_applied", applied)
        return 200, {"applied": applied, "mutation_seq": seq}, {}

    def _handle_counts(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        with self._state_lock:
            counts = self._auditor.counts()
            seq = self._mutation_seq
        return 200, {"counts": counts, "mutation_seq": seq}, {}

    def _handle_analyze(
        self, body: bytes, deadline_at: float
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        overrides = self._parse_json(body) if body.strip() else None
        effective = build_analysis_config(self.config.analysis, overrides)
        fingerprint, snapshot, seq = self._freeze_state()
        remaining = deadline_at - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceeded("deadline elapsed before analysis began")
        if self._jobs is not None:
            return self._enqueue_analyze(
                effective, fingerprint, snapshot, seq, remaining
            )
        key = (fingerprint, config_key(effective))
        (report, payload), source = self._cache.get_or_compute(
            key,
            lambda: self._compute(snapshot, effective),
            timeout=remaining,
        )
        del report  # the cached dict is the response body
        self._bump(f"service.analyze_{source}", 1)
        return (
            200,
            {
                "cache": source,
                "fingerprint": fingerprint,
                "mutation_seq": seq,
                "report": payload,
            },
            {},
        )

    def _handle_latest_report(
        self,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        latest = self._scheduler.latest()
        if latest is None:
            return 404, {"error": "no report published yet"}, {}
        return 200, latest, {}

    # ------------------------------------------------------------------
    # Job-plane endpoints (queue execution mode)
    # ------------------------------------------------------------------
    def _enqueue_analyze(
        self,
        effective: AnalysisConfig,
        fingerprint: str,
        snapshot: RbacState,
        seq: int,
        remaining: float,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Queue-mode ``POST /v1/analyze``: enqueue and answer 202.

        The job's identity is ``(state fingerprint, config key)`` — the
        same identity the report cache uses, so two requests for the
        same analysis share one queue row (idempotent enqueue) exactly
        as they would share one cache entry inline.  The request's
        remaining deadline becomes the job's queue-visible ``expires_at``
        (wall clock — comparable across worker processes), so workers
        skip, and the reaper fails, jobs nobody is waiting for anymore.
        The request's trace ID rides along in the record: the executing
        worker stamps it on its ``jobs.run`` trace, stitching the
        worker-side fragment into this request's trace tree.
        """
        from repro.io.jsonio import state_to_dict

        spec_key = hashlib.sha256(
            f"{fingerprint}|{config_key(effective)}".encode("utf-8")
        ).hexdigest()
        record, created = self._jobs.enqueue(
            "analyze",
            {
                "state": state_to_dict(snapshot),
                "config": effective.to_dict(),
                "fingerprint": fingerprint,
                "mutation_seq": seq,
            },
            spec_key=spec_key,
            trace_id=current_recorder().trace_id,
            expires_at=time.time() + remaining,
        )
        self._bump(
            "service.analyze_enqueued" if created
            else "service.analyze_dedup",
            1,
        )
        return (
            202,
            {
                "job_id": record.job_id,
                "state": record.state,
                "created": created,
                "fingerprint": fingerprint,
                "mutation_seq": seq,
                "poll": f"/v1/jobs/{record.job_id}",
            },
            {},
        )

    def _require_jobs(self) -> JobClient:
        if self._jobs is None:
            raise ProtocolError(
                'job endpoints require execution "queue" '
                "(start the service with --execution queue)"
            )
        return self._jobs

    def _handle_jobs_overview(
        self,
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        return 200, self._require_jobs().queue.stats(), {}

    def _handle_job_status(
        self, job_id: str
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """``GET /v1/jobs/{id}``: live status, plus the result once done.

        A ``done`` job's payload embeds the worker's full result (the
        serialised report + the fingerprint/mutation_seq it analysed),
        so one poll both observes completion and fetches the report.
        """
        client = self._require_jobs()
        record = client.queue.get(job_id, include_result=True)
        if record is None:
            return 404, {"error": f"no such job: {job_id}"}, {}
        payload = record.public_dict()
        if record.state == "done" and record.result is not None:
            payload["result"] = record.result
        return 200, payload, {}

    # ------------------------------------------------------------------
    # Analysis plumbing
    # ------------------------------------------------------------------
    def _freeze_state(self) -> tuple[str, RbacState, int]:
        """Fingerprint + copy the live state atomically.

        The copy happens under the state lock so the fingerprint is
        guaranteed to describe exactly the copied content — mutations
        arriving after the lock is released cannot desynchronise the
        cache key from the analysed snapshot.
        """
        with self._state_lock:
            state = self._auditor.state
            return state.fingerprint(), state.copy(), self._mutation_seq

    def _compute(
        self, snapshot: RbacState, config: AnalysisConfig
    ) -> tuple[Report, dict[str, Any]]:
        """One full analysis; runs on a cache compute thread.

        With a warm pool, the blocked scans inside ``analyze`` reuse this
        service's worker processes instead of spawning a fresh pool per
        request (``parallel.pool_reuses`` in ``/metricz`` counts the
        savings).
        """
        if self._pool is not None and not self._pool.closed:
            with use_pool(self._pool):
                report = analyze(snapshot, config)
        else:
            report = analyze(snapshot, config)
        self._merge_counters(report.metrics.get("counters", {}))
        # Engine histograms (per-block kernel timings, detector
        # durations, shm publish sizes) accumulate across every analysis
        # this process serves; /metricz exposes the merged distributions.
        self._registry.merge_histogram_dicts(
            report.metrics.get("histograms", {})
        )
        self._bump("service.analyses", 1)
        return report, report.to_dict()

    def _refresh_runner(self, inline: bool = False) -> tuple[Report, str, int]:
        """Scheduler hook: analyse the current state with the defaults.

        In queue mode the refresh is *enqueued* like any client analysis
        and awaited — the scheduler thread tolerates the latency, the
        work lands on the worker fleet, and the result still flows
        through the report cache under the same key a ``/v1/analyze``
        for the same content would use.  ``inline=True`` (warm start)
        forces in-process computation.
        """
        fingerprint, snapshot, seq = self._freeze_state()
        key = (fingerprint, config_key(self.config.analysis))
        if self._jobs is not None and not inline:
            def compute() -> tuple[Report, dict[str, Any]]:
                return self._compute_queued(
                    snapshot, self.config.analysis, fingerprint, seq
                )
        else:
            def compute() -> tuple[Report, dict[str, Any]]:
                return self._compute(snapshot, self.config.analysis)
        (report, _payload), source = self._cache.get_or_compute(key, compute)
        self._bump(f"service.analyze_{source}", 1)
        return report, fingerprint, seq

    def _compute_queued(
        self,
        snapshot: RbacState,
        config: AnalysisConfig,
        fingerprint: str,
        seq: int,
    ) -> tuple[Report, dict[str, Any]]:
        """Run one analysis through the worker fleet and reconstruct it.

        The worker ships ``report.to_dict()`` back through the queue;
        :meth:`Report.from_payload` reattaches this process's snapshot so
        downstream consumers (the scheduler's diff, renderers) get a live
        report indistinguishable from an inline one.
        """
        from repro.io.jsonio import state_to_dict

        spec_key = hashlib.sha256(
            f"{fingerprint}|{config_key(config)}".encode("utf-8")
        ).hexdigest()
        self._jobs.enqueue(
            "analyze",
            {
                "state": state_to_dict(snapshot),
                "config": config.to_dict(),
                "fingerprint": fingerprint,
                "mutation_seq": seq,
            },
            spec_key=spec_key,
            expires_at=time.time() + self.config.job_refresh_timeout_seconds,
        )
        result = self._jobs.wait(
            spec_key, timeout=self.config.job_refresh_timeout_seconds
        )
        payload = result["report"]
        report = Report.from_payload(payload, snapshot)
        self._merge_counters(report.metrics.get("counters", {}))
        self._registry.merge_histogram_dicts(
            report.metrics.get("histograms", {})
        )
        self._bump("service.analyses_queued", 1)
        return report, payload

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_json(body: bytes) -> Any:
        if not body.strip():
            raise ProtocolError("expected a JSON request body")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"invalid JSON body: {error}") from error

    def _deadline_seconds(self, header: str | None) -> float:
        if header is None:
            return self.config.deadline_seconds
        try:
            deadline = float(header)
        except ValueError:
            raise ProtocolError(
                f"X-Deadline must be a number of seconds (got {header!r})"
            ) from None
        if deadline <= 0:
            raise ProtocolError(
                f"X-Deadline must be > 0 seconds (got {deadline})"
            )
        return deadline

    def _bump(self, counter: str, value: int | float) -> None:
        with self._obs_lock:
            self._counters[counter] = self._counters.get(counter, 0) + value

    def _merge_counters(self, counters: dict[str, int | float]) -> None:
        with self._obs_lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value

    def _observe(
        self, endpoint: str, status: int, seconds: float, recorder: Recorder
    ) -> None:
        """Fold one request into the service metrics and emit its trace."""
        # The registry and SLO tracker have their own locks; only the
        # plain-dict aggregates (and sink emission) need _obs_lock.
        self._registry.observe(
            "service.request_seconds", seconds, labels={"endpoint": endpoint}
        )
        if self._slo is not None:
            self._slo.observe(endpoint, seconds)
        for root in recorder.traces:
            self._tracez.record(root, endpoint, status)
        with self._obs_lock:
            stats = self._endpoints.setdefault(
                endpoint,
                {
                    "count": 0,
                    "errors": 0,
                    "total_seconds": 0.0,
                    "max_seconds": 0.0,
                },
            )
            stats["count"] += 1
            if status >= 400:
                stats["errors"] += 1
            stats["total_seconds"] += seconds
            stats["max_seconds"] = max(stats["max_seconds"], seconds)
            self._counters["service.requests"] = (
                self._counters.get("service.requests", 0) + 1
            )
            key = f"service.http_{status}"
            self._counters[key] = self._counters.get(key, 0) + 1
            # Sinks are shared across handler threads; emit under the
            # same lock that guards the aggregates.
            for root in recorder.traces:
                for sink in self._sinks:
                    sink.emit(root)


class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Thin translation layer: HTTP <-> ``AnalysisService.handle``."""

    service: AnalysisService  # bound by ServiceServer via subclassing
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    #: Socket timeout so an idle keep-alive connection cannot stall a
    #: graceful drain indefinitely.
    timeout = 30

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Request accounting lives in /metricz and the trace sinks; the
        # default stderr line would violate the clean-logging contract.
        pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        status, payload, headers = self.service.handle(
            method,
            self.path,
            body,
            deadline_header=self.headers.get("X-Deadline"),
            trace_id_header=self.headers.get("X-Trace-Id"),
        )
        if isinstance(payload, str):
            # Prometheus text exposition (and any future text payloads).
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
            content_type = "application/json"
        if self.service.is_draining:
            headers.setdefault("Connection", "close")
            self.close_connection = True
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True


class ServiceServer:
    """Binds an :class:`AnalysisService` to a ``ThreadingHTTPServer``.

    Two serving modes share one drain path:

    * ``serve_forever()`` — blocking, for the CLI; ``request_shutdown()``
      (typically from a signal handler) makes it return, after which the
      caller runs ``drain()``.
    * ``start()`` / ``stop()`` — background thread, for tests and
      in-process embedding (see ``examples/continuous_service.py``).
    """

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type(
            "BoundServiceHandler", (_ServiceHTTPHandler,), {"service": service}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # Graceful drain depends on server_close() joining the in-flight
        # handler threads (ThreadingHTTPServer defaults to daemonic
        # threads, which would be abandoned instead).
        self._httpd.daemon_threads = False
        self._thread: threading.Thread | None = None
        self._shutdown_requested = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Start the service and serve until ``request_shutdown()``."""
        self.service.start()
        self._httpd.serve_forever()

    def start(self) -> None:
        """Serve on a background thread (returns once listening)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe to call from a signal handler.

        The accept loop is stopped from a helper thread because
        ``shutdown()`` blocks until the loop exits — calling it inline
        from a signal handler that interrupted ``serve_forever`` would
        deadlock.
        """
        if self._shutdown_requested:
            return
        self._shutdown_requested = True
        self.service.begin_drain()
        threading.Thread(
            target=self._httpd.shutdown,
            name="repro-service-shutdown",
            daemon=True,
        ).start()

    def drain(self, reason: str = "shutdown") -> None:
        """Finish in-flight requests, close sockets, snapshot the state."""
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None
        self._httpd.server_close()
        self.service.close(drain_reason=reason)

    def stop(self, reason: str = "shutdown") -> None:
        """Convenience: ``request_shutdown()`` + ``drain()``."""
        self.request_shutdown()
        self.drain(reason=reason)
