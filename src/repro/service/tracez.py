"""Slow-trace retention for the analysis service's ``/tracez`` endpoint.

A :class:`SlowTraceRing` keeps the most recent completed request traces
in a bounded ring and answers "which recent requests were slowest?"
without unbounded memory: the ring holds at most ``capacity`` traces
(oldest evicted first) and ``/tracez`` reports the top-K by root
duration among what is retained.

Stored entries are plain JSON-able summaries — the span tree is
flattened to ``(path, depth, duration)`` rows at insertion time so the
endpoint never serialises live :class:`~repro.obs.spans.Span` objects
and holds no references into request state.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.obs.spans import Span, span_count

__all__ = ["SlowTraceRing"]


class SlowTraceRing:
    """Bounded ring of recent request traces, queryable by duration."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._seen = 0

    def record(self, root: Span, endpoint: str, status: int) -> None:
        """Flatten and retain one completed request trace."""
        entry = {
            "trace_id": root.trace_id,
            "endpoint": endpoint,
            "status": status,
            "duration_s": root.duration,
            "spans": span_count(root),
            "tree": [
                {
                    "path": path,
                    "depth": depth,
                    "duration_s": span.duration,
                    "counters": dict(span.counters),
                }
                for path, depth, span in root.walk()
            ],
        }
        with self._lock:
            self._ring.append(entry)
            self._seen += 1

    def slowest(self, k: int = 10) -> dict[str, Any]:
        """Top-``k`` retained traces by duration, slowest first."""
        with self._lock:
            retained = list(self._ring)
            seen = self._seen
        retained.sort(key=lambda entry: entry["duration_s"], reverse=True)
        return {
            "capacity": self.capacity,
            "retained": len(retained),
            "seen": seen,
            "traces": retained[: max(0, int(k))],
        }
