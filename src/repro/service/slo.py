"""Rolling-window SLO tracking for the analysis service.

One :class:`SloTracker` watches every endpoint's request latencies
against a single latency target and error budget: within a sliding
window of the most recent requests per endpoint, at most
``budget_fraction`` of them may exceed ``target_seconds``.  An endpoint
whose window breaches the budget (once at least ``min_samples`` are in
the window) is *degraded*, and the service degrades ``/healthz``
accordingly — load balancers notice latency regressions, not only
crashes.

Tracking is opt-in (the service leaves it off unless a target is
configured) and self-contained: plain deques under one lock, no
timers.  Observations carry no timestamps — the window is
count-based, sized so that "recent" means the last N requests rather
than a wall-clock horizon, which keeps the tracker deterministic under
test and free of clock reads on the hot path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["SloTracker"]


class SloTracker:
    """Count-based sliding-window latency SLO per endpoint.

    Parameters
    ----------
    target_seconds:
        The per-request latency target.
    window:
        How many recent requests per endpoint the verdict considers.
    budget_fraction:
        Tolerated fraction of over-target requests within the window
        (``0.1`` = 10% may be slow before the endpoint degrades).
    min_samples:
        Verdicts are withheld until an endpoint's window holds at least
        this many observations, so one slow cold-start request cannot
        degrade a freshly started service.
    """

    def __init__(
        self,
        target_seconds: float,
        window: int = 100,
        budget_fraction: float = 0.1,
        min_samples: int = 10,
    ) -> None:
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= budget_fraction < 1.0:
            raise ValueError("budget_fraction must be in [0, 1)")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.target_seconds = float(target_seconds)
        self.window = int(window)
        self.budget_fraction = float(budget_fraction)
        self.min_samples = int(min_samples)
        self._lock = threading.Lock()
        #: endpoint -> deque of booleans (True = over target), newest last.
        self._windows: dict[str, deque[bool]] = {}

    def observe(self, endpoint: str, seconds: float) -> None:
        """Record one request latency for ``endpoint``."""
        over = seconds > self.target_seconds
        with self._lock:
            window = self._windows.get(endpoint)
            if window is None:
                window = deque(maxlen=self.window)
                self._windows[endpoint] = window
            window.append(over)

    def _verdict(self, window: deque[bool]) -> tuple[bool, int]:
        breaches = sum(window)
        degraded = (
            len(window) >= self.min_samples
            and breaches > self.budget_fraction * len(window)
        )
        return degraded, breaches

    def degraded_endpoints(self) -> list[str]:
        """Endpoints currently over budget (sorted)."""
        with self._lock:
            return sorted(
                endpoint
                for endpoint, window in self._windows.items()
                if self._verdict(window)[0]
            )

    def status(self) -> dict[str, Any]:
        """Full per-endpoint SLO state for ``/metricz``."""
        with self._lock:
            endpoints = {}
            for endpoint in sorted(self._windows):
                window = self._windows[endpoint]
                degraded, breaches = self._verdict(window)
                endpoints[endpoint] = {
                    "samples": len(window),
                    "breaches": breaches,
                    "breach_fraction": (
                        breaches / len(window) if window else 0.0
                    ),
                    "degraded": degraded,
                }
        return {
            "target_seconds": self.target_seconds,
            "window": self.window,
            "budget_fraction": self.budget_fraction,
            "min_samples": self.min_samples,
            "endpoints": endpoints,
        }
