"""Wire protocol of the analysis service.

Everything the HTTP layer shares with clients lives here: the mutation
vocabulary of ``POST /v1/mutations``, batch parsing and *atomic*
validation (a batch either applies in full or is rejected with no state
change), the analysis-request overrides of ``POST /v1/analyze``, and the
service-level exceptions the server maps to HTTP status codes.

The mutation vocabulary mirrors :class:`repro.core.incremental.
IncrementalAuditor` one-to-one, so an accepted batch is applied through
the auditor and keeps the live inefficiency counts current in time
proportional to the change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.core.engine import AnalysisConfig
from repro.core.incremental import IncrementalAuditor
from repro.core.state import RbacState
from repro.exceptions import ConfigurationError, ReproError

__all__ = [
    "Mutation",
    "MUTATION_OPS",
    "ProtocolError",
    "DeadlineExceeded",
    "ServiceSaturated",
    "ServiceDraining",
    "parse_mutation_batch",
    "validate_batch",
    "apply_batch",
    "build_analysis_config",
    "config_key",
]


class ProtocolError(ReproError):
    """A request body violates the wire protocol (HTTP 400)."""


class DeadlineExceeded(ReproError):
    """A request's deadline elapsed before its result was ready (504)."""


class ServiceSaturated(ReproError):
    """The bounded request queue is full — back off and retry (429)."""


class ServiceDraining(ReproError):
    """The service is shutting down and accepts no new work (503)."""


#: op name -> required string fields (beyond ``op`` itself).
MUTATION_OPS: dict[str, tuple[str, ...]] = {
    "add_user": ("id",),
    "add_role": ("id",),
    "add_permission": ("id",),
    "remove_user": ("id",),
    "remove_role": ("id",),
    "remove_permission": ("id",),
    "assign_user": ("role", "user"),
    "revoke_user": ("role", "user"),
    "assign_permission": ("role", "permission"),
    "revoke_permission": ("role", "permission"),
}


@dataclass(frozen=True)
class Mutation:
    """One parsed mutation of a ``POST /v1/mutations`` batch."""

    op: str
    #: Field values in the order declared by :data:`MUTATION_OPS`.
    args: tuple[str, ...]

    def to_dict(self) -> dict[str, str]:
        payload = {"op": self.op}
        for name, value in zip(MUTATION_OPS[self.op], self.args):
            payload[name] = value
        return payload


def parse_mutation_batch(document: Any) -> list[Mutation]:
    """Parse and shape-check a mutation-batch document.

    Expects ``{"mutations": [{"op": ..., <fields>}, ...]}``.  Raises
    :class:`ProtocolError` (with the offending index) on any shape
    problem; referential validity is checked separately by
    :func:`validate_batch`.
    """
    if not isinstance(document, Mapping):
        raise ProtocolError("expected a JSON object at the top level")
    raw = document.get("mutations")
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise ProtocolError('expected a "mutations" array')
    mutations: list[Mutation] = []
    for index, item in enumerate(raw):
        if not isinstance(item, Mapping):
            raise ProtocolError(f"mutation {index}: expected an object")
        op = item.get("op")
        if op not in MUTATION_OPS:
            raise ProtocolError(
                f"mutation {index}: unknown op {op!r} "
                f"(expected one of {sorted(MUTATION_OPS)})"
            )
        args = []
        for field in MUTATION_OPS[op]:
            value = item.get(field)
            if not isinstance(value, str) or not value:
                raise ProtocolError(
                    f"mutation {index}: op {op!r} requires a non-empty "
                    f"string field {field!r}"
                )
            args.append(value)
        mutations.append(Mutation(op=op, args=tuple(args)))
    return mutations


def validate_batch(
    state: RbacState, mutations: Iterable[Mutation]
) -> None:
    """Check a batch against ``state`` without mutating anything.

    Simulates only the entity-id sets (membership is all the auditor's
    mutation vocabulary can violate — edge operations are idempotent),
    taking earlier mutations of the same batch into account.  Raising
    here is what makes batch application atomic: the server applies a
    batch only after it validated in full, so a rejected batch leaves
    the live state untouched.
    """
    ids: dict[str, set[str]] = {
        "user": set(state.user_ids()),
        "role": set(state.role_ids()),
        "permission": set(state.permission_ids()),
    }

    def require(kind: str, identifier: str, index: int) -> None:
        if identifier not in ids[kind]:
            raise ProtocolError(
                f"mutation {index}: unknown {kind} {identifier!r}"
            )

    for index, mutation in enumerate(mutations):
        op, args = mutation.op, mutation.args
        if op.startswith("add_"):
            kind = op[len("add_"):]
            if args[0] in ids[kind]:
                raise ProtocolError(
                    f"mutation {index}: duplicate {kind} {args[0]!r}"
                )
            ids[kind].add(args[0])
        elif op.startswith("remove_"):
            kind = op[len("remove_"):]
            require(kind, args[0], index)
            ids[kind].remove(args[0])
        else:  # assign_* / revoke_*
            target_kind = op.split("_", 1)[1]
            require("role", args[0], index)
            require(target_kind, args[1], index)


def apply_batch(
    auditor: IncrementalAuditor, mutations: Iterable[Mutation]
) -> int:
    """Apply a validated batch through the auditor; returns ops applied.

    Callers must hold the service's state lock and must have run
    :func:`validate_batch` against the same state first.
    """
    applied = 0
    for mutation in mutations:
        getattr(auditor, mutation.op)(*mutation.args)
        applied += 1
    return applied


#: Overrides accepted in a ``POST /v1/analyze`` body.
_ANALYZE_OVERRIDES = (
    "finder",
    "similarity_threshold",
    "extensions",
    "n_workers",
    "block_rows",
    "kernel",
)


def build_analysis_config(
    base: AnalysisConfig, overrides: Mapping[str, Any] | None = None
) -> AnalysisConfig:
    """The effective config for one analyze request.

    ``base`` is the service's configured default; ``overrides`` is the
    (already JSON-decoded) request body.  Unknown keys are rejected so
    typos fail loudly instead of silently analysing with defaults.
    """
    if not overrides:
        return base
    if not isinstance(overrides, Mapping):
        raise ProtocolError("expected a JSON object of analyze overrides")
    unknown = sorted(set(overrides) - set(_ANALYZE_OVERRIDES))
    if unknown:
        raise ProtocolError(
            f"unknown analyze option(s): {', '.join(unknown)} "
            f"(expected a subset of {', '.join(_ANALYZE_OVERRIDES)})"
        )
    options = dict(
        finder=overrides.get("finder", base.finder),
        similarity_threshold=overrides.get(
            "similarity_threshold", base.similarity_threshold
        ),
        n_workers=overrides.get("n_workers", base.n_workers),
        block_rows=overrides.get("block_rows", base.block_rows),
        kernel=overrides.get("kernel", base.kernel),
        finder_options=dict(base.finder_options),
        axes=base.axes,
        collapse_duplicates=base.collapse_duplicates,
    )
    from repro.core.engine import ALL_TYPES, EXTENSION_TYPES

    extensions = overrides.get(
        "extensions", bool(set(EXTENSION_TYPES) & set(base.enabled_types))
    )
    if not isinstance(extensions, bool):
        raise ProtocolError('"extensions" must be a boolean')
    options["enabled_types"] = (
        ALL_TYPES + EXTENSION_TYPES if extensions else ALL_TYPES
    )
    try:
        return AnalysisConfig(**options)
    except (ConfigurationError, TypeError) as error:
        raise ProtocolError(f"invalid analyze options: {error}") from error


def config_key(config: AnalysisConfig) -> str:
    """Canonical string identity of an effective analysis configuration.

    Combined with :meth:`RbacState.fingerprint` it forms the report-cache
    key: two requests share a cache entry exactly when they would run
    the same analysis over the same content.  Worker count, block size
    and kernel are *excluded* — they change how the analysis is
    executed, never its result (the engine's parity guarantees), so a
    report computed with one execution layout is valid for every other.
    """
    payload = config.to_dict()
    payload.pop("n_workers", None)
    payload.pop("block_rows", None)
    payload.pop("kernel", None)
    return json.dumps(payload, sort_keys=True)
