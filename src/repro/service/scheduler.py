"""Background refresh: periodic full analysis + report diffing.

The incremental auditor keeps *counts* current per mutation, but the
full report (findings, severities, consolidation potential) is only as
fresh as the last complete analysis.  The scheduler closes that gap: a
background thread re-runs the full analysis once ``refresh_mutations``
mutations have accumulated or ``refresh_seconds`` have elapsed with
pending changes — whichever comes first — and publishes the new report
together with a :class:`~repro.core.reportdiff.ReportDiff` against the
previous run, which is exactly what a reviewer polls
(``GET /v1/reports/latest``).

A refresh with zero pending mutations is skipped: an unchanged state
cannot change the report (and would be a cache hit anyway).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.core.report import Report
from repro.core.reportdiff import ReportDiff, diff_reports
from repro.exceptions import ConfigurationError

__all__ = ["RefreshScheduler"]

#: ``runner`` contract: produce ``(report, fingerprint, mutation_seq)``
#: for the current live state (the service routes this through its
#: report cache, so back-to-back refreshes of an unchanged state are
#: nearly free).
RunnerResult = "tuple[Report, str, int]"


class RefreshScheduler:
    """Re-runs full analysis after N mutations or T seconds."""

    def __init__(
        self,
        runner: Callable[[], Any],
        refresh_mutations: int | None = None,
        refresh_seconds: float | None = None,
    ) -> None:
        if refresh_mutations is not None and refresh_mutations < 1:
            raise ConfigurationError(
                "refresh_mutations must be >= 1 or None "
                f"(got {refresh_mutations})"
            )
        if refresh_seconds is not None and refresh_seconds <= 0:
            raise ConfigurationError(
                f"refresh_seconds must be > 0 or None (got {refresh_seconds})"
            )
        self._runner = runner
        self.refresh_mutations = refresh_mutations
        self.refresh_seconds = refresh_seconds
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._pending = 0
        self._last_run = time.monotonic()
        # Published results (guarded by _cond's lock).
        self._seq = 0
        self._latest_report: Report | None = None
        self._latest_fingerprint = ""
        self._latest_mutation_seq = 0
        self._latest_diff: ReportDiff | None = None
        self.runs = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any refresh trigger is configured."""
        return (
            self.refresh_mutations is not None
            or self.refresh_seconds is not None
        )

    def start(self) -> None:
        """Start the background thread (no-op when no trigger is set)."""
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Signal the loop to exit and join it."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def notify_mutations(self, count: int) -> None:
        """Record ``count`` freshly-applied mutations; may trigger a run."""
        if count <= 0:
            return
        with self._cond:
            self._pending += count
            self._cond.notify_all()

    def prime(self, report: Report, fingerprint: str, mutation_seq: int) -> None:
        """Install an opening report as the baseline (no diff yet)."""
        with self._cond:
            self._publish(report, fingerprint, mutation_seq, diff=None)

    def run_once(self) -> None:
        """Run one refresh synchronously (used by tests and drain)."""
        self._refresh()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def latest(self) -> dict[str, Any] | None:
        """The latest published report + diff as a JSON-ready payload."""
        with self._cond:
            if self._latest_report is None:
                return None
            return {
                "seq": self._seq,
                "mutation_seq": self._latest_mutation_seq,
                "fingerprint": self._latest_fingerprint,
                "counts": self._latest_report.counts(),
                "n_findings": len(self._latest_report.findings),
                "diff": (
                    self._latest_diff.to_dict()
                    if self._latest_diff is not None
                    else None
                ),
                "pending_mutations": self._pending,
            }

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "enabled": self.enabled,
                "runs": self.runs,
                "errors": self.errors,
                "pending_mutations": self._pending,
                "published_seq": self._seq,
            }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _publish(
        self,
        report: Report,
        fingerprint: str,
        mutation_seq: int,
        diff: ReportDiff | None,
    ) -> None:
        self._seq += 1
        self._latest_report = report
        self._latest_fingerprint = fingerprint
        self._latest_mutation_seq = mutation_seq
        self._latest_diff = diff

    def _refresh(self) -> None:
        with self._cond:
            self._pending = 0
            self._last_run = time.monotonic()
            previous = self._latest_report
        try:
            report, fingerprint, mutation_seq = self._runner()
        except Exception:
            with self._cond:
                self.errors += 1
            return
        diff = diff_reports(previous, report) if previous is not None else None
        with self._cond:
            self.runs += 1
            self._publish(report, fingerprint, mutation_seq, diff)

    def _due(self, now: float) -> bool:
        """Whether a refresh should run now (call with the lock held)."""
        if self._pending <= 0:
            return False
        if (
            self.refresh_mutations is not None
            and self._pending >= self.refresh_mutations
        ):
            return True
        return (
            self.refresh_seconds is not None
            and now - self._last_run >= self.refresh_seconds
        )

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._due(time.monotonic()):
                    if self.refresh_seconds is not None and self._pending > 0:
                        remaining = self.refresh_seconds - (
                            time.monotonic() - self._last_run
                        )
                        self._cond.wait(max(remaining, 0.01))
                    else:
                        self._cond.wait()
                if self._stopping:
                    return
            self._refresh()
