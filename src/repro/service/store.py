"""Durable snapshots for the analysis service.

The service is a long-running process holding mutable state; the store
makes that state survive restarts.  On graceful drain the server writes
one snapshot — the full RBAC state plus service metadata (mutation
sequence number, content fingerprint, wall-clock stamp) — and a warm
restart reloads it, so a drain/restart cycle is invisible to clients
apart from the gap in availability.

Writes are atomic (temp file in the target directory + ``os.replace``),
so a crash mid-write leaves the previous snapshot intact; loads verify
the stored fingerprint against the rebuilt state, so silent corruption
is detected instead of served.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.state import RbacState
from repro.exceptions import DataFormatError
from repro.io.jsonio import state_from_dict, state_to_dict

__all__ = ["SnapshotMeta", "SnapshotStore", "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION"]

SNAPSHOT_FORMAT = "repro-rbac-snapshot"
SNAPSHOT_VERSION = 1


@dataclass
class SnapshotMeta:
    """Service metadata persisted alongside the state."""

    #: Total mutations applied over the service lifetime (monotonic
    #: across warm restarts — clients can detect a cold restart by a
    #: sequence reset).
    mutation_seq: int = 0
    #: ``RbacState.fingerprint()`` at save time; verified on load.
    fingerprint: str = ""
    #: Wall-clock save time (``time.time()``), informational only.
    saved_at: float = 0.0
    #: Free-form extras (e.g. the server's drain reason).
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "mutation_seq": self.mutation_seq,
            "fingerprint": self.fingerprint,
            "saved_at": self.saved_at,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "SnapshotMeta":
        if not isinstance(payload, dict):
            raise DataFormatError("snapshot meta must be an object")
        return cls(
            mutation_seq=int(payload.get("mutation_seq", 0)),
            fingerprint=str(payload.get("fingerprint", "")),
            saved_at=float(payload.get("saved_at", 0.0)),
            extra=dict(payload.get("extra", {})),
        )


class SnapshotStore:
    """Atomic save/load of ``(RbacState, SnapshotMeta)`` at one path."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def save(self, state: RbacState, meta: SnapshotMeta) -> None:
        """Write a snapshot atomically (all-or-previous, never partial)."""
        document = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "meta": meta.to_dict(),
            "state": state_to_dict(state),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as out:
                json.dump(document, out, sort_keys=True)
                out.flush()
                os.fsync(out.fileno())
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def load(self) -> tuple[RbacState, SnapshotMeta]:
        """Read a snapshot back; verifies format and fingerprint."""
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise DataFormatError(
                f"corrupt snapshot {self.path}: {error}"
            ) from error
        if not isinstance(document, dict) or (
            document.get("format") != SNAPSHOT_FORMAT
        ):
            raise DataFormatError(
                f"{self.path} is not a {SNAPSHOT_FORMAT} file"
            )
        if document.get("version") != SNAPSHOT_VERSION:
            raise DataFormatError(
                f"unsupported snapshot version: {document.get('version')!r}"
            )
        state = state_from_dict(document.get("state", {}))
        meta = SnapshotMeta.from_dict(document.get("meta", {}))
        if meta.fingerprint and state.fingerprint() != meta.fingerprint:
            raise DataFormatError(
                f"snapshot {self.path} failed its fingerprint check "
                "(file corrupted or edited since save)"
            )
        return state, meta
