"""From-scratch density-based clustering substrate.

The paper's *exact clustering* baseline uses DBSCAN (Ester et al., 1996)
with Hamming distance, ``min_samples = 2`` and ``eps`` set to the allowed
number of differing users/permissions (plus a small epsilon for float
safety).  scikit-learn is not available offline, so this package implements
DBSCAN directly:

* :mod:`~repro.cluster.distances` — metric library (hamming, manhattan,
  euclidean, jaccard) operating on dense numpy rows.
* :mod:`~repro.cluster.neighbors` — neighbour-search backends: a generic
  brute-force search for any metric, and a bit-packed Hamming search that
  matches the packed representation used elsewhere.
* :mod:`~repro.cluster.dbscan` — the DBSCAN driver itself, returning
  scikit-learn-compatible integer labels (``-1`` marks noise).
"""

from repro.cluster.dbscan import DBSCAN, NOISE, dbscan_labels, labels_to_groups
from repro.cluster.distances import (
    METRICS,
    euclidean_distances,
    hamming_distances,
    jaccard_distances,
    manhattan_distances,
    resolve_metric,
)
from repro.cluster.neighbors import (
    BitpackedHammingSearch,
    BruteForceSearch,
    NeighborSearch,
)

__all__ = [
    "DBSCAN",
    "NOISE",
    "dbscan_labels",
    "labels_to_groups",
    "METRICS",
    "resolve_metric",
    "hamming_distances",
    "manhattan_distances",
    "euclidean_distances",
    "jaccard_distances",
    "NeighborSearch",
    "BruteForceSearch",
    "BitpackedHammingSearch",
]
