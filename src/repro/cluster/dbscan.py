"""DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996), implemented from scratch.

This is the paper's *exact clustering* baseline.  The interface mirrors the
scikit-learn implementation the paper used:

* ``fit_predict`` returns one integer label per point;
* ``-1`` marks noise (points that belong to no cluster);
* labels are assigned in order of cluster discovery, so results are fully
  deterministic for a given input ordering.

The RBAC use case fixes ``min_samples = 2`` ("we want to find even two akin
roles") and ``eps = k + epsilon`` where ``k`` is the allowed number of
differing users/permissions (``k = 0`` for exact duplicates).  With
``min_samples = 2`` every point with at least one neighbour is a core
point, so border-point subtleties disappear and clusters are exactly the
connected components of the "distance <= eps" graph — the same semantics
as the custom algorithm, which is what makes the three methods comparable.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import numpy.typing as npt

from repro.cluster.distances import DistanceFn
from repro.cluster.neighbors import (
    BitpackedHammingSearch,
    BruteForceSearch,
    NeighborSearch,
)
from repro.exceptions import ConfigurationError
from repro.obs import current_recorder

#: Label used for noise points, matching scikit-learn's convention.
NOISE = -1


class DBSCAN:
    """Density-based spatial clustering of applications with noise.

    Parameters
    ----------
    eps:
        Maximum distance between two samples for one to be considered in
        the neighbourhood of the other.
    min_samples:
        Number of samples in a neighbourhood (including the point itself)
        for a point to qualify as a core point.
    metric:
        Metric name or callable (see :mod:`repro.cluster.distances`), or
        the string ``"bitpacked-hamming"`` to use the packed-word Hamming
        backend on boolean data.
    """

    def __init__(
        self,
        eps: float,
        min_samples: int = 2,
        metric: str | DistanceFn = "hamming",
    ) -> None:
        if eps < 0:
            raise ConfigurationError(f"eps must be >= 0, got {eps}")
        if min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        self.eps = float(eps)
        self.min_samples = int(min_samples)
        self.metric = metric
        self.labels_: npt.NDArray[np.intp] | None = None

    def _build_search(self, data: npt.ArrayLike) -> NeighborSearch:
        if isinstance(data, NeighborSearch):
            return data
        if self.metric == "bitpacked-hamming":
            return BitpackedHammingSearch(data)
        return BruteForceSearch(data, metric=self.metric)

    def fit_predict(self, data: npt.ArrayLike) -> npt.NDArray[np.intp]:
        """Cluster ``data`` and return per-point integer labels.

        ``data`` may also be a pre-built
        :class:`~repro.cluster.neighbors.NeighborSearch`, which lets
        callers reuse an index across runs.
        """
        search = self._build_search(data)
        labels = dbscan_labels(search, self.eps, self.min_samples)
        self.labels_ = labels
        return labels


def dbscan_labels(
    search: NeighborSearch, eps: float, min_samples: int
) -> npt.NDArray[np.intp]:
    """Run the DBSCAN expansion loop over a neighbour-search backend.

    Classic algorithm: visit each unlabelled point, query its
    eps-neighbourhood; if it is a core point, start a new cluster and grow
    it breadth-first through the neighbourhoods of core members.  Border
    points join the first cluster that reaches them; points never reached
    by a core point stay noise.

    An ``enqueued`` mask guarantees every point enters an expansion queue
    at most once across the whole run.  Without it, each core expansion
    re-added every not-yet-visited neighbour, so on a dense cluster the
    queue grew to O(cluster_size^2) duplicate entries; every point is
    still labelled identically, but the queue memory and the redundant
    pop/requeue work are quadratic.  With the mask both the queue and the
    number of ``radius_neighbors`` queries are bounded by ``n``
    (``tests/cluster/test_dbscan.py::TestQueryEfficiency`` pins this).

    Observability: the run is wrapped in a ``dbscan.fit`` span, with one
    ``dbscan.expand`` child span per discovered cluster.  Neighbour
    queries are counted where they happen (seed queries on the fit span,
    expansion queries on the expansion span), so subtree totals equal
    total queries without double counting.  Under the default null
    recorder all of this is a no-op.
    """
    recorder = current_recorder()
    n = search.n_points
    labels = np.full(n, NOISE, dtype=np.intp)
    visited = np.zeros(n, dtype=bool)
    enqueued = np.zeros(n, dtype=bool)
    next_label = 0

    with recorder.span(
        "dbscan.fit", eps=float(eps), min_samples=int(min_samples)
    ) as fit_span:
        fit_span.add("dbscan.points", int(n))
        for point in range(n):
            if visited[point]:
                continue
            visited[point] = True
            neighbors = search.radius_neighbors(point, eps)
            fit_span.add("dbscan.seed_queries")
            if len(neighbors) < min_samples:
                continue  # noise unless later absorbed as a border point
            with recorder.span(
                "dbscan.expand", label=int(next_label)
            ) as expand_span:
                members = 1
                labels[point] = next_label
                enqueued[point] = True
                queue = deque()
                for i in neighbors:
                    if not enqueued[i]:
                        enqueued[i] = True
                        queue.append(int(i))
                while queue:
                    candidate = queue.popleft()
                    if labels[candidate] == NOISE:
                        # Border or core, joins the cluster.
                        labels[candidate] = next_label
                        members += 1
                    if visited[candidate]:
                        continue
                    visited[candidate] = True
                    candidate_neighbors = search.radius_neighbors(
                        candidate, eps
                    )
                    expand_span.add("dbscan.expand_queries")
                    if len(candidate_neighbors) >= min_samples:
                        for i in candidate_neighbors:
                            if not enqueued[i]:
                                enqueued[i] = True
                                queue.append(int(i))
                expand_span.add("dbscan.cluster_members", members)
            next_label += 1
        fit_span.add("dbscan.clusters", int(next_label))
        fit_span.add("dbscan.noise_points", int(np.sum(labels == NOISE)))

    return labels


def labels_to_groups(labels: npt.NDArray[np.intp]) -> list[list[int]]:
    """Convert a label vector into sorted groups of member indices.

    Noise points are dropped; groups are ordered by smallest member, which
    matches :meth:`repro.bitmatrix.BitMatrix.equal_row_groups`.
    """
    by_label: dict[int, list[int]] = {}
    for index, label in enumerate(labels):
        if label == NOISE:
            continue
        by_label.setdefault(int(label), []).append(index)
    groups = [sorted(members) for members in by_label.values()]
    groups.sort(key=lambda members: members[0])
    return groups
