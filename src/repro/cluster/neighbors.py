"""Neighbour-search backends used by DBSCAN.

DBSCAN only needs one primitive: *all points within eps of point i*
(a fixed-radius query).  Two backends are provided:

* :class:`BruteForceSearch` — works with any metric from
  :mod:`repro.cluster.distances`; scans the full dataset per query in
  vectorised numpy blocks.  This mirrors what scikit-learn does for dense
  high-dimensional data and is what the paper's quadratic baseline costs.
* :class:`BitpackedHammingSearch` — exploits that the data are boolean by
  delegating to :class:`repro.bitmatrix.BitMatrix` XOR/popcount kernels.
  Same complexity class, much lower constant.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import numpy.typing as npt

from repro.bitmatrix import BitMatrix
from repro.cluster.distances import DistanceFn, resolve_metric
from repro.exceptions import ConfigurationError


class NeighborSearch(ABC):
    """Fixed-radius neighbour search over a fixed dataset."""

    @property
    @abstractmethod
    def n_points(self) -> int:
        """Number of points in the indexed dataset."""

    @abstractmethod
    def radius_neighbors(self, index: int, eps: float) -> npt.NDArray[np.intp]:
        """Indices of all points within distance ``eps`` of point ``index``.

        The query point itself is always included in the result.
        """


class BruteForceSearch(NeighborSearch):
    """Metric-agnostic linear-scan neighbour search.

    Parameters
    ----------
    data:
        ``(n, d)`` array of points.
    metric:
        A metric name from :data:`repro.cluster.distances.METRICS` or a
        callable ``f(block, query) -> distances``.
    """

    def __init__(
        self, data: npt.ArrayLike, metric: str | DistanceFn = "hamming"
    ) -> None:
        self._data = np.asarray(data)
        if self._data.ndim != 2:
            raise ConfigurationError(
                f"expected 2-D data, got ndim={self._data.ndim}"
            )
        self._metric = resolve_metric(metric)

    @property
    def n_points(self) -> int:
        return self._data.shape[0]

    def radius_neighbors(self, index: int, eps: float) -> npt.NDArray[np.intp]:
        distances = self._metric(self._data, self._data[index])
        return np.flatnonzero(distances <= eps)


class BitpackedHammingSearch(NeighborSearch):
    """Hamming-only neighbour search over a bit-packed matrix.

    Accepts either a dense boolean array (packed on construction) or an
    existing :class:`~repro.bitmatrix.BitMatrix` to avoid re-packing.
    """

    def __init__(self, data: npt.ArrayLike | BitMatrix) -> None:
        if isinstance(data, BitMatrix):
            self._bits = data
        else:
            self._bits = BitMatrix(data)

    @property
    def n_points(self) -> int:
        return self._bits.n_rows

    @property
    def bits(self) -> BitMatrix:
        """The underlying packed matrix."""
        return self._bits

    def radius_neighbors(self, index: int, eps: float) -> npt.NDArray[np.intp]:
        return self._bits.rows_within_hamming(index, int(np.floor(eps)))
